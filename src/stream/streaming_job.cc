#include "stream/streaming_job.h"

#include <algorithm>
#include <stdexcept>

#include "checkpoint/checkpoint.h"
#include "engine/map_task.h"  // PartitionOf
#include "engine/reduce_common.h"
#include "engine/reduce_hash.h"

namespace opmr {

// --- Worker --------------------------------------------------------------------

// One reducer worker: a bounded queue of framed pairs
// ([u64 ingest_seq][u32 klen][u32 vlen][key][value]) feeding an incremental
// state table on a dedicated thread.  The ingest sequence carried by every
// frame is the recovery watermark: checkpoints land on sequence boundaries,
// and after a restore any frame at or below the watermark is skipped.
class StreamingJob::Worker {
 public:
  Worker(const StreamingQuery* query, const StreamingOptions* options,
         FileManager* files, MetricRegistry* metrics, int id,
         const std::filesystem::path& ckpt_dir)
      : query_(query),
        options_(options),
        files_(files),
        metrics_(metrics),
        id_(id),
        table_(query->aggregator.get()),
        sketch_(options->hot_key_capacity > 0
                    ? std::make_unique<SpaceSaving>(options->hot_key_capacity)
                    : nullptr),
        thread_([this](std::stop_token st) { Run(st); }) {
    if (options_->checkpoint.enabled) {
      ckpt_ = std::make_unique<CheckpointManager>(ckpt_dir, query_->name, id_,
                                                  options_->checkpoint,
                                                  metrics_);
      ckpt_->Reset();  // a new stream never restores a previous job's images
    }
  }

  ~Worker() { Stop(); }

  void Enqueue(std::string framed_pair) {
    std::unique_lock lock(queue_mu_);
    queue_cv_.wait(lock, [&] {
      return queue_.size() < options_->queue_capacity || closing_;
    });
    if (closing_) {
      throw std::logic_error("StreamingJob: ingest after Finish()");
    }
    queue_.push_back(std::move(framed_pair));
    lock.unlock();
    queue_cv_.notify_all();
  }

  std::optional<std::string> Query(Slice key) const {
    std::scoped_lock lock(state_mu_);
    const StateTable::Entry* entry = table_.Find(key);
    if (entry == nullptr) return std::nullopt;
    std::string finalized;
    query_->aggregator->Finalize(entry->state, &finalized);
    return finalized;
  }

  void CollectTop(std::vector<std::pair<std::string, std::string>>* out) const {
    std::scoped_lock lock(state_mu_);
    std::string finalized;
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      query_->aggregator->Finalize(entry.state, &finalized);
      out->emplace_back(key.ToString(), finalized);
    });
  }

  [[nodiscard]] std::uint64_t pairs() const {
    return pairs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t early_answers() const {
    return early_.load(std::memory_order_relaxed);
  }

  // Blocks until the queue is drained and the worker thread is idle, so
  // cur_seq_ and the state table are final for the records ingested so far.
  void WaitIdle() {
    std::unique_lock lock(queue_mu_);
    idle_cv_.wait(lock, [&] { return queue_.empty() && !busy_; });
  }

  // Appends this worker's resident states and sketch summary to a job-wide
  // snapshot image.  Call after WaitIdle() for a consistent view.
  void AppendImage(CheckpointImage* image) const {
    std::scoped_lock lock(state_mu_);
    if (sketch_ != nullptr) {
      for (const auto& hitter : sketch_->Candidates()) {
        image->sketch.push_back(
            {hitter.key, hitter.count_estimate, hitter.error_bound});
      }
      image->sketch_stream_length += sketch_->StreamLength();
    }
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      image->entries.push_back(
          {std::string(key.view()), entry.state, entry.early_emitted});
    });
  }

  // Simulates losing this worker's process: in-flight queue, resident
  // state, sketch and spill manifest are discarded.  On-disk checkpoints
  // and spill files survive (they are the recovery source).
  void Crash() {
    std::scoped_lock lock(queue_mu_, state_mu_);
    queue_.clear();
    table_.Clear();
    if (sketch_ != nullptr) {
      sketch_ = std::make_unique<SpaceSaving>(options_->hot_key_capacity);
    }
    if (cold_ != nullptr) {
      cold_->Close();
      cold_.reset();
    }
    cold_path_.clear();
    spill_runs_.clear();
    pairs_.store(0, std::memory_order_relaxed);
    cur_seq_ = 0;
    crashed_ = true;
    queue_cv_.notify_all();
  }

  // Restores a crashed worker from its latest valid checkpoint, returning
  // the restored watermark (0 = no checkpoint, refold everything).  For a
  // healthy worker, arms replay deduplication (frames at or below the
  // current sequence are skipped) and returns nullopt.
  std::optional<std::uint64_t> RestoreIfCrashed() {
    std::scoped_lock lock(queue_mu_, state_mu_);
    if (!crashed_) {
      restore_watermark_ = cur_seq_;
      return std::nullopt;
    }
    std::uint64_t watermark = 0;
    if (auto image = ckpt_->LoadLatest(); image.has_value()) {
      table_.Clear();
      for (const auto& entry : image->entries) {
        table_.Fold(entry.key, entry.state, /*value_is_state=*/true)
            .early_emitted = entry.early_emitted;
      }
      if (sketch_ != nullptr) {
        for (const auto& entry : image->sketch) {
          sketch_->Restore(entry.key, entry.count, entry.error);
        }
        sketch_->SetStreamLength(image->sketch_stream_length);
      }
      for (const auto& spill : image->spill_files) {
        const std::filesystem::path path(spill.path);
        if (!std::filesystem::exists(path)) {
          throw std::runtime_error(
              "streaming checkpoint references missing spill run " +
              spill.path);
        }
        // Appends after the checkpoint belong to the failed epoch.
        if (std::filesystem::file_size(path) > spill.committed_bytes) {
          std::filesystem::resize_file(path, spill.committed_bytes);
        }
        spill_runs_.push_back(path);
      }
      if (!image->feeds.empty()) {
        pairs_.store(image->feeds.front().second, std::memory_order_relaxed);
      }
      watermark = image->watermark;
    }
    // A demoted-cold file from before the crash stays in spill_runs_ but is
    // never appended to again; demotions after recovery open a fresh one.
    restore_watermark_ = watermark;
    cur_seq_ = watermark;
    crashed_ = false;
    return watermark;
  }

  // Drains the queue, stops the thread, resolves spills, and appends the
  // exact final answers.
  void Finish(std::vector<std::pair<std::string, std::string>>* out) {
    Stop();

    std::scoped_lock lock(state_mu_);
    if (cold_ != nullptr) {
      cold_->Close();
      cold_.reset();
    }
    const Aggregator& agg = *query_->aggregator;
    if (spill_runs_.empty()) {
      std::string finalized;
      table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        agg.Finalize(entry.state, &finalized);
        out->emplace_back(key.ToString(), finalized);
      });
      return;
    }
    // Flush the live table as one more run and externally re-aggregate.
    if (table_.size() > 0) SpillTableLocked();
    RuntimeEnv env;
    env.files = files_;
    env.metrics = metrics_;
    ExternalHashAggregate(
        spill_runs_, /*level=*/0, options_->worker_budget_bytes, env,
        [&](Slice key, const std::vector<Slice>& states) {
          std::string state(states.front().data(), states.front().size());
          for (std::size_t i = 1; i < states.size(); ++i) {
            agg.Merge(&state, states[i]);
          }
          std::string finalized;
          agg.Finalize(state, &finalized);
          out->emplace_back(key.ToString(), finalized);
        },
        options_->compress_spills);
    for (const auto& path : spill_runs_) std::filesystem::remove(path);
    spill_runs_.clear();
  }

 private:
  void Stop() {
    {
      std::scoped_lock lock(queue_mu_);
      if (closing_) {
        // Already stopping; just wait for the thread below.
      }
      closing_ = true;
    }
    queue_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  void Run(const std::stop_token& /*st*/) {
    std::vector<std::string> batch;
    while (true) {
      batch.clear();
      {
        std::unique_lock lock(queue_mu_);
        busy_ = false;
        idle_cv_.notify_all();
        queue_cv_.wait(lock, [&] { return !queue_.empty() || closing_; });
        while (!queue_.empty()) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
        if (batch.empty() && closing_) return;
        busy_ = true;
      }
      queue_cv_.notify_all();  // ingest may proceed

      std::scoped_lock lock(state_mu_);
      for (const auto& framed : batch) {
        const std::uint64_t seq = DecodeU64(framed.data());
        const std::uint32_t klen = DecodeU32(framed.data() + 8);
        const Slice key(framed.data() + 16, klen);
        const Slice value(framed.data() + 16 + klen,
                          framed.size() - 16 - klen);
        FoldFramed(seq, key, value, framed.size());
      }
    }
  }

  void FoldFramed(std::uint64_t seq, Slice key, Slice value,
                  std::size_t framed_bytes) {
    // Frames racing a crash die with the worker; frames at or below the
    // restore watermark were already folded before it.
    if (crashed_ || seq <= restore_watermark_) return;
    if (seq > cur_seq_) {
      // The previous sequence is complete (single-threaded ordered ingest:
      // all of its pairs precede this frame in the queue) — a consistent
      // point to checkpoint.
      if (ckpt_ != nullptr && cur_seq_ > 0) {
        ckpt_->OnProgress(1, 0);
        if (ckpt_->Due()) WriteCheckpointLocked(cur_seq_);
      }
      cur_seq_ = seq;
    }
    Fold(key, value);
    if (ckpt_ != nullptr) ckpt_->OnProgress(0, framed_bytes);
  }

  void Fold(Slice key, Slice value) {
    if (sketch_ != nullptr) {
      if (auto victim = sketch_->OfferAndEvict(key); victim.has_value()) {
        if (table_.MemoryBytes() >
            options_->worker_budget_bytes -
                options_->worker_budget_bytes / 4) {
          DemoteLocked(*victim);
        }
      }
    }
    StateTable::Entry& entry = table_.Fold(key, value, /*is_state=*/false);
    pairs_.fetch_add(1, std::memory_order_relaxed);
    if (options_->early_emit && !entry.early_emitted &&
        options_->early_emit(key, entry.state)) {
      entry.early_emitted = true;
      early_.fetch_add(1, std::memory_order_relaxed);
      if (options_->on_early_answer) {
        std::string finalized;
        query_->aggregator->Finalize(entry.state, &finalized);
        options_->on_early_answer(key, finalized);
      }
    }
    // Budget enforcement per fold (not per batch): the spill/demotion
    // sequence becomes a deterministic function of the routed pair order,
    // so seeded runs demote identically every time.
    if (table_.MemoryBytes() > options_->worker_budget_bytes) {
      if (sketch_ == nullptr) {
        SpillTableLocked();
      } else {
        EnforceBudgetLocked();
      }
    }
  }

  void WriteCheckpointLocked(std::uint64_t watermark) {
    if (cold_ != nullptr) cold_->Flush();
    CheckpointImage image;
    image.watermark = watermark;
    image.feeds.emplace_back(static_cast<std::uint32_t>(id_),
                             pairs_.load(std::memory_order_relaxed));
    for (const auto& path : spill_runs_) {
      // The open cold run's durable prefix is its flushed byte count; the
      // closed spill runs are complete files.
      const std::uint64_t committed = (cold_ != nullptr && path == cold_path_)
                                          ? cold_->bytes_written()
                                          : std::filesystem::file_size(path);
      image.spill_files.push_back({path.string(), committed});
    }
    if (sketch_ != nullptr) {
      for (const auto& hitter : sketch_->Candidates()) {
        image.sketch.push_back(
            {hitter.key, hitter.count_estimate, hitter.error_bound});
      }
      image.sketch_stream_length = sketch_->StreamLength();
    }
    image.entries.reserve(table_.size());
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      image.entries.push_back(
          {std::string(key.view()), entry.state, entry.early_emitted});
    });
    ckpt_->Write(&image);
  }

  void SpillTableLocked() {
    const auto path = files_->NewFile("stream_spill");
    auto writer = NewSpillSink(options_->compress_spills, path,
                               IoChannel(metrics_, device::kSpillWrite));
    table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
      writer->Append(key, entry.state);
    });
    writer->Close();
    table_.Clear();
    spill_runs_.push_back(path);
  }

  void DemoteLocked(Slice key) {
    std::string state;
    if (!table_.Extract(key, &state)) return;
    if (cold_ == nullptr) {
      cold_path_ = files_->NewFile("stream_cold");
      cold_ = NewSpillSink(options_->compress_spills, cold_path_,
                           IoChannel(metrics_, device::kSpillWrite));
      spill_runs_.push_back(cold_path_);
    }
    cold_->Append(key, state);
    metrics_->Get("stream.demotions")->Increment();
  }

  void EnforceBudgetLocked() {
    std::vector<std::pair<std::uint64_t, std::string>> by_estimate;
    by_estimate.reserve(table_.size());
    table_.ForEach([&](Slice key, const StateTable::Entry&) {
      by_estimate.emplace_back(sketch_->Estimate(key),
                               std::string(key.view()));
    });
    std::sort(by_estimate.begin(), by_estimate.end());
    for (const auto& [estimate, key] : by_estimate) {
      if (table_.MemoryBytes() <= options_->worker_budget_bytes) break;
      DemoteLocked(key);
    }
  }

  const StreamingQuery* query_;
  const StreamingOptions* options_;
  FileManager* files_;
  MetricRegistry* metrics_;
  int id_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::string> queue_;
  bool closing_ = false;
  bool busy_ = false;  // worker thread is folding a drained batch

  mutable std::mutex state_mu_;
  StateTable table_;
  std::unique_ptr<SpaceSaving> sketch_;
  std::unique_ptr<RecordSink> cold_;
  std::filesystem::path cold_path_;
  std::vector<std::filesystem::path> spill_runs_;
  std::unique_ptr<CheckpointManager> ckpt_;

  // Recovery state (state_mu_): last sequence this worker has seen, the
  // watermark below which replayed frames are skipped, and the crash flag.
  std::uint64_t cur_seq_ = 0;
  std::uint64_t restore_watermark_ = 0;
  bool crashed_ = false;

  std::atomic<std::uint64_t> pairs_{0};
  std::atomic<std::uint64_t> early_{0};

  std::jthread thread_;  // last member: joins before the rest destructs
};

// --- StreamingJob ----------------------------------------------------------------

StreamingJob::StreamingJob(StreamingQuery query, StreamingOptions options,
                           int num_workers)
    : query_(std::move(query)),
      options_(std::move(options)),
      files_(FileManager::CreateTemp("opmr-stream")) {
  if (!query_.map) {
    throw std::invalid_argument("StreamingQuery: map function required");
  }
  if (query_.aggregator == nullptr) {
    throw std::invalid_argument(
        "StreamingQuery: streaming requires an Aggregator (holistic reduce "
        "functions cannot answer before end-of-stream)");
  }
  if (num_workers <= 0) {
    throw std::invalid_argument("StreamingJob: need at least one worker");
  }
  std::filesystem::path ckpt_dir;
  if (options_.checkpoint.enabled) {
    if (options_.early_emit) {
      throw std::invalid_argument(
          "StreamingJob: checkpointing is incompatible with early_emit "
          "(replayed records would duplicate early answers)");
    }
    if (options_.checkpoint.interval_records == 0 &&
        options_.checkpoint.interval_bytes == 0 &&
        options_.checkpoint.interval_seconds <= 0.0) {
      throw std::invalid_argument(
          "StreamingJob: checkpointing enabled without an interval");
    }
    ckpt_dir = options_.checkpoint.dir.empty()
                   ? files_.NewDir("checkpoints")
                   : std::filesystem::path(options_.checkpoint.dir);
  }
  if ((options_.snapshot_interval_records > 0) !=
      static_cast<bool>(options_.publish_snapshot)) {
    throw std::invalid_argument(
        "StreamingJob: snapshot publication requires both "
        "snapshot_interval_records and publish_snapshot");
  }
  workers_.reserve(num_workers);
  for (int w = 0; w < num_workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(&query_, &options_, &files_,
                                                &metrics_, w, ckpt_dir));
  }
}

StreamingJob::~StreamingJob() {
  try {
    if (!finished_.load()) Finish();
  } catch (...) {
    // Destructor must not throw; spills are cleaned by FileManager anyway.
  }
}

void StreamingJob::Ingest(Slice record) {
  if (finished_.load(std::memory_order_relaxed)) {
    throw std::logic_error("StreamingJob: ingest after Finish()");
  }
  // The record's sequence number travels with every routed pair; it is the
  // watermark currency of checkpoints and replay deduplication.
  const std::uint64_t seq = records_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seq <= replay_until_.load(std::memory_order_relaxed)) {
    metrics_.Get("recovery.replay_records")->Increment();
  }
  // Local class: routes map output to the owning worker as framed pairs
  // (local classes of member functions share the class's access rights).
  class RoutingCollector final : public OutputCollector {
   public:
    RoutingCollector(StreamingJob* job, std::uint64_t seq)
        : job_(job), seq_(seq) {}
    void Emit(Slice key, Slice value) override {
      std::string framed;
      framed.reserve(16 + key.size() + value.size());
      AppendU64(framed, seq_);
      AppendU32(framed, static_cast<std::uint32_t>(key.size()));
      AppendU32(framed, static_cast<std::uint32_t>(value.size()));
      framed.append(key.data(), key.size());
      framed.append(value.data(), value.size());
      const auto w =
          PartitionOf(key, static_cast<int>(job_->workers_.size()));
      job_->workers_[w]->Enqueue(std::move(framed));
    }

   private:
    StreamingJob* job_;
    std::uint64_t seq_;
  } collector(this, seq);
  query_.map(record, collector);
  if (options_.snapshot_interval_records > 0 &&
      seq % options_.snapshot_interval_records == 0) {
    // The publish runs on the ingesting thread: the stream stalls for the
    // settle + serialize, which is exactly the perturbation the serving
    // ablation measures.
    options_.publish_snapshot(CollectSnapshot());
  }
}

CheckpointImage StreamingJob::CollectSnapshot() {
  if (finished_.load(std::memory_order_relaxed)) {
    throw std::logic_error("StreamingJob: snapshot after Finish()");
  }
  for (auto& worker : workers_) worker->WaitIdle();
  CheckpointImage image;
  image.watermark = records_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) worker->AppendImage(&image);
  return image;
}

std::optional<std::string> StreamingJob::Query(Slice key) const {
  if (finished_.load(std::memory_order_acquire)) {
    // Serve from the exact, key-sorted final results.
    const auto it = std::lower_bound(
        final_results_.begin(), final_results_.end(), key.view(),
        [](const auto& row, std::string_view want) { return row.first < want; });
    if (it != final_results_.end() && it->first == key.view()) {
      return it->second;
    }
    return std::nullopt;
  }
  const auto w = PartitionOf(key, static_cast<int>(workers_.size()));
  return workers_[w]->Query(key);
}

std::vector<std::pair<std::string, std::string>> StreamingJob::TopAnswers(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::string>> all;
  for (const auto& worker : workers_) worker->CollectTop(&all);
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    const std::uint64_t av =
        a.second.size() == 8 ? DecodeU64(a.second.data()) : 0;
    const std::uint64_t bv =
        b.second.size() == 8 ? DecodeU64(b.second.data()) : 0;
    if (av != bv) return av > bv;
    return a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::uint64_t StreamingJob::records_ingested() const {
  return records_.load(std::memory_order_relaxed);
}

std::uint64_t StreamingJob::pairs_routed() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->pairs();
  return total;
}

std::uint64_t StreamingJob::early_answers() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) total += worker->early_answers();
  return total;
}

std::vector<std::pair<std::string, std::string>> StreamingJob::Finish() {
  if (finished_.exchange(true)) return final_results_;
  for (auto& worker : workers_) worker->Finish(&final_results_);
  std::sort(final_results_.begin(), final_results_.end());
  return final_results_;
}

void StreamingJob::CrashWorker(int worker) {
  if (!options_.checkpoint.enabled) {
    throw std::logic_error(
        "StreamingJob::CrashWorker: checkpointing is not enabled, the crash "
        "would be unrecoverable");
  }
  if (worker < 0 || worker >= static_cast<int>(workers_.size())) {
    throw std::out_of_range("StreamingJob::CrashWorker: no such worker");
  }
  workers_[static_cast<std::size_t>(worker)]->Crash();
}

std::uint64_t StreamingJob::Recover() {
  if (!options_.checkpoint.enabled) {
    throw std::logic_error(
        "StreamingJob::Recover: checkpointing is not enabled");
  }
  if (finished_.load(std::memory_order_relaxed)) {
    throw std::logic_error("StreamingJob::Recover: stream already finished");
  }
  // Settle every worker first: a healthy worker's current sequence becomes
  // its replay-dedup watermark, so it must be final before we read it.
  for (auto& worker : workers_) worker->WaitIdle();
  const std::uint64_t ingested = records_.load(std::memory_order_relaxed);
  std::uint64_t resume = ingested;
  bool any_crashed = false;
  for (auto& worker : workers_) {
    if (auto watermark = worker->RestoreIfCrashed(); watermark.has_value()) {
      any_crashed = true;
      resume = std::min(resume, *watermark);
    }
  }
  if (!any_crashed) return ingested;
  // Roll the ingest sequence back: the caller re-Ingest()s its source from
  // `resume` on, and sequences up to `ingested` count as replay.
  replay_until_.store(ingested, std::memory_order_relaxed);
  records_.store(resume, std::memory_order_relaxed);
  return resume;
}

std::int64_t StreamingJob::CounterValue(const std::string& name) const {
  return metrics_.Value(name);
}

}  // namespace opmr
