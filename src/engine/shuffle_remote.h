// Remote shuffle endpoints: the map-side client and reduce-side server
// that carry ShuffleMapEndpoint calls over a net::Transport connection.
//
// The client serialises every RegisterFile / RegisterSegment / TryPush /
// MapTaskDone call into typed wire frames; the server deserialises them
// back into calls on the in-process ShuffleService.  Back-pressure is a
// credit protocol that mirrors the service's bounded per-reducer queues:
// the client starts with `push_queue_chunks` credits per reducer, spends
// one per pushed chunk, and earns one back when the server observes the
// reducer consume a chunk for the first time.  A reducer that terminally
// fails is announced with a Gone frame so the mapper group fails fast
// (paper Table III) instead of pushing into a dead queue.
//
// Delivery is exactly-once via per-chunk sequence acks: every data frame
// carries a client-assigned 1-based seq, the client keeps each frame in a
// replay window until the server's cumulative Ack covers it, and the
// server applies frames strictly in seq order against a per-worker
// watermark (dups re-acked and skipped, gaps discarded unacked).  When a
// reducer-side crash kills the connection after delivery but before
// apply, the client's reconnect replays exactly the unacked window — the
// job survives instead of failing, and only the idle-timeout watchdog is
// left as a last-resort fallback.
//
// The server accepts any number of mapper-group connections (cluster
// mode): each Hello binds a worker id — authenticated against the shared
// secret when one is configured — and credits are routed back to the
// worker that pushed the consumed chunk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/shuffle.h"
#include "metrics/counters.h"
#include "net/transport.h"
#include "net/wire.h"
#include "storage/file_manager.h"
#include "storage/io.h"

namespace opmr {

// Ack-protocol metric names (client side; the server folds a remote
// client's values in from its Bye frame, like the other wire metrics).
inline constexpr const char* kShuffleAckReplays = "shuffle.ack_replays";
inline constexpr const char* kShuffleAckReplayedFrames =
    "shuffle.ack_replayed_frames";
inline constexpr const char* kShuffleDupFrames = "shuffle.dup_frames";

// Map-side endpoint: one instance (and one Transport connection) per map
// worker group.  Thread-safe — map worker threads share it.
class ShuffleClient final : public ShuffleMapEndpoint {
 public:
  struct Options {
    std::string job;
    int num_map_tasks = 0;
    int num_reducers = 0;
    // Initial credits per reducer; must equal the server-side
    // ShuffleService's push_queue_chunks for back-pressure parity.
    std::size_t push_queue_chunks = 0;
    // Both worker groups see the same filesystem: register segments as
    // path descriptors (SegmentRef) instead of shipping bytes inline.
    bool shared_fs = true;
    // Cluster-mode identity carried in Hello: the registered worker id
    // this connection belongs to (empty in the single-client local
    // modes) and the shared shuffle secret (empty = no auth).
    std::string worker;
    std::string auth;
    // Finish() waits this long for the replay window to drain before
    // forcing one replay and sending Bye regardless.
    double ack_drain_s = 5.0;
  };

  ShuffleClient(net::Transport* transport, MetricRegistry* metrics,
                Options options);

  void RegisterFile(const MapOutputFile& file) override;
  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment,
                       bool sorted) override;
  PushResult TryPush(int reducer, ShuffleItem chunk) override;
  void MapTaskDone(int map_task, std::uint64_t input_records,
                   std::uint64_t output_records) override;

  // Resends every delivered-but-unacked frame.  Safe (the server's seq
  // watermark absorbs duplicates) and idempotent; fired by the membership
  // layer after an eviction/rejoin, when the reduce side may have lost
  // this client's tail.
  void ReplayUnacked();

  // Frames still awaiting acknowledgement (0 once the server applied
  // everything).
  [[nodiscard]] std::size_t UnackedFrames() const;

  // Orderly close: waits (bounded) for the ack window to drain, then
  // sends Bye with this side's wire counters.  Idempotent.
  void Finish();

  // Failure close: relays the failure so the reduce group can abort
  // instead of waiting out its idle timeout.  Idempotent with Finish.
  void SendAbort(const std::string& reason);

  // Sends a caller-built frame through the exactly-once sequenced replay
  // window (the coded shuffle plane ships its kCodedChunk frames this
  // way, sharing the seq space with Chunk/MapDone so ordering, dedup,
  // and ack-window retransmit cover them unchanged).
  void SendSequencedFrame(
      const std::function<net::Frame(std::uint64_t)>& build);

 private:
  // One delivered-but-unacked frame.  Frames whose payload is a file
  // region (SegmentData over a transport with a sendfile path) are not
  // held in memory: `rebuild` re-reads the immutable spill file when a
  // replay needs the bytes again.
  struct WindowEntry {
    std::uint64_t seq = 0;
    net::Frame frame;
    std::function<net::Frame()> rebuild;  // set => frame is empty

    [[nodiscard]] net::Frame Materialize() const {
      return rebuild ? rebuild() : frame;
    }
  };

  void HandleReply(net::Connection* from, net::Frame frame);
  void SendSegment(int map_task, const std::filesystem::path& path,
                   int reducer, const Segment& segment, bool sorted);
  // Non-shared-fs segment send: assigns a seq, parks a rebuild closure in
  // the replay window, and ships the payload as header-prefix + file
  // region via Connection::SendFileFrame (zero-copy on the event-loop
  // transport), falling back to an in-memory SegmentData frame when the
  // transport has no kernel-assisted path.
  void SendSegmentData(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment, bool sorted);
  // Assigns the next seq, records the frame in the replay window, and
  // sends it.  `build` receives the assigned seq and returns the frame.
  // Serialised under mu_, so the window is always seq-contiguous.
  void SendSequenced(const std::function<net::Frame(std::uint64_t)>& build);
  // Throws if the server announced job abort.
  void CheckAborted();

  net::Transport* transport_;
  MetricRegistry* metrics_;
  Options options_;
  std::shared_ptr<net::Connection> conn_;
  Counter* ack_replays_ = nullptr;
  Counter* ack_replayed_frames_ = nullptr;

  // Lock order: seq_mu_ then mu_.  seq_mu_ serialises seq assignment with
  // the send itself (frames must hit the wire in seq order) and is never
  // taken by the reply path; mu_ guards the window/credit state and is
  // never held across a Send — a blocked send can be joining the reader
  // thread, which needs mu_ to deliver Acks.
  std::mutex seq_mu_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::size_t> credits_;
  std::vector<bool> gone_;
  bool aborted_ = false;
  std::string abort_reason_;
  bool closed_ = false;
  std::uint64_t next_seq_ = 0;
  // Sent frames awaiting acknowledgement, in seq order.
  std::deque<WindowEntry> window_;
};

// Reduce-side endpoint: applies inbound frames to the job's ShuffleService
// and replies with Ack / Credit / Gone frames.
class ShuffleServer {
 public:
  ShuffleServer(net::Transport* transport, ShuffleService* shuffle,
                FileManager* files, MetricRegistry* metrics,
                bool merge_client_wire_stats);
  ~ShuffleServer();

  ShuffleServer(const ShuffleServer&) = delete;
  ShuffleServer& operator=(const ShuffleServer&) = delete;

  // Shared secret Hello frames must carry.  Set before Start(); empty
  // (default) disables authentication.
  void SetAuthSecret(std::string secret) { secret_ = std::move(secret); }

  // Handler for admitted (deduplicated, in-order) kCodedChunk frames;
  // returns the cumulative decoded-unit count echoed in CodedAck.  Set
  // before Start(); unset, coded frames are a protocol error.
  void SetCodedFrameHandler(
      std::function<std::uint64_t(const net::CodedChunkMsg&)> handler) {
    coded_handler_ = std::move(handler);
  }

  // Invoked for every admitted MapDone frame, before the task is marked
  // done on the ShuffleService (the coded decoder must deliver the
  // task's locally-held units first).  Set before Start().
  void SetMapDoneHook(std::function<void(int)> hook) {
    map_done_hook_ = std::move(hook);
  }

  // Installs the consume/gone probes on the ShuffleService and starts
  // listening on the transport.
  void Start();

  // Map-side stats accumulated from MapDone frames.
  [[nodiscard]] std::uint64_t map_input_records() const;
  [[nodiscard]] std::uint64_t map_output_records() const;

  // Blocks (bounded) until every connected client's Bye has been applied,
  // so the job report assembled right after reduce completion includes the
  // client-side wire counters.  The race is structural: acks ride the
  // data-plane flush timer, so a fast reduce tail beats the Bye by a few
  // milliseconds.  Returns once all Byes arrived or the timeout expires
  // (crashed clients never send one).
  void WaitClientsFinished(double timeout_s);

 private:
  // Per mapper-group client, keyed by the Hello worker id ("" in the
  // single-client local modes).
  struct ClientState {
    net::Connection* conn = nullptr;
    // Spill file receiving this client's inline SegmentData payloads.
    std::unique_ptr<SequentialWriter> spill;
    // Highest seq applied for this worker; dups at or below are skipped
    // and re-acked, gaps above +1 discarded unacked.
    std::uint64_t applied_upto = 0;
    // Receive-attempt counts per seq, tracked only while a fault hook is
    // installed (peer_crash budgets receive attempts).
    std::map<std::uint64_t, int> recv_attempts;
  };

  void HandleFrame(net::Connection* from, net::Frame frame);
  // Pre-apply admission for a sequenced frame: dedup/gap check and the
  // peer_crash fault gate.  Returns true when the caller should apply the
  // frame (and then advance the watermark via AckApplied).
  bool AdmitSequenced(net::Connection* from, std::uint64_t seq);
  // Advances the sender's applied watermark past `seq` and sends the
  // cumulative Ack.
  void AckApplied(net::Connection* from, std::uint64_t seq);
  void RecordTaskOwner(net::Connection* from, int map_task);
  void SendTo(net::Connection* conn, const net::Frame& frame);
  // The connection bound to the worker that owns `map_task` (credit
  // routing); null when unknown.
  net::Connection* TaskOwnerConn(int map_task);
  void Broadcast(const net::Frame& frame);

  net::Transport* transport_;
  ShuffleService* shuffle_;
  FileManager* files_;
  MetricRegistry* metrics_;
  const bool merge_client_wire_stats_;
  Counter* dup_frames_ = nullptr;
  Counter* auth_failures_ = nullptr;
  std::string secret_;
  std::function<std::uint64_t(const net::CodedChunkMsg&)> coded_handler_;
  std::function<void(int)> map_done_hook_;

  mutable std::mutex mu_;
  std::condition_variable bye_cv_;
  std::size_t byes_received_ = 0;
  std::map<std::string, ClientState> clients_;
  std::map<net::Connection*, std::string> conn_worker_;
  std::map<int, std::string> task_owner_;  // map task -> worker id
  std::uint64_t map_input_records_ = 0;
  std::uint64_t map_output_records_ = 0;
};

}  // namespace opmr
