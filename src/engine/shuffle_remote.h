// Remote shuffle endpoints: the map-side client and reduce-side server
// that carry ShuffleMapEndpoint calls over a net::Transport connection.
//
// The client serialises every RegisterFile / RegisterSegment / TryPush /
// MapTaskDone call into typed wire frames; the server deserialises them
// back into calls on the in-process ShuffleService.  Back-pressure is a
// credit protocol that mirrors the service's bounded per-reducer queues:
// the client starts with `push_queue_chunks` credits per reducer, spends
// one per pushed chunk, and earns one back when the server observes the
// reducer consume a chunk for the first time.  A reducer that terminally
// fails is announced with a Gone frame so the mapper group fails fast
// (paper Table III) instead of pushing into a dead queue.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/shuffle.h"
#include "metrics/counters.h"
#include "net/transport.h"
#include "net/wire.h"
#include "storage/file_manager.h"
#include "storage/io.h"

namespace opmr {

// Map-side endpoint: one instance (and one Transport connection) per map
// worker group.  Thread-safe — map worker threads share it.
class ShuffleClient final : public ShuffleMapEndpoint {
 public:
  struct Options {
    std::string job;
    int num_map_tasks = 0;
    int num_reducers = 0;
    // Initial credits per reducer; must equal the server-side
    // ShuffleService's push_queue_chunks for back-pressure parity.
    std::size_t push_queue_chunks = 0;
    // Both worker groups see the same filesystem: register segments as
    // path descriptors (SegmentRef) instead of shipping bytes inline.
    bool shared_fs = true;
  };

  ShuffleClient(net::Transport* transport, MetricRegistry* metrics,
                Options options);

  void RegisterFile(const MapOutputFile& file) override;
  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment,
                       bool sorted) override;
  PushResult TryPush(int reducer, ShuffleItem chunk) override;
  void MapTaskDone(int map_task, std::uint64_t input_records,
                   std::uint64_t output_records) override;

  // Orderly close: sends Bye with this side's wire counters.  Idempotent.
  void Finish();

  // Failure close: relays the failure so the reduce group can abort
  // instead of waiting out its idle timeout.  Idempotent with Finish.
  void SendAbort(const std::string& reason);

 private:
  void HandleReply(net::Connection* from, net::Frame frame);
  void SendSegment(int map_task, const std::filesystem::path& path,
                   int reducer, const Segment& segment, bool sorted);
  // Throws if the server announced job abort.
  void CheckAborted();

  net::Transport* transport_;
  MetricRegistry* metrics_;
  Options options_;
  std::shared_ptr<net::Connection> conn_;

  std::mutex mu_;
  std::vector<std::size_t> credits_;
  std::vector<bool> gone_;
  bool aborted_ = false;
  std::string abort_reason_;
  bool closed_ = false;
};

// Reduce-side endpoint: applies inbound frames to the job's ShuffleService
// and replies with Credit / Gone frames.  Assumes a single mapper-group
// connection per job (credits are routed to the most recent Hello sender).
class ShuffleServer {
 public:
  ShuffleServer(net::Transport* transport, ShuffleService* shuffle,
                FileManager* files, MetricRegistry* metrics,
                bool merge_client_wire_stats);
  ~ShuffleServer();

  ShuffleServer(const ShuffleServer&) = delete;
  ShuffleServer& operator=(const ShuffleServer&) = delete;

  // Installs the consume/gone probes on the ShuffleService and starts
  // listening on the transport.
  void Start();

  // Map-side stats accumulated from MapDone frames.
  [[nodiscard]] std::uint64_t map_input_records() const;
  [[nodiscard]] std::uint64_t map_output_records() const;

 private:
  void HandleFrame(net::Connection* from, net::Frame frame);
  void SendToClient(const net::Frame& frame);

  net::Transport* transport_;
  ShuffleService* shuffle_;
  FileManager* files_;
  MetricRegistry* metrics_;
  const bool merge_client_wire_stats_;

  mutable std::mutex mu_;
  net::Connection* client_ = nullptr;
  // Per-connection spill file receiving inline SegmentData payloads.
  std::map<net::Connection*, std::unique_ptr<SequentialWriter>> spills_;
  std::uint64_t map_input_records_ = 0;
  std::uint64_t map_output_records_ = 0;
};

}  // namespace opmr
