// HyperLogLog distinct-count aggregator.
//
// COUNT(DISTINCT x) GROUP BY k is the classic analytics query whose exact
// state is unbounded — precisely the case where the paper's incremental
// hash framework wants a small mergeable sketch per key.  HyperLogLog
// (Flajolet et al. 2007) gives a fixed 2^p-byte state with ~1.04/sqrt(2^p)
// relative error, closed under max-merge, so it slots straight into the
// Aggregator algebra: map emits raw elements, combiners fold them into
// per-key sketches, reducers merge sketches, Finalize yields the estimate.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/hash.h"
#include "engine/job.h"

namespace opmr {

class HllAggregator final : public Aggregator {
 public:
  // precision p in [4, 16]: state is 2^p registers of one byte each.
  explicit HllAggregator(unsigned precision = 11) : p_(precision) {
    if (p_ < 4 || p_ > 16) {
      throw std::invalid_argument("HllAggregator: precision must be in 4..16");
    }
    m_ = 1u << p_;
  }

  void Init(Slice value, std::string* state) const override {
    state->assign(m_, '\0');
    Update(state, value);
  }

  void Update(std::string* state, Slice value) const override {
    if (state->size() != m_) {
      throw std::runtime_error("HllAggregator: bad state width");
    }
    const std::uint64_t h = BytesHash(value, /*seed=*/0x417e5ULL);
    const std::uint32_t bucket = static_cast<std::uint32_t>(h >> (64 - p_));
    // Rank of the first 1-bit in the remaining 64-p bits, 1-based.
    const std::uint64_t rest = (h << p_) | (1ull << (p_ - 1));  // sentinel
    const auto rank = static_cast<unsigned char>(
        1 + __builtin_clzll(rest));
    auto& reg = reinterpret_cast<unsigned char&>((*state)[bucket]);
    if (rank > reg) reg = rank;
  }

  void Merge(std::string* state, Slice other) const override {
    if (state->size() != m_ || other.size() != m_) {
      throw std::runtime_error("HllAggregator: state width mismatch in merge");
    }
    for (std::uint32_t i = 0; i < m_; ++i) {
      const auto a = static_cast<unsigned char>((*state)[i]);
      const auto b = static_cast<unsigned char>(other[i]);
      if (b > a) (*state)[i] = static_cast<char>(b);
    }
  }

  void Finalize(Slice state, std::string* out) const override {
    *out = EncodeEstimate(Estimate(state));
  }

  // The raw cardinality estimate, with the standard small-range correction.
  [[nodiscard]] double Estimate(Slice state) const {
    if (state.size() != m_) {
      throw std::runtime_error("HllAggregator: bad state width");
    }
    double sum = 0;
    std::uint32_t zeros = 0;
    for (std::uint32_t i = 0; i < m_; ++i) {
      const auto reg = static_cast<unsigned char>(state[i]);
      sum += std::ldexp(1.0, -static_cast<int>(reg));
      if (reg == 0) ++zeros;
    }
    const double alpha =
        m_ == 16 ? 0.673 : m_ == 32 ? 0.697 : m_ == 64 ? 0.709
                                            : 0.7213 / (1.0 + 1.079 / m_);
    double estimate = alpha * m_ * m_ / sum;
    if (estimate <= 2.5 * m_ && zeros != 0) {
      // Linear counting in the sparse regime.
      estimate = m_ * std::log(static_cast<double>(m_) / zeros);
    }
    return estimate;
  }

  [[nodiscard]] unsigned precision() const noexcept { return p_; }
  [[nodiscard]] std::size_t state_bytes() const noexcept { return m_; }

  // Finalized values are u64 estimates, like the counting aggregators'.
  static std::string EncodeEstimate(double estimate) {
    std::string out(8, '\0');
    EncodeU64(out.data(), static_cast<std::uint64_t>(estimate + 0.5));
    return out;
  }

 private:
  unsigned p_;
  std::uint32_t m_;
};

}  // namespace opmr
