// Job model: the MapReduce programming interface plus the knobs that select
// between the three runtimes the paper studies —
//
//   * Hadoop baseline      : sort-merge group-by, pull shuffle
//   * MapReduce Online/HOP : sort-merge group-by, push (pipelined) shuffle,
//                            periodic snapshots
//   * One-pass hash runtime: hash group-by (hybrid / incremental / hot-key),
//                            push or pull shuffle, fully incremental output
//
// User code supplies a map function and either a holistic reduce function
// (sessionization, inverted index) or an Aggregator (counting, sums, top-k
// per key), the algebraic form that enables combiners and incremental
// processing (paper §IV requirement 3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>
#include <string>

#include "checkpoint/options.h"
#include "common/slice.h"

namespace opmr {

// Receives key/value pairs from a map function (and from combiners).
class OutputCollector {
 public:
  virtual ~OutputCollector() = default;
  virtual void Emit(Slice key, Slice value) = 0;
};

// Streaming view of the values that share one key inside reduce.
class ValueIterator {
 public:
  virtual ~ValueIterator() = default;
  // False when the key's value list is exhausted.  The slice stays valid
  // until the next call.
  virtual bool Next(Slice* value) = 0;
};

// The map function: transforms one input record into zero or more key/value
// pairs (paper §II).
using MapFn = std::function<void(Slice record, OutputCollector& out)>;

// The holistic reduce function: applied to each key's value list.
using ReduceFn =
    std::function<void(Slice key, ValueIterator& values, OutputCollector& out)>;

// Algebraic aggregation: lift a value into a state, fold further values in,
// merge partial states (what a combiner ships), and lower the final state to
// an output value.  Every incremental technique in §V needs this shape; the
// classic combine function is derived from it.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  // state := lift(value)
  virtual void Init(Slice value, std::string* state) const = 0;
  // state := fold(state, value)
  virtual void Update(std::string* state, Slice value) const = 0;
  // state := merge(state, other_state)   (other_state came from a combiner)
  virtual void Merge(std::string* state, Slice other_state) const = 0;
  // output value := lower(state)
  virtual void Finalize(Slice state, std::string* output_value) const = 0;
};

// --- Runtime selection -----------------------------------------------------

enum class GroupBy {
  kSortMerge,  // Hadoop / MapReduce Online (paper Table III row 1, cols 1-2)
  kHash,       // the proposed one-pass runtime (col 3)
};

enum class Shuffle {
  kPull,  // Hadoop: reducers poll for completed map output
  kPush,  // HOP / one-pass: mappers push chunks eagerly, with back-pressure
};

enum class HashReduce {
  kHybridHash,         // blocking hash grouping (§V reduce technique 1)
  kIncremental,        // per-key state updated on arrival (technique 2)
  kHotKeyIncremental,  // + frequent-algorithm hot keys in memory (technique 3)
};

struct JobOptions {
  GroupBy group_by = GroupBy::kSortMerge;
  Shuffle shuffle = Shuffle::kPull;
  HashReduce hash_reduce = HashReduce::kIncremental;

  // Apply the derived combine function in map tasks when an Aggregator is
  // present (paper Fig. 1 "combine()" box).
  bool map_side_combine = true;

  // Map output buffer ("io.sort.mb"); exceeding it spills to disk.
  std::size_t map_buffer_bytes = 32ull << 20;

  // Reducer memory budget for shuffle segments / hash tables.
  std::size_t reduce_buffer_bytes = 32ull << 20;

  // Hadoop's merge factor F: an on-disk merge is triggered whenever the
  // number of on-disk runs reaches F (paper §II-A "multi-pass merge").
  int merge_factor = 10;

  // Compress reduce-side spill runs with the OZ block codec
  // (mapred.compress.map.output's reduce-side analogue): trades CPU for
  // the multi-pass-merge I/O volume the paper identifies as the
  // bottleneck.  Quantified by bench/ablation_compression.
  bool compress_spills = false;

  // Space-Saving capacity for the hot-key reducer: the number of keys whose
  // state is pinned in memory.
  std::size_t hot_key_capacity = 1u << 12;

  // HOP: produce a snapshot every `snapshot_interval` fraction of expected
  // input (0 disables).  E.g. 0.25 gives snapshots at 25/50/75 %.
  double snapshot_interval = 0.0;

  // HOP pipelining granularity: bytes pushed per chunk per partition.
  std::size_t push_chunk_bytes = 256u << 10;

  // HOP back-pressure: per-reducer bound on queued in-flight chunks; when
  // the queue is full the mapper diverts the chunk to local disk instead
  // (the paper's "mappers will write the output to local disks and wait").
  std::size_t push_queue_chunks = 64;

  // Optional early-emit policy for the incremental reducers: invoked after
  // every state update; returning true emits the key's current (finalized)
  // state immediately — the paper's "output a group as soon as the count of
  // its items has reached the threshold" example.
  std::function<bool(Slice key, Slice state)> early_emit;

  // Reduce-state checkpointing (incremental hash runtime only): periodic
  // snapshots of each reducer's state table let a failed reduce attempt
  // resume from the last checkpoint and replay only the shuffle suffix —
  // including under push shuffle, where the shuffle retains pushed chunks
  // until a checkpoint covers them.  See src/checkpoint.
  CheckpointOptions checkpoint;
};

struct JobSpec {
  std::string name;
  std::string input_file;   // DFS path of the (primary) input
  // Additional DFS inputs, processed exactly like the primary one: their
  // blocks join the same scheduling pool.  This is how chained pipelines
  // feed a job from all reducer parts of a previous job, and how
  // repartition joins read two datasets side by side.
  std::vector<std::string> extra_inputs;
  std::string output_file;  // DFS path prefix for reducer outputs
  MapFn map;
  ReduceFn reduce;                        // holistic tasks
  std::shared_ptr<Aggregator> aggregator; // algebraic tasks (enables combine)
  int num_reducers = 4;

  // Custom partitioner (Hadoop's Partitioner interface).  When unset, the
  // default hash partitioner assigns reducers; a range partitioner here
  // plus the sort-merge runtime yields globally sorted output (TeraSort).
  std::function<std::uint32_t(Slice key, int num_reducers)> partitioner;

  // Secondary sort (Hadoop's grouping-comparator idiom): when > 0, only the
  // first `grouping_prefix` bytes of the key choose the partition and the
  // reduce group, while the sort-merge machinery orders records by the FULL
  // key — so a map key of <group><order-suffix> delivers each group's
  // values to reduce already ordered by the suffix.  Sort-merge runtime
  // only (hash grouping has no order to exploit); incompatible with
  // aggregators (folding is per full key, grouping per prefix).
  std::size_t grouping_prefix = 0;

  [[nodiscard]] bool has_aggregator() const noexcept {
    return aggregator != nullptr;
  }
};

}  // namespace opmr
