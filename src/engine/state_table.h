// Per-key aggregator state table used by the incremental reducers.
//
// Unlike the map side's arena table (optimized for bulk flush), this table
// supports the operations incremental processing needs: in-place fold,
// eviction of a single key (hot-key demotion), and early-emission marking.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "common/slice.h"
#include "engine/job.h"

namespace opmr {

class StateTable {
 public:
  struct Entry {
    std::string state;
    bool early_emitted = false;
  };

  explicit StateTable(const Aggregator* aggregator) : aggregator_(aggregator) {
    if (aggregator_ == nullptr) {
      throw std::invalid_argument("StateTable requires an aggregator");
    }
  }

  // Folds `value` into `key`'s state (Init on first sight); returns the
  // entry so callers can check early-emission policy.
  Entry& Fold(Slice key, Slice value, bool value_is_state) {
    auto it = map_.find(key.view());
    if (it == map_.end()) {
      Entry entry;
      if (value_is_state) {
        entry.state.assign(value.data(), value.size());
      } else {
        aggregator_->Init(value, &entry.state);
      }
      bytes_ += key.size() + entry.state.size() + kEntryOverhead;
      it = map_.emplace(std::string(key.view()), std::move(entry)).first;
      return it->second;
    }
    const std::size_t before = it->second.state.size();
    if (value_is_state) {
      aggregator_->Merge(&it->second.state, value);
    } else {
      aggregator_->Update(&it->second.state, value);
    }
    bytes_ += it->second.state.size() - before;
    return it->second;
  }

  // Removes `key`, moving its state into `out_state`; false if absent.
  bool Extract(Slice key, std::string* out_state) {
    auto it = map_.find(key.view());
    if (it == map_.end()) return false;
    bytes_ -= it->first.size() + it->second.state.size() + kEntryOverhead;
    *out_state = std::move(it->second.state);
    map_.erase(it);
    return true;
  }

  [[nodiscard]] bool Contains(Slice key) const {
    return map_.count(key.view()) != 0;
  }

  // Point lookup; nullptr when absent.  The pointer is valid until the
  // next mutating call.
  [[nodiscard]] const Entry* Find(Slice key) const {
    auto it = map_.find(key.view());
    return it == map_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t MemoryBytes() const noexcept { return bytes_; }

  void ForEach(
      const std::function<void(Slice key, const Entry& entry)>& fn) const {
    for (const auto& [key, entry] : map_) fn(key, entry);
  }

  void Clear() {
    map_.clear();
    bytes_ = 0;
  }

 private:
  // Amortized container overhead per entry (bucket pointer, node header,
  // string headers); used only for budget accounting, not correctness.
  static constexpr std::size_t kEntryOverhead = 96;

  const Aggregator* aggregator_;
  std::unordered_map<std::string, Entry, TransparentStringHash,
                     std::equal_to<>>
      map_;
  std::size_t bytes_ = 0;
};

}  // namespace opmr
