// Ready-made aggregators (the paper's "user function library", Fig. 5) and
// the value codecs they share.  All states are flat byte strings so they
// spill, shuffle and merge without any serialization layer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/slice.h"
#include "engine/job.h"

namespace opmr {

inline std::string EncodeValueU64(std::uint64_t v) {
  std::string s(sizeof(v), '\0');
  EncodeU64(s.data(), v);
  return s;
}

inline std::uint64_t DecodeValueU64(Slice s) {
  if (s.size() != sizeof(std::uint64_t)) {
    throw std::runtime_error("DecodeValueU64: bad width");
  }
  return DecodeU64(s.data());
}

// SUM over u64 values; COUNT(*) is SUM over 1s, exactly how the paper's
// page-frequency job emits <url, 1>.
class SumAggregator final : public Aggregator {
 public:
  void Init(Slice value, std::string* state) const override {
    state->assign(value.data(), value.size());
  }
  void Update(std::string* state, Slice value) const override {
    EncodeU64(state->data(), DecodeU64(state->data()) + DecodeValueU64(value));
  }
  void Merge(std::string* state, Slice other) const override {
    Update(state, other);
  }
  void Finalize(Slice state, std::string* out) const override {
    out->assign(state.data(), state.size());
  }
};

// MIN / MAX over u64 values.
class MaxAggregator final : public Aggregator {
 public:
  void Init(Slice value, std::string* state) const override {
    state->assign(value.data(), value.size());
  }
  void Update(std::string* state, Slice value) const override {
    EncodeU64(state->data(),
              std::max(DecodeU64(state->data()), DecodeValueU64(value)));
  }
  void Merge(std::string* state, Slice other) const override {
    Update(state, other);
  }
  void Finalize(Slice state, std::string* out) const override {
    out->assign(state.data(), state.size());
  }
};

class MinAggregator final : public Aggregator {
 public:
  void Init(Slice value, std::string* state) const override {
    state->assign(value.data(), value.size());
  }
  void Update(std::string* state, Slice value) const override {
    EncodeU64(state->data(),
              std::min(DecodeU64(state->data()), DecodeValueU64(value)));
  }
  void Merge(std::string* state, Slice other) const override {
    Update(state, other);
  }
  void Finalize(Slice state, std::string* out) const override {
    out->assign(state.data(), state.size());
  }
};

// AVG over u64 values: state is (sum, count); final value is sum/count.
class AvgAggregator final : public Aggregator {
 public:
  void Init(Slice value, std::string* state) const override {
    state->resize(16);
    EncodeU64(state->data(), DecodeValueU64(value));
    EncodeU64(state->data() + 8, 1);
  }
  void Update(std::string* state, Slice value) const override {
    EncodeU64(state->data(), DecodeU64(state->data()) + DecodeValueU64(value));
    EncodeU64(state->data() + 8, DecodeU64(state->data() + 8) + 1);
  }
  void Merge(std::string* state, Slice other) const override {
    if (other.size() != 16) throw std::runtime_error("AvgAggregator: bad state");
    EncodeU64(state->data(), DecodeU64(state->data()) + DecodeU64(other.data()));
    EncodeU64(state->data() + 8,
              DecodeU64(state->data() + 8) + DecodeU64(other.data() + 8));
  }
  void Finalize(Slice state, std::string* out) const override {
    const std::uint64_t sum = DecodeU64(state.data());
    const std::uint64_t count = DecodeU64(state.data() + 8);
    *out = EncodeValueU64(count == 0 ? 0 : sum / count);
  }
};

// Session COUNT per key over [u64 timestamp] values: cuts a new session
// whenever the inter-click gap exceeds `gap_seconds`.  The algebraic form
// of the paper's sessionization workload — holistic per-click output needs
// end-of-stream, but the session *count* folds incrementally, which is what
// a live serving plane can answer mid-job.  State layout:
// [u64 sessions][u64 first_ts][u64 last_ts].
//
// Update assumes timestamps arrive non-decreasing (the click-stream
// generator's contract); a late value inside the current session is folded
// without moving the watermark back.  Merge joins two time-disjoint
// segments, fusing the boundary sessions when their gap is within limit.
class SessionCountAggregator final : public Aggregator {
 public:
  explicit SessionCountAggregator(std::uint64_t gap_seconds)
      : gap_(gap_seconds) {
    if (gap_ == 0) {
      throw std::invalid_argument("SessionCountAggregator: gap must be > 0");
    }
  }

  void Init(Slice value, std::string* state) const override {
    const std::uint64_t ts = DecodeValueU64(value);
    state->resize(24);
    EncodeU64(state->data(), 1);        // sessions
    EncodeU64(state->data() + 8, ts);   // first_ts
    EncodeU64(state->data() + 16, ts);  // last_ts
  }

  void Update(std::string* state, Slice value) const override {
    const std::uint64_t ts = DecodeValueU64(value);
    const std::uint64_t last = DecodeU64(state->data() + 16);
    if (ts > last) {
      if (ts - last > gap_) {
        EncodeU64(state->data(), DecodeU64(state->data()) + 1);
      }
      EncodeU64(state->data() + 16, ts);
    }
  }

  void Merge(std::string* state, Slice other) const override {
    if (other.size() != 24 || state->size() != 24) {
      throw std::runtime_error("SessionCountAggregator: bad state");
    }
    // Order the two segments by first click; fuse across the boundary.
    struct Segment {
      std::uint64_t sessions, first, last;
    };
    Segment a{DecodeU64(state->data()), DecodeU64(state->data() + 8),
              DecodeU64(state->data() + 16)};
    Segment b{DecodeU64(other.data()), DecodeU64(other.data() + 8),
              DecodeU64(other.data() + 16)};
    if (b.first < a.first) std::swap(a, b);
    std::uint64_t sessions = a.sessions + b.sessions;
    if (b.first >= a.last && b.first - a.last <= gap_) --sessions;
    EncodeU64(state->data(), sessions);
    EncodeU64(state->data() + 8, a.first);
    EncodeU64(state->data() + 16, std::max(a.last, b.last));
  }

  void Finalize(Slice state, std::string* out) const override {
    if (state.size() != 24) {
      throw std::runtime_error("SessionCountAggregator: bad state");
    }
    *out = EncodeValueU64(DecodeU64(state.data()));
  }

  [[nodiscard]] std::uint64_t gap() const noexcept { return gap_; }

 private:
  std::uint64_t gap_;
};

// --- Top-k -------------------------------------------------------------------
//
// The paper leaves "how to support the combine function for complex
// analytical tasks such as top-k" as an open question (§IV).  Top-k over
// (score, payload) pairs IS algebraic with bounded state: the state is the
// current top-k list, Update inserts one candidate, Merge merges two lists
// and truncates — all O(k).  This enables map-side combining and fully
// incremental top-k answers on the one-pass runtime.

// One candidate value: [u64 score][payload bytes].
inline std::string EncodeScored(std::uint64_t score, Slice payload) {
  std::string out;
  AppendU64(out, score);
  out.append(payload.data(), payload.size());
  return out;
}

struct ScoredEntry {
  std::uint64_t score = 0;
  std::string payload;

  friend bool operator==(const ScoredEntry&, const ScoredEntry&) = default;
};

// State layout: repeated [u64 score][u32 payload_len][payload bytes],
// ordered by descending score (ties broken by ascending payload so states
// are canonical and Merge is associative+commutative up to the tie rule).
inline std::vector<ScoredEntry> DecodeTopKState(Slice state) {
  std::vector<ScoredEntry> entries;
  std::size_t pos = 0;
  while (pos < state.size()) {
    if (pos + 12 > state.size()) {
      throw std::runtime_error("TopK state: truncated entry header");
    }
    ScoredEntry entry;
    entry.score = DecodeU64(state.data() + pos);
    const std::uint32_t len = DecodeU32(state.data() + pos + 8);
    pos += 12;
    if (pos + len > state.size()) {
      throw std::runtime_error("TopK state: truncated payload");
    }
    entry.payload.assign(state.data() + pos, len);
    pos += len;
    entries.push_back(std::move(entry));
  }
  return entries;
}

class TopKAggregator final : public Aggregator {
 public:
  explicit TopKAggregator(std::size_t k) : k_(k) {
    if (k_ == 0) throw std::invalid_argument("TopKAggregator: k must be > 0");
  }

  void Init(Slice value, std::string* state) const override {
    state->clear();
    AppendEntry(state, DecodeScoredValue(value));
  }

  void Update(std::string* state, Slice value) const override {
    InsertEntry(state, DecodeScoredValue(value));
  }

  void Merge(std::string* state, Slice other) const override {
    for (auto& entry : DecodeTopKState(other)) {
      InsertEntry(state, std::move(entry));
    }
  }

  void Finalize(Slice state, std::string* out) const override {
    out->assign(state.data(), state.size());
  }

  [[nodiscard]] std::size_t k() const noexcept { return k_; }

 private:
  static ScoredEntry DecodeScoredValue(Slice value) {
    if (value.size() < 8) {
      throw std::runtime_error("TopKAggregator: bad scored value");
    }
    return {DecodeU64(value.data()),
            std::string(value.data() + 8, value.size() - 8)};
  }

  static void AppendEntry(std::string* state, const ScoredEntry& entry) {
    AppendU64(*state, entry.score);
    AppendU32(*state, static_cast<std::uint32_t>(entry.payload.size()));
    state->append(entry.payload);
  }

  void InsertEntry(std::string* state, ScoredEntry entry) const {
    auto entries = DecodeTopKState(*state);
    const auto pos = std::lower_bound(
        entries.begin(), entries.end(), entry,
        [](const ScoredEntry& a, const ScoredEntry& b) {
          if (a.score != b.score) return a.score > b.score;
          return a.payload < b.payload;
        });
    if (pos != entries.end() && *pos == entry) return;  // exact duplicate
    entries.insert(pos, std::move(entry));
    if (entries.size() > k_) entries.resize(k_);
    state->clear();
    for (const auto& e : entries) AppendEntry(state, e);
  }

  std::size_t k_;
};

// Derives the classic combine function from an aggregator: groups a run of
// pairs by key in a hash table of states and emits (key, state).  The map
// side and the sort-merge reducer's spill path both use this.
class DerivedCombiner {
 public:
  explicit DerivedCombiner(const Aggregator* agg) : agg_(agg) {}

  // Folds one pre-grouped (key, values...) group into a shipped state.
  void CombineGroup(Slice key, ValueIterator& values, bool values_are_states,
                    OutputCollector& out) const {
    std::string state;
    Slice v;
    bool first = true;
    while (values.Next(&v)) {
      if (values_are_states) {
        if (first) {
          state.assign(v.data(), v.size());
        } else {
          agg_->Merge(&state, v);
        }
      } else {
        if (first) {
          agg_->Init(v, &state);
        } else {
          agg_->Update(&state, v);
        }
      }
      first = false;
    }
    if (!first) out.Emit(key, state);
  }

 private:
  const Aggregator* agg_;
};

}  // namespace opmr
