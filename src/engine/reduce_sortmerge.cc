#include "engine/reduce_sortmerge.h"

#include <stdexcept>

#include "engine/aggregators.h"

namespace opmr {

SortMergeReducer::SortMergeReducer(int reducer_id, const JobSpec& spec,
                                   const JobOptions& options,
                                   const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine) {
  if (options_.snapshot_interval > 0.0) {
    next_snapshot_at_ = options_.snapshot_interval;
  }
}

std::vector<std::unique_ptr<RecordStream>> SortMergeReducer::OpenAllRuns() {
  std::vector<std::unique_ptr<RecordStream>> streams;
  streams.reserve(disk_runs_.size() + memory_segments_.size());
  IoChannel spill_read(env_.metrics, device::kSpillRead);
  for (const auto& path : disk_runs_) {
    streams.push_back(
        OpenSpillRun(options_.compress_spills, path, spill_read));
  }
  for (const auto& blob : memory_segments_) {
    streams.push_back(std::make_unique<MemoryRunStream>(Slice(blob)));
  }
  return streams;
}

void SortMergeReducer::SpillMemorySegments() {
  if (memory_segments_.empty()) return;
  const double begin = env_.job_start->Seconds();
  PhaseScope cpu(env_.profiler, "reduce_merge");

  std::vector<std::unique_ptr<RecordStream>> streams;
  streams.reserve(memory_segments_.size());
  for (const auto& blob : memory_segments_) {
    streams.push_back(std::make_unique<MemoryRunStream>(Slice(blob)));
  }
  KWayMerger merger(std::move(streams));

  const auto path = env_.files->NewFile("reduce_spill");
  auto writer = NewSpillSink(options_.compress_spills, path,
                             IoChannel(env_.metrics, device::kSpillWrite));

  if (spec_.has_aggregator() && options_.map_side_combine) {
    // Combine while spilling; the run still goes to disk — the effect the
    // paper measures as reduce spills that happen despite ample memory.
    DerivedCombiner combiner(spec_.aggregator.get());
    class RunCollector final : public OutputCollector {
     public:
      explicit RunCollector(RecordSink* w) : w_(w) {}
      void Emit(Slice key, Slice value) override { w_->Append(key, value); }

     private:
      RecordSink* w_;
    } collector(writer.get());
    GroupedApply(merger, [&](Slice key, ValueIterator& values) {
      combiner.CombineGroup(key, values, values_are_states_, collector);
    });
  } else {
    while (merger.Next()) writer->Append(merger.key(), merger.value());
  }
  writer->Close();

  memory_segments_.clear();
  memory_bytes_ = 0;
  disk_runs_.push_back(path);
  env_.timeline->Record(TaskKind::kMerge, begin, env_.job_start->Seconds());
}

void SortMergeReducer::MergeDiskRuns() {
  const double begin = env_.job_start->Seconds();
  PhaseScope cpu(env_.profiler, "reduce_merge");
  const int f = options_.merge_factor;
  std::vector<std::filesystem::path> oldest(
      disk_runs_.begin(),
      disk_runs_.begin() + std::min<std::size_t>(f, disk_runs_.size()));
  const auto merged = env_.files->NewFile("merge_run");
  {
    std::vector<std::unique_ptr<RecordStream>> inputs;
    inputs.reserve(oldest.size());
    IoChannel spill_read(env_.metrics, device::kSpillRead);
    for (const auto& path : oldest) {
      inputs.push_back(OpenSpillRun(options_.compress_spills, path,
                                    spill_read));
    }
    KWayMerger pass(std::move(inputs));
    auto writer = NewSpillSink(options_.compress_spills, merged,
                               IoChannel(env_.metrics, device::kSpillWrite));
    while (pass.Next()) writer->Append(pass.key(), pass.value());
    writer->Close();
  }
  disk_runs_.erase(disk_runs_.begin(), disk_runs_.begin() + oldest.size());
  disk_runs_.push_back(merged);
  for (const auto& path : oldest) std::filesystem::remove(path);
  ++merge_passes_;
  env_.timeline->Record(TaskKind::kMerge, begin, env_.job_start->Seconds());
}

void SortMergeReducer::TakeSnapshot() {
  const double begin = env_.job_start->Seconds();
  PhaseScope cpu(env_.profiler, "snapshot_merge");
  ++snapshots_;

  // HOP repeats the whole merge over everything received so far (§III-D):
  // the disk runs are read again in full.
  auto streams = OpenAllRuns();
  KWayMerger merger(std::move(streams));
  const std::string name = spec_.output_file + ".snapshot" +
                           std::to_string(snapshots_) + ".part" +
                           std::to_string(reducer_id_);
  ReducerOutput out(env_, name);
  const auto reduce_fn = MakeReduceFn(spec_, values_are_states_);
  GroupedApply(
      merger,
      [&](Slice key, ValueIterator& values) { reduce_fn(key, values, out); },
      spec_.grouping_prefix);
  out.Close();
  env_.timeline->Record(TaskKind::kMerge, begin, env_.job_start->Seconds());
}

std::uint64_t SortMergeReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);

  // --- Shuffle + background merge phase -------------------------------------
  ShuffleItem item;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    if (!item.sorted) {
      throw std::runtime_error(
          "SortMergeReducer: received unsorted shuffle data; "
          "group_by=kSortMerge requires the sorting map path");
    }
    if (item.from_file) {
      // Fetch the segment into the merge buffer (Hadoop copies map output
      // to the reducer's memory when it fits).
      std::string blob(item.segment.bytes, '\0');
      SequentialReader reader(item.path, shuffle_read);
      reader.Seek(item.segment.offset);
      if (!blob.empty() && !reader.ReadExact(blob.data(), blob.size())) {
        throw std::runtime_error("SortMergeReducer: segment fetch failed");
      }
      memory_bytes_ += blob.size();
      memory_segments_.push_back(std::move(blob));
    } else {
      memory_bytes_ += item.bytes.size();
      memory_segments_.push_back(std::move(item.bytes));
    }

    if (memory_bytes_ > options_.reduce_buffer_bytes) SpillMemorySegments();
    while (disk_runs_.size() >= static_cast<std::size_t>(options_.merge_factor)) {
      MergeDiskRuns();
    }
    if (env_.shuffle->MapsDoneFraction() >= next_snapshot_at_ &&
        next_snapshot_at_ < 1.0) {
      TakeSnapshot();
      next_snapshot_at_ += options_.snapshot_interval;
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  // --- Multi-pass merge down to the merge factor ----------------------------
  while (disk_runs_.size() > static_cast<std::size_t>(options_.merge_factor)) {
    MergeDiskRuns();
  }

  // --- Final merge feeding the reduce function -------------------------------
  const double reduce_begin = env_.job_start->Seconds();
  auto streams = OpenAllRuns();
  KWayMerger merger(std::move(streams));
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  const auto reduce_fn = MakeReduceFn(spec_, values_are_states_);
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    GroupedApply(
        merger,
        [&](Slice key, ValueIterator& values) { reduce_fn(key, values, out); },
        spec_.grouping_prefix);
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

}  // namespace opmr
