// Hybrid-hash grouping reducer (§V reduce technique 1) and the shared
// external-aggregation routine the incremental reducers use to resolve
// spilled data.
//
// Hybrid hash (Shapiro 1986, as cited by the paper) splits the key space
// into sub-buckets with a fresh hash-family member per recursion level;
// buckets stay memory-resident until the budget is exceeded, at which point
// the largest resident bucket is demoted to disk and its future arrivals
// are appended straight to its file.  After input ends, resident buckets
// are reduced in memory and spilled buckets are processed recursively.
//
// This grouping works with or without a combine function, but remains a
// blocking operation with I/O comparable to sort-merge — exactly the
// trade-off the paper states; the incremental paths exist to beat it.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "engine/job.h"
#include "engine/reduce_common.h"

namespace opmr {

// Hash table grouping full value lists per key (the no-aggregator mode of
// hybrid hash: sessionization and inverted index have no combine function).
class HashValueTable {
 public:
  HashValueTable() = default;

  void Add(Slice key, Slice value) {
    auto it = map_.find(key.view());
    if (it == map_.end()) {
      it = map_.emplace(std::string(key.view()), std::vector<Slice>{}).first;
      bytes_ += key.size() + kEntryOverhead;
    }
    it->second.push_back(arena_.Copy(value));
    bytes_ += value.size() + sizeof(Slice);
  }

  [[nodiscard]] std::size_t MemoryBytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }

  // Applies `fn(key, values)` to every group.
  void ForEach(const std::function<void(Slice, const std::vector<Slice>&)>& fn)
      const {
    for (const auto& [key, values] : map_) fn(key, values);
  }

  void Clear() {
    map_.clear();
    arena_.Reset();
    bytes_ = 0;
  }

 private:
  static constexpr std::size_t kEntryOverhead = 96;

  Arena arena_;
  std::unordered_map<std::string, std::vector<Slice>, TransparentStringHash,
                     std::equal_to<>>
      map_;
  std::size_t bytes_ = 0;
};

// Recursively groups-and-reduces the records of `runs` (on-disk files of
// framed (key, value-or-state) records) within `memory_budget`, calling
// `emit_group(key, values)` once per key with all its values.  Used by
// HybridHashReducer for demoted buckets and by the incremental reducers to
// resolve their spill files.  `level` selects the hash-family member.
void ExternalHashAggregate(
    const std::vector<std::filesystem::path>& runs, int level,
    std::size_t memory_budget, const RuntimeEnv& env,
    const std::function<void(Slice key, const std::vector<Slice>& values)>&
        emit_group,
    bool compress = false);

class HybridHashReducer {
 public:
  HybridHashReducer(int reducer_id, const JobSpec& spec,
                    const JobOptions& options, const RuntimeEnv& env);

  std::uint64_t Run();

  [[nodiscard]] int buckets_spilled() const noexcept { return spilled_count_; }

 private:
  static constexpr int kNumBuckets = 32;

  struct Bucket {
    // Exactly one representation is active.
    std::unique_ptr<HashValueTable> values;   // no aggregator
    std::unique_ptr<class StateTable> states; // aggregator
    std::unique_ptr<RecordSink> spill;        // demoted to disk
    std::filesystem::path spill_path;
    std::uint64_t spill_records = 0;
  };

  void FoldRecord(Slice key, Slice value);
  void DemoteLargestBucket();
  [[nodiscard]] std::size_t ResidentBytes() const;
  void EmitResidentBucket(Bucket& bucket, OutputCollector& out);
  void EmitSpilledBucket(Bucket& bucket, OutputCollector& out);

  int reducer_id_;
  const JobSpec& spec_;
  const JobOptions& options_;
  RuntimeEnv env_;
  bool values_are_states_;
  HashFamily family_{0x5eedf00dULL};
  std::vector<Bucket> buckets_;
  int spilled_count_ = 0;
};

}  // namespace opmr
