#include "engine/map_task.h"

#include <stdexcept>

#include "engine/aggregators.h"
#include "engine/map_output.h"

namespace opmr {

namespace {

// Collects map-function output into the sort buffer.  With a grouping
// prefix (secondary sort), only the prefix chooses the partition so one
// group never splits across reducers.
class BufferCollector final : public OutputCollector {
 public:
  BufferCollector(MapOutputBuffer* buffer, const JobSpec* spec,
                  MapTask::Stats* stats)
      : buffer_(buffer), spec_(spec), stats_(stats) {}

  void Emit(Slice key, Slice value) override {
    std::uint32_t partition;
    if (spec_->partitioner) {
      partition = spec_->partitioner(key, spec_->num_reducers);
    } else {
      Slice partition_key = key;
      if (spec_->grouping_prefix > 0 && key.size() > spec_->grouping_prefix) {
        partition_key = Slice(key.data(), spec_->grouping_prefix);
      }
      partition = PartitionOf(partition_key, spec_->num_reducers);
    }
    buffer_->Add(partition, key, value);
    ++stats_->output_records;
    stats_->output_bytes += key.size() + value.size();
  }

 private:
  MapOutputBuffer* buffer_;
  const JobSpec* spec_;
  MapTask::Stats* stats_;
};

// Folds map-function output into the combine table.
class TableCollector final : public OutputCollector {
 public:
  TableCollector(MapCombineTable* table, int num_reducers,
                 MapTask::Stats* stats)
      : table_(table), num_reducers_(num_reducers), stats_(stats) {}

  void Emit(Slice key, Slice value) override {
    // One hash per record: it selects the partition and probes the table.
    const std::uint64_t h = BytesHash(key, kPartitionSeed);
    const auto partition =
        partitioner_ ? partitioner_(key, num_reducers_)
                     : static_cast<std::uint32_t>(
                           h % static_cast<std::uint64_t>(num_reducers_));
    table_->Fold(partition, h, key, value, /*value_is_state=*/false);
    ++stats_->output_records;
    stats_->output_bytes += key.size() + value.size();
  }

  std::function<std::uint32_t(Slice, int)> partitioner_;

 private:
  MapCombineTable* table_;
  int num_reducers_;
  MapTask::Stats* stats_;
};

// Streams map-function output straight to the sink (partition-only scan).
class StreamingCollector final : public OutputCollector {
 public:
  StreamingCollector(MapOutputSink* sink, int num_reducers,
                     MapTask::Stats* stats)
      : sink_(sink), num_reducers_(num_reducers), stats_(stats) {}

  void Emit(Slice key, Slice value) override {
    const auto partition = partitioner_
                               ? partitioner_(key, num_reducers_)
                               : PartitionOf(key, num_reducers_);
    sink_->AppendStreaming(partition, key, value);
    ++stats_->output_records;
    stats_->output_bytes += key.size() + value.size();
  }

  std::function<std::uint32_t(Slice, int)> partitioner_;

 private:
  MapOutputSink* sink_;
  int num_reducers_;
  MapTask::Stats* stats_;
};

}  // namespace

MapTask::MapTask(int task_id, const JobSpec& spec, const JobOptions& options,
                 const RuntimeEnv& env, const BlockInfo& block,
                 MapOutputSink* sink)
    : task_id_(task_id),
      spec_(spec),
      options_(options),
      env_(env),
      block_(block),
      sink_(sink) {}

MapTask::Stats MapTask::Run() {
  // Node-aware open: counts the read as local/remote for the node this
  // attempt runs on and pays the configured remote penalty.
  const std::unique_ptr<DfsBlockReader> owned =
      env_.dfs->OpenBlock(block_, env_.map_node);
  DfsBlockReader& reader = *owned;
  if (options_.group_by == GroupBy::kSortMerge) {
    RunSortPath(reader);
  } else if (spec_.has_aggregator() && options_.map_side_combine) {
    RunHashCombinePath(reader);
  } else {
    RunPartitionOnlyPath(reader);
  }
  sink_->Close();
  return stats_;
}

void MapTask::FlushSortedBuffer(MapOutputBuffer& buffer) {
  if (buffer.Empty()) return;
  {
    // The CPU cost Table II isolates: Hadoop's block-level sort on the
    // compound (partition, key).
    PhaseScope cpu(env_.profiler, "map_sort");
    buffer.Sort();
  }

  const bool combine = spec_.has_aggregator() && options_.map_side_combine;
  sink_->BeginBatch(/*sorted=*/true);
  if (combine) {
    PhaseScope cpu(env_.profiler, "map_combine");
    const Aggregator* agg = spec_.aggregator.get();
    const auto& records = buffer.records();
    std::string state;
    std::size_t i = 0;
    while (i < records.size()) {
      // One combine group: a run of equal (partition, key).
      const auto& head = records[i];
      const Slice key(head.key, head.key_len);
      agg->Init(Slice(head.value, head.value_len), &state);
      std::size_t j = i + 1;
      while (j < records.size() && records[j].partition == head.partition &&
             Slice(records[j].key, records[j].key_len) == key) {
        agg->Update(&state, Slice(records[j].value, records[j].value_len));
        ++j;
      }
      sink_->BatchAppend(head.partition, key, state);
      i = j;
    }
  } else {
    for (const auto& r : buffer.records()) {
      sink_->BatchAppend(r.partition, Slice(r.key, r.key_len),
                         Slice(r.value, r.value_len));
    }
  }
  sink_->EndBatch();
  buffer.Clear();
}

void MapTask::RunSortPath(DfsBlockReader& reader) {
  MapOutputBuffer buffer;
  BufferCollector collector(&buffer, &spec_, &stats_);
  Slice record;
  ThreadCpuTimer cpu;
  std::uint64_t record_no = 0;
  while (reader.Next(&record)) {
    if (env_.fault != nullptr) env_.fault->OnMapRecord(task_id_, ++record_no);
    spec_.map(record, collector);
    ++stats_.input_records;
    if (buffer.MemoryBytes() > options_.map_buffer_bytes) {
      env_.profiler->AddCpuNanos("map_function", cpu.Nanos());
      FlushSortedBuffer(buffer);
      cpu.Restart();
    }
  }
  env_.profiler->AddCpuNanos("map_function", cpu.Nanos());
  FlushSortedBuffer(buffer);
}

void MapTask::RunHashCombinePath(DfsBlockReader& reader) {
  MapCombineTable table(spec_.aggregator.get());
  TableCollector collector(&table, spec_.num_reducers, &stats_);
  collector.partitioner_ = spec_.partitioner;
  Slice record;
  ThreadCpuTimer cpu;
  auto flush = [&] {
    env_.profiler->AddCpuNanos("map_hash", cpu.Nanos());
    if (!table.Empty()) {
      PhaseScope flush_cpu(env_.profiler, "map_flush");
      sink_->BeginBatch(/*sorted=*/false);
      for (const auto* entry : table.EntriesByPartition()) {
        sink_->BatchAppend(entry->partition, entry->key, entry->state);
      }
      sink_->EndBatch();
      table.Clear();
    }
    cpu.Restart();
  };
  std::uint64_t record_no = 0;
  while (reader.Next(&record)) {
    if (env_.fault != nullptr) env_.fault->OnMapRecord(task_id_, ++record_no);
    spec_.map(record, collector);
    ++stats_.input_records;
    if (table.MemoryBytes() > options_.map_buffer_bytes) flush();
  }
  flush();
}

void MapTask::RunPartitionOnlyPath(DfsBlockReader& reader) {
  StreamingCollector collector(sink_, spec_.num_reducers, &stats_);
  collector.partitioner_ = spec_.partitioner;
  Slice record;
  ThreadCpuTimer cpu;
  std::uint64_t record_no = 0;
  while (reader.Next(&record)) {
    if (env_.fault != nullptr) env_.fault->OnMapRecord(task_id_, ++record_no);
    spec_.map(record, collector);
    ++stats_.input_records;
  }
  env_.profiler->AddCpuNanos("map_function", cpu.Nanos());
}

}  // namespace opmr
