// Map-output sinks: where a map task's (partition, key, value) stream goes.
//
//   * FileSink — Hadoop: output is persisted to a local spill file with one
//     contiguous segment per partition, synced for fault tolerance, then
//     registered with the shuffle service for pulling.
//   * PushSink — MapReduce Online: output is cut into chunks of the
//     configured pipelining granularity and pushed to reducers eagerly;
//     every chunk is also appended to a local file (HOP persists map output
//     with asynchronous I/O), and chunks rejected by back-pressure are
//     registered as file segments to be pulled later.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "engine/shuffle.h"
#include "storage/file_manager.h"
#include "storage/run_format.h"

namespace opmr {

class MapOutputSink {
 public:
  virtual ~MapOutputSink() = default;

  // A batch is a partition-grouped sequence of records (non-decreasing
  // partition ids); `sorted` marks per-partition key order (sort path).
  virtual void BeginBatch(bool sorted) = 0;
  virtual void BatchAppend(std::uint32_t partition, Slice key, Slice value) = 0;
  virtual void EndBatch() = 0;

  // Record-at-a-time appends in arbitrary partition order (the hash path's
  // partition-only scan, paper §V map technique 1).
  virtual void AppendStreaming(std::uint32_t partition, Slice key,
                               Slice value) = 0;

  // Finishes the task's output.  After Close() the caller calls Publish()
  // on success and then reports MapTaskDone to the shuffle service.
  virtual void Close() = 0;

  // Makes the task's output visible to reducers.  Kept separate from
  // Close() so a failed attempt can be discarded and re-executed without
  // reducers ever seeing its partial output (Hadoop's task-retry model).
  // PushSink publishes eagerly by design (HOP pipelines before completion,
  // which is exactly why the paper notes pipelining weakens fault
  // tolerance); its Publish() is a no-op and retries are rejected at
  // validation time.
  virtual void Publish() = 0;

  // Discards a failed attempt's buffered output without flushing it.  The
  // executor calls this before retrying so cleanup never writes (or passes
  // through the I/O fault hook) bytes belonging to a dead attempt.
  virtual void Abandon() noexcept = 0;

  // True when output becomes visible before Publish() (push pipelining).
  [[nodiscard]] virtual bool publishes_eagerly() const = 0;

  // Total map-output payload bytes produced through this sink.
  [[nodiscard]] virtual std::uint64_t bytes_out() const = 0;
};

class FileSink final : public MapOutputSink {
 public:
  FileSink(int map_task, FileManager* files, MetricRegistry* metrics,
           ShuffleMapEndpoint* shuffle, int num_partitions,
           std::size_t stream_buffer_bytes, bool sync_output);

  void BeginBatch(bool sorted) override;
  void BatchAppend(std::uint32_t partition, Slice key, Slice value) override;
  void EndBatch() override;
  void AppendStreaming(std::uint32_t partition, Slice key,
                       Slice value) override;
  void Close() override;
  void Publish() override;
  void Abandon() noexcept override;
  [[nodiscard]] bool publishes_eagerly() const override { return false; }
  [[nodiscard]] std::uint64_t bytes_out() const override { return bytes_out_; }

 private:
  void FlushStreamBuffers();

  int map_task_;
  FileManager* files_;
  MetricRegistry* metrics_;
  ShuffleMapEndpoint* shuffle_;
  int num_partitions_;
  std::size_t stream_buffer_bytes_;
  bool sync_output_;

  // Active batch state.
  std::unique_ptr<SequentialWriter> writer_;
  MapOutputFile current_file_;
  int current_partition_ = -1;
  std::uint64_t segment_start_ = 0;
  std::uint64_t segment_records_ = 0;

  // Streaming-mode per-partition staging buffers (framed records).
  std::vector<std::string> stream_buffers_;
  std::vector<std::uint64_t> stream_records_;
  std::size_t stream_bytes_ = 0;

  // Completed spill files awaiting Publish().
  std::vector<MapOutputFile> pending_files_;

  std::uint64_t bytes_out_ = 0;
};

class PushSink final : public MapOutputSink {
 public:
  PushSink(int map_task, FileManager* files, MetricRegistry* metrics,
           ShuffleMapEndpoint* shuffle, int num_partitions,
           std::size_t chunk_bytes);

  void BeginBatch(bool sorted) override;
  void BatchAppend(std::uint32_t partition, Slice key, Slice value) override;
  void EndBatch() override;
  void AppendStreaming(std::uint32_t partition, Slice key,
                       Slice value) override;
  void Close() override;
  void Publish() override {}  // chunks were pushed/registered eagerly
  void Abandon() noexcept override;
  [[nodiscard]] bool publishes_eagerly() const override { return true; }
  [[nodiscard]] std::uint64_t bytes_out() const override { return bytes_out_; }

  // Diverted-to-disk chunk count (back-pressure events; bench metric).
  [[nodiscard]] std::uint64_t diverted_chunks() const noexcept {
    return diverted_;
  }
  [[nodiscard]] std::uint64_t pushed_chunks() const noexcept {
    return pushed_;
  }

 private:
  void AppendRecord(std::uint32_t partition, Slice key, Slice value);
  void EmitChunk(std::uint32_t partition);
  void EmitAllPartialChunks();

  int map_task_;
  ShuffleMapEndpoint* shuffle_;
  MetricRegistry* metrics_;
  std::size_t chunk_bytes_;
  bool batch_sorted_ = false;

  std::unique_ptr<SequentialWriter> writer_;  // persistence + divert backing
  std::vector<std::string> chunks_;           // per-partition framed records
  std::vector<std::uint64_t> chunk_records_;

  std::uint64_t bytes_out_ = 0;
  std::uint64_t pushed_ = 0;
  std::uint64_t diverted_ = 0;
};

}  // namespace opmr
