// Map-side output structures.
//
//   * MapOutputBuffer  — the Hadoop path: key/value bytes land in an arena,
//     record metadata in a flat vector; a buffer sort on the compound
//     (partition, key) achieves partitioning + per-partition order in one
//     pass (paper §II-A).  This sort is the CPU overhead Table II exposes.
//   * MapCombineTable  — the hash path with a combiner: an open-addressing
//     table keyed by (partition, key bytes) folding values into aggregator
//     states in place; Hybrid-Hash degenerates to this in-memory table when
//     the map output fits, which the paper notes is the common case.
//
// Both structures are owned by a single map-task thread (no sharing).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/hash.h"
#include "common/slice.h"
#include "engine/job.h"

namespace opmr {

// One partition's contiguous byte range inside a map-output spill file.
struct Segment {
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
};

// A completed spill file of one map task: R contiguous partition segments.
struct MapOutputFile {
  int map_task = -1;
  std::filesystem::path path;
  bool sorted = false;  // segments internally sorted by key (sort-merge path)
  std::vector<Segment> partitions;
};

// --- Sort path ---------------------------------------------------------------

class MapOutputBuffer {
 public:
  struct RecordMeta {
    std::uint32_t partition;
    std::uint32_t key_len;
    std::uint32_t value_len;
    const char* key;  // into the arena; stable
    const char* value;
  };

  MapOutputBuffer() = default;

  void Add(std::uint32_t partition, Slice key, Slice value) {
    char* dst = arena_.Allocate(key.size() + value.size());
    std::memcpy(dst, key.data(), key.size());
    std::memcpy(dst + key.size(), value.data(), value.size());
    records_.push_back({partition, static_cast<std::uint32_t>(key.size()),
                        static_cast<std::uint32_t>(value.size()), dst,
                        dst + key.size()});
    payload_bytes_ += key.size() + value.size();
  }

  // Approximate resident bytes: payload + metadata.
  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return payload_bytes_ + records_.size() * sizeof(RecordMeta);
  }
  [[nodiscard]] std::size_t NumRecords() const noexcept {
    return records_.size();
  }
  [[nodiscard]] bool Empty() const noexcept { return records_.empty(); }

  // Hadoop's block-level sort on the compound (partition, key).  The caller
  // brackets this in the "map_sort" profiling phase — this is the CPU cost
  // Table II attributes to sorting.
  void Sort();

  // Records in current order (call Sort() first for partition/key order).
  [[nodiscard]] const std::vector<RecordMeta>& records() const noexcept {
    return records_;
  }

  void Clear() {
    records_.clear();
    arena_.Reset();
    payload_bytes_ = 0;
  }

 private:
  Arena arena_;
  std::vector<RecordMeta> records_;
  std::size_t payload_bytes_ = 0;
};

// --- Hash path ---------------------------------------------------------------

// Open-addressing (linear probing) table folding map output into per-key
// aggregator states.  Keys are arena-copied once; states are flat byte
// strings updated in place.  No sorting anywhere — the CPU saving the paper
// reports in §V.
class MapCombineTable {
 public:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint32_t partition = 0;
    Slice key;          // arena-backed
    std::string state;  // aggregator state
    bool used = false;
  };

  explicit MapCombineTable(const Aggregator* aggregator,
                           std::size_t initial_slots = 1u << 12);

  // Folds (partition, key, value) into the key's state.  `value_is_state`
  // distinguishes raw map-function output from already-combined states
  // (re-combining spilled runs).  The overload taking `key_hash` reuses the
  // partitioner's hash so each record is hashed exactly once — part of the
  // "scan once, no sorting" CPU story of §V.
  void Fold(std::uint32_t partition, Slice key, Slice value,
            bool value_is_state);
  void Fold(std::uint32_t partition, std::uint64_t key_hash, Slice key,
            Slice value, bool value_is_state);

  [[nodiscard]] std::size_t MemoryBytes() const noexcept {
    return arena_.allocated_bytes() + slots_.size() * sizeof(std::uint32_t) +
           entries_.size() * (sizeof(Entry) + 16) + state_bytes_;
  }
  [[nodiscard]] std::size_t NumKeys() const noexcept { return entries_.size(); }
  [[nodiscard]] bool Empty() const noexcept { return entries_.empty(); }

  // Entries grouped by partition (ascending); within a partition the order
  // is arbitrary — hash output is unsorted by design.
  [[nodiscard]] std::vector<const Entry*> EntriesByPartition() const;

  void Clear();

  // Number of probe steps performed (hash CPU proxy for calibration).
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }

 private:
  void Grow();

  const Aggregator* aggregator_;
  Arena arena_;
  std::vector<std::uint32_t> slots_;  // index+1 into entries_; 0 = empty
  std::vector<Entry> entries_;
  std::size_t state_bytes_ = 0;
  std::uint64_t probes_ = 0;
};

}  // namespace opmr
