#include "engine/shuffle_remote.h"

#include <stdexcept>
#include <utility>

namespace opmr {

// --- ShuffleClient -----------------------------------------------------------

ShuffleClient::ShuffleClient(net::Transport* transport,
                             MetricRegistry* metrics, Options options)
    : transport_(transport),
      metrics_(metrics),
      options_(std::move(options)),
      credits_(options_.num_reducers, options_.push_queue_chunks),
      gone_(options_.num_reducers, false) {
  net::HelloMsg hello;
  hello.job = options_.job;
  hello.num_map_tasks = options_.num_map_tasks;
  hello.num_reducers = options_.num_reducers;
  // Preamble first: if the explicit Hello send below is dropped by an
  // injected fault, the reconnect path re-introduces us before the
  // retransmit goes out.
  transport_->SetConnectPreamble(hello.ToFrame());
  conn_ = transport_->Connect([this](net::Connection* from, net::Frame frame) {
    HandleReply(from, std::move(frame));
  });
  conn_->Send(hello.ToFrame());
}

void ShuffleClient::CheckAborted() {
  std::scoped_lock lock(mu_);
  if (aborted_) {
    throw std::runtime_error("shuffle aborted by reduce group: " +
                             abort_reason_);
  }
}

void ShuffleClient::HandleReply(net::Connection* /*from*/, net::Frame frame) {
  switch (frame.type) {
    case net::FrameType::kCredit: {
      const auto msg = net::CreditMsg::Parse(frame);
      std::scoped_lock lock(mu_);
      credits_.at(msg.reducer) += msg.credits;
      break;
    }
    case net::FrameType::kGone: {
      const auto msg = net::GoneMsg::Parse(frame);
      std::scoped_lock lock(mu_);
      gone_.at(msg.reducer) = true;
      break;
    }
    case net::FrameType::kAbort: {
      const auto msg = net::AbortMsg::Parse(frame);
      std::scoped_lock lock(mu_);
      aborted_ = true;
      abort_reason_ = msg.reason;
      break;
    }
    default:
      break;  // unexpected reply type; ignore
  }
}

PushResult ShuffleClient::TryPush(int reducer, ShuffleItem chunk) {
  {
    std::scoped_lock lock(mu_);
    if (aborted_) {
      throw std::runtime_error("shuffle aborted by reduce group: " +
                               abort_reason_);
    }
    if (gone_.at(reducer)) return PushResult::kReducerGone;
    if (credits_.at(reducer) == 0) return PushResult::kBusy;
    --credits_[reducer];
  }
  net::ChunkMsg msg;
  msg.map_task = chunk.map_task;
  msg.reducer = reducer;
  msg.sorted = chunk.sorted;
  msg.records = chunk.records;
  msg.bytes = std::move(chunk.bytes);
  conn_->Send(msg.ToFrame());
  return PushResult::kAccepted;
}

void ShuffleClient::RegisterFile(const MapOutputFile& file) {
  for (int r = 0; r < static_cast<int>(file.partitions.size()); ++r) {
    const Segment& seg = file.partitions[r];
    if (seg.bytes == 0) continue;
    SendSegment(file.map_task, file.path, r, seg, file.sorted);
  }
}

void ShuffleClient::RegisterSegment(int map_task,
                                    const std::filesystem::path& path,
                                    int reducer, const Segment& segment,
                                    bool sorted) {
  if (segment.bytes == 0) return;
  SendSegment(map_task, path, reducer, segment, sorted);
}

void ShuffleClient::SendSegment(int map_task,
                                const std::filesystem::path& path,
                                int reducer, const Segment& segment,
                                bool sorted) {
  CheckAborted();
  if (options_.shared_fs) {
    net::SegmentRefMsg msg;
    msg.map_task = map_task;
    msg.reducer = reducer;
    msg.sorted = sorted;
    msg.records = segment.records;
    msg.offset = segment.offset;
    msg.length = segment.bytes;
    msg.path = path.string();
    conn_->Send(msg.ToFrame());
    return;
  }
  // No shared filesystem: ship the segment bytes inline.  The read is not
  // charged to a device channel — it is the wire's copy, not an engine I/O
  // the cost model tracks (net.bytes_sent covers it).
  std::string bytes(segment.bytes, '\0');
  SequentialReader reader(path, IoChannel());
  reader.Seek(segment.offset);
  if (!reader.ReadExact(bytes.data(), bytes.size())) {
    throw std::runtime_error("shuffle client: segment vanished: " +
                             path.string());
  }
  net::SegmentDataMsg msg;
  msg.map_task = map_task;
  msg.reducer = reducer;
  msg.sorted = sorted;
  msg.records = segment.records;
  msg.bytes = std::move(bytes);
  conn_->Send(msg.ToFrame());
}

void ShuffleClient::MapTaskDone(int map_task, std::uint64_t input_records,
                                std::uint64_t output_records) {
  CheckAborted();
  net::MapDoneMsg msg;
  msg.map_task = map_task;
  msg.input_records = input_records;
  msg.output_records = output_records;
  conn_->Send(msg.ToFrame());
}

void ShuffleClient::Finish() {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  net::ByeMsg bye;
  bye.frames_sent =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetFramesSent));
  bye.bytes_sent =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetBytesSent));
  bye.retransmits =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetRetransmits));
  bye.reconnects =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetReconnects));
  bye.stall_nanos =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetStallNanos));
  try {
    conn_->Send(bye.ToFrame());
  } catch (const net::TransportError&) {
    // Best-effort: the job's data already made it across.
  }
  conn_->Close();
}

void ShuffleClient::SendAbort(const std::string& reason) {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  net::AbortMsg msg;
  msg.reason = reason;
  try {
    conn_->Send(msg.ToFrame());
  } catch (const net::TransportError&) {
    // The reduce side will hit its idle timeout instead.
  }
  conn_->Close();
}

// --- ShuffleServer -----------------------------------------------------------

ShuffleServer::ShuffleServer(net::Transport* transport,
                             ShuffleService* shuffle, FileManager* files,
                             MetricRegistry* metrics,
                             bool merge_client_wire_stats)
    : transport_(transport),
      shuffle_(shuffle),
      files_(files),
      metrics_(metrics),
      merge_client_wire_stats_(merge_client_wire_stats) {}

ShuffleServer::~ShuffleServer() {
  shuffle_->SetChunkConsumedProbe(nullptr);
  shuffle_->SetGoneProbe(nullptr);
  std::scoped_lock lock(mu_);
  for (auto& [conn, writer] : spills_) {
    if (writer != nullptr) writer->Close();
  }
}

void ShuffleServer::Start() {
  shuffle_->SetChunkConsumedProbe([this](int reducer) {
    net::CreditMsg credit;
    credit.reducer = reducer;
    SendToClient(credit.ToFrame());
  });
  shuffle_->SetGoneProbe([this](int reducer) {
    net::GoneMsg gone;
    gone.reducer = reducer;
    SendToClient(gone.ToFrame());
  });
  transport_->Listen([this](net::Connection* from, net::Frame frame) {
    HandleFrame(from, std::move(frame));
  });
}

void ShuffleServer::SendToClient(const net::Frame& frame) {
  net::Connection* client = nullptr;
  {
    std::scoped_lock lock(mu_);
    client = client_;
  }
  if (client == nullptr) return;
  try {
    client->Send(frame);
  } catch (const net::TransportError&) {
    // A lost credit only costs pipelining (the mapper diverts to disk);
    // a lost Gone only costs fail-fast latency.  Correctness is kept.
  }
}

std::uint64_t ShuffleServer::map_input_records() const {
  std::scoped_lock lock(mu_);
  return map_input_records_;
}

std::uint64_t ShuffleServer::map_output_records() const {
  std::scoped_lock lock(mu_);
  return map_output_records_;
}

void ShuffleServer::HandleFrame(net::Connection* from, net::Frame frame) {
  // Never let a malformed frame unwind a transport reader thread: poison
  // the shuffle instead so reducers fail with a diagnosis.
  try {
    switch (frame.type) {
      case net::FrameType::kHello: {
        (void)net::HelloMsg::Parse(frame);  // validates version
        std::scoped_lock lock(mu_);
        client_ = from;  // idempotent; re-Hello after reconnect re-routes
        break;
      }
      case net::FrameType::kChunk: {
        auto msg = net::ChunkMsg::Parse(frame);
        ShuffleItem item;
        item.map_task = msg.map_task;
        item.sorted = msg.sorted;
        item.records = msg.records;
        item.bytes = std::move(msg.bytes);
        // The client already admitted this chunk against its credit
        // window; the bounded re-check would spuriously reject after a
        // Rewind re-queued consumed items.
        shuffle_->ForcePush(msg.reducer, std::move(item));
        break;
      }
      case net::FrameType::kSegmentRef: {
        const auto msg = net::SegmentRefMsg::Parse(frame);
        Segment seg;
        seg.offset = msg.offset;
        seg.bytes = msg.length;
        seg.records = msg.records;
        shuffle_->RegisterSegment(msg.map_task,
                                  std::filesystem::path(msg.path),
                                  msg.reducer, seg, msg.sorted);
        break;
      }
      case net::FrameType::kSegmentData: {
        auto msg = net::SegmentDataMsg::Parse(frame);
        std::filesystem::path spill_path;
        Segment seg;
        {
          std::scoped_lock lock(mu_);
          auto& writer = spills_[from];
          if (writer == nullptr) {
            writer = std::make_unique<SequentialWriter>(
                files_->NewFile("net_seg"),
                IoChannel(metrics_, device::kNetSegmentWrite));
          }
          seg.offset = writer->bytes_written();
          seg.bytes = msg.bytes.size();
          seg.records = msg.records;
          writer->Append(msg.bytes);
          writer->Flush();
          spill_path = writer->path();
        }
        shuffle_->RegisterSegment(msg.map_task, spill_path, msg.reducer, seg,
                                  msg.sorted);
        break;
      }
      case net::FrameType::kMapDone: {
        const auto msg = net::MapDoneMsg::Parse(frame);
        {
          std::scoped_lock lock(mu_);
          map_input_records_ += msg.input_records;
          map_output_records_ += msg.output_records;
        }
        shuffle_->MapTaskDone(msg.map_task);
        break;
      }
      case net::FrameType::kBye: {
        const auto msg = net::ByeMsg::Parse(frame);
        if (merge_client_wire_stats_) {
          // Client-process-only events, folded in so the reduce-side job
          // report covers the whole wire.  Skipped when both endpoints
          // share one registry (kAll mode) — they are already counted.
          metrics_->Get(net::kNetRetransmits)
              ->Add(static_cast<std::int64_t>(msg.retransmits));
          metrics_->Get(net::kNetReconnects)
              ->Add(static_cast<std::int64_t>(msg.reconnects));
          metrics_->Get(net::kNetStallNanos)
              ->Add(static_cast<std::int64_t>(msg.stall_nanos));
        }
        break;
      }
      case net::FrameType::kAbort: {
        const auto msg = net::AbortMsg::Parse(frame);
        shuffle_->Abort("map worker group aborted: " + msg.reason);
        break;
      }
      default:
        throw net::WireError("shuffle server: unexpected frame type " +
                             std::string(net::FrameTypeName(frame.type)));
    }
  } catch (const std::exception& e) {
    shuffle_->Abort(std::string("shuffle server: ") + e.what());
  }
}

}  // namespace opmr
