#include "engine/shuffle_remote.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "dataplane/event_loop.h"

namespace opmr {

// --- ShuffleClient -----------------------------------------------------------

ShuffleClient::ShuffleClient(net::Transport* transport,
                             MetricRegistry* metrics, Options options)
    : transport_(transport),
      metrics_(metrics),
      options_(std::move(options)),
      ack_replays_(metrics->Get(kShuffleAckReplays)),
      ack_replayed_frames_(metrics->Get(kShuffleAckReplayedFrames)),
      credits_(options_.num_reducers, options_.push_queue_chunks),
      gone_(options_.num_reducers, false) {
  net::HelloMsg hello;
  hello.job = options_.job;
  hello.num_map_tasks = options_.num_map_tasks;
  hello.num_reducers = options_.num_reducers;
  hello.worker = options_.worker;
  hello.auth = options_.auth;
  // Preamble first: if the explicit Hello send below is dropped by an
  // injected fault, the reconnect path re-introduces us before the
  // retransmit goes out.
  transport_->SetConnectPreamble(hello.ToFrame());
  // Reconnect replay: after any reconnect (injected drop or a real
  // peer-side crash), resend the whole unacked window right behind the
  // Hello.  The server's applied-seq watermark absorbs whatever actually
  // survived, so this is safe to over-send.
  transport_->SetReconnectReplay([this] {
    std::vector<net::Frame> frames;
    {
      std::scoped_lock lock(mu_);
      frames.reserve(window_.size());
      for (const auto& entry : window_) frames.push_back(entry.Materialize());
    }
    if (!frames.empty()) {
      ack_replays_->Increment();
      ack_replayed_frames_->Add(static_cast<std::int64_t>(frames.size()));
    }
    return frames;
  });
  conn_ = transport_->Connect([this](net::Connection* from, net::Frame frame) {
    HandleReply(from, std::move(frame));
  });
  conn_->Send(hello.ToFrame());
}

void ShuffleClient::CheckAborted() {
  std::scoped_lock lock(mu_);
  if (aborted_) {
    throw std::runtime_error("shuffle aborted by reduce group: " +
                             abort_reason_);
  }
}

void ShuffleClient::HandleReply(net::Connection* /*from*/, net::Frame frame) {
  switch (frame.type) {
    case net::FrameType::kCredit: {
      const auto msg = net::CreditMsg::Parse(frame);
      std::scoped_lock lock(mu_);
      credits_.at(msg.reducer) += msg.credits;
      break;
    }
    case net::FrameType::kAck: {
      const auto msg = net::AckMsg::Parse(frame);
      {
        std::scoped_lock lock(mu_);
        while (!window_.empty() && window_.front().seq <= msg.upto) {
          window_.pop_front();
        }
      }
      cv_.notify_all();
      break;
    }
    case net::FrameType::kCodedAck: {
      // Same window-pruning meaning as kAck; the decode counter is
      // observability-only.
      const auto msg = net::CodedAckMsg::Parse(frame);
      {
        std::scoped_lock lock(mu_);
        while (!window_.empty() && window_.front().seq <= msg.upto) {
          window_.pop_front();
        }
      }
      cv_.notify_all();
      break;
    }
    case net::FrameType::kGone: {
      const auto msg = net::GoneMsg::Parse(frame);
      std::scoped_lock lock(mu_);
      gone_.at(msg.reducer) = true;
      break;
    }
    case net::FrameType::kAbort: {
      const auto msg = net::AbortMsg::Parse(frame);
      {
        std::scoped_lock lock(mu_);
        aborted_ = true;
        abort_reason_ = msg.reason;
      }
      cv_.notify_all();
      break;
    }
    default:
      break;  // unexpected reply type; ignore
  }
}

void ShuffleClient::SendSequenced(
    const std::function<net::Frame(std::uint64_t)>& build) {
  // seq_mu_ serialises seq assignment WITH the send, so frames hit the
  // wire in seq order (the server discards out-of-order gaps unacked).
  // mu_ is never held across Send: a send can block in the transport's
  // reconnect path, which joins the reader thread — and the reader may be
  // waiting on mu_ to deliver an Ack.
  std::scoped_lock send_order(seq_mu_);
  net::Frame frame;
  {
    std::scoped_lock lock(mu_);
    const std::uint64_t seq = ++next_seq_;
    frame = build(seq);
    window_.push_back(WindowEntry{seq, frame, nullptr});
  }
  conn_->Send(frame);
}

PushResult ShuffleClient::TryPush(int reducer, ShuffleItem chunk) {
  {
    std::scoped_lock lock(mu_);
    if (aborted_) {
      throw std::runtime_error("shuffle aborted by reduce group: " +
                               abort_reason_);
    }
    if (gone_.at(reducer)) return PushResult::kReducerGone;
    if (credits_.at(reducer) == 0) return PushResult::kBusy;
    --credits_[reducer];
  }
  net::ChunkMsg msg;
  msg.map_task = chunk.map_task;
  msg.reducer = reducer;
  msg.sorted = chunk.sorted;
  msg.records = chunk.records;
  msg.bytes = std::move(chunk.bytes);
  SendSequenced([&](std::uint64_t seq) {
    msg.seq = seq;
    return msg.ToFrame();
  });
  return PushResult::kAccepted;
}

void ShuffleClient::RegisterFile(const MapOutputFile& file) {
  for (int r = 0; r < static_cast<int>(file.partitions.size()); ++r) {
    const Segment& seg = file.partitions[r];
    if (seg.bytes == 0) continue;
    SendSegment(file.map_task, file.path, r, seg, file.sorted);
  }
}

void ShuffleClient::RegisterSegment(int map_task,
                                    const std::filesystem::path& path,
                                    int reducer, const Segment& segment,
                                    bool sorted) {
  if (segment.bytes == 0) return;
  SendSegment(map_task, path, reducer, segment, sorted);
}

void ShuffleClient::SendSegment(int map_task,
                                const std::filesystem::path& path,
                                int reducer, const Segment& segment,
                                bool sorted) {
  CheckAborted();
  if (options_.shared_fs) {
    net::SegmentRefMsg msg;
    msg.map_task = map_task;
    msg.reducer = reducer;
    msg.sorted = sorted;
    msg.records = segment.records;
    msg.offset = segment.offset;
    msg.length = segment.bytes;
    msg.path = path.string();
    SendSequenced([&](std::uint64_t seq) {
      msg.seq = seq;
      return msg.ToFrame();
    });
    return;
  }
  // No shared filesystem: ship the segment bytes across the wire.
  SendSegmentData(map_task, path, reducer, segment, sorted);
}

void ShuffleClient::SendSegmentData(int map_task,
                                    const std::filesystem::path& path,
                                    int reducer, const Segment& segment,
                                    bool sorted) {
  // The replay window never holds the segment payload: the spill file is
  // immutable for the life of the job, so a replay re-reads it on demand.
  // The read is not charged to a device channel — it is the wire's copy,
  // not an engine I/O the cost model tracks (net.bytes_sent covers it).
  const auto rebuild = [map_task, reducer, sorted, path, segment](
                           std::uint64_t seq) {
    std::string bytes(segment.bytes, '\0');
    SequentialReader reader(path, IoChannel());
    reader.Seek(segment.offset);
    if (!reader.ReadExact(bytes.data(), bytes.size())) {
      throw std::runtime_error("shuffle client: segment vanished: " +
                               path.string());
    }
    net::SegmentDataMsg msg;
    msg.map_task = map_task;
    msg.reducer = reducer;
    msg.sorted = sorted;
    msg.records = segment.records;
    msg.seq = seq;
    msg.bytes = std::move(bytes);
    return msg.ToFrame();
  };
  std::scoped_lock send_order(seq_mu_);
  std::uint64_t seq = 0;
  {
    std::scoped_lock lock(mu_);
    seq = ++next_seq_;
    window_.push_back(
        WindowEntry{seq, net::Frame{}, [rebuild, seq] { return rebuild(seq); }});
  }
  // Zero-copy first: a SegmentData payload is the fixed-field prefix
  // followed by the length-prefixed bytes, so the file region can ride a
  // sendfile frame with everything before it as the payload prefix.
  std::string prefix;
  prefix.reserve(29);
  AppendU32(prefix, static_cast<std::uint32_t>(map_task));
  AppendU32(prefix, static_cast<std::uint32_t>(reducer));
  prefix.push_back(sorted ? 1 : 0);
  AppendU64(prefix, segment.records);
  AppendU64(prefix, seq);
  AppendU32(prefix, static_cast<std::uint32_t>(segment.bytes));
  if (conn_->SendFileFrame(net::FrameType::kSegmentData, prefix, path.string(),
                           segment.offset, segment.bytes)) {
    return;
  }
  // Transport without a kernel-assisted path (tcp/loopback): materialize
  // the frame once and send it inline.
  conn_->Send(rebuild(seq));
}

void ShuffleClient::SendSequencedFrame(
    const std::function<net::Frame(std::uint64_t)>& build) {
  CheckAborted();
  SendSequenced(build);
}

void ShuffleClient::MapTaskDone(int map_task, std::uint64_t input_records,
                                std::uint64_t output_records) {
  CheckAborted();
  net::MapDoneMsg msg;
  msg.map_task = map_task;
  msg.input_records = input_records;
  msg.output_records = output_records;
  SendSequenced([&](std::uint64_t seq) {
    msg.seq = seq;
    return msg.ToFrame();
  });
}

void ShuffleClient::ReplayUnacked() {
  std::scoped_lock send_order(seq_mu_);
  std::vector<net::Frame> frames;
  {
    std::scoped_lock lock(mu_);
    frames.reserve(window_.size());
    for (const auto& entry : window_) frames.push_back(entry.Materialize());
  }
  if (frames.empty()) return;
  ack_replays_->Increment();
  ack_replayed_frames_->Add(static_cast<std::int64_t>(frames.size()));
  for (const net::Frame& frame : frames) {
    try {
      conn_->Send(frame);
    } catch (const net::TransportError&) {
      return;  // connection unrecoverable; the drain in Finish gives up
    }
  }
}

std::size_t ShuffleClient::UnackedFrames() const {
  std::scoped_lock lock(mu_);
  return window_.size();
}

void ShuffleClient::Finish() {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  // Drain the replay window before Bye: on a clean run the acks for the
  // tail are already in flight; after a reducer-side crash the first wait
  // times out, one explicit replay re-delivers the window, and the second
  // wait confirms the acks.  If even that fails, Bye goes out anyway — the
  // reduce side's idle-timeout watchdog is the last-resort backstop.
  const auto drained = [this] { return window_.empty() || aborted_; };
  const auto half = std::chrono::duration<double>(options_.ack_drain_s / 2);
  {
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, half, drained);
  }
  if (UnackedFrames() > 0) {
    ReplayUnacked();
    std::unique_lock lock(mu_);
    cv_.wait_for(lock, half, drained);
  }
  net::ByeMsg bye;
  bye.frames_sent =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetFramesSent));
  bye.bytes_sent =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetBytesSent));
  bye.retransmits =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetRetransmits));
  bye.reconnects =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetReconnects));
  bye.stall_nanos =
      static_cast<std::uint64_t>(metrics_->Value(net::kNetStallNanos));
  bye.ack_replays = static_cast<std::uint64_t>(ack_replays_->value());
  bye.ack_replayed_frames =
      static_cast<std::uint64_t>(ack_replayed_frames_->value());
  bye.blocks_sent =
      static_cast<std::uint64_t>(metrics_->Value(dataplane::kBlocksSent));
  bye.blocks_compressed =
      static_cast<std::uint64_t>(metrics_->Value(dataplane::kBlocksCompressed));
  bye.sendfile_frames =
      static_cast<std::uint64_t>(metrics_->Value(dataplane::kSendfileFrames));
  bye.sendfile_bytes =
      static_cast<std::uint64_t>(metrics_->Value(dataplane::kSendfileBytes));
  try {
    conn_->Send(bye.ToFrame());
  } catch (const net::TransportError&) {
    // Best-effort: the job's data already made it across.
  }
  conn_->Close();
}

void ShuffleClient::SendAbort(const std::string& reason) {
  {
    std::scoped_lock lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  net::AbortMsg msg;
  msg.reason = reason;
  try {
    conn_->Send(msg.ToFrame());
  } catch (const net::TransportError&) {
    // The reduce side will hit its idle timeout instead.
  }
  conn_->Close();
}

// --- ShuffleServer -----------------------------------------------------------

ShuffleServer::ShuffleServer(net::Transport* transport,
                             ShuffleService* shuffle, FileManager* files,
                             MetricRegistry* metrics,
                             bool merge_client_wire_stats)
    : transport_(transport),
      shuffle_(shuffle),
      files_(files),
      metrics_(metrics),
      merge_client_wire_stats_(merge_client_wire_stats),
      dup_frames_(metrics->Get(kShuffleDupFrames)),
      auth_failures_(metrics->Get("shuffle.auth_failures")) {}

ShuffleServer::~ShuffleServer() {
  shuffle_->SetChunkConsumedProbe(nullptr);
  shuffle_->SetGoneProbe(nullptr);
  std::scoped_lock lock(mu_);
  for (auto& [worker, state] : clients_) {
    if (state.spill != nullptr) state.spill->Close();
  }
}

void ShuffleServer::Start() {
  shuffle_->SetChunkConsumedProbe([this](int reducer, int map_task) {
    net::CreditMsg credit;
    credit.reducer = reducer;
    SendTo(TaskOwnerConn(map_task), credit.ToFrame());
  });
  shuffle_->SetGoneProbe([this](int reducer) {
    net::GoneMsg gone;
    gone.reducer = reducer;
    Broadcast(gone.ToFrame());
  });
  transport_->Listen([this](net::Connection* from, net::Frame frame) {
    HandleFrame(from, std::move(frame));
  });
}

void ShuffleServer::SendTo(net::Connection* conn, const net::Frame& frame) {
  if (conn == nullptr) return;
  try {
    conn->Send(frame);
  } catch (const net::TransportError&) {
    // A lost credit only costs pipelining (the mapper diverts to disk); a
    // lost Gone only costs fail-fast latency; a lost Ack is re-sent when
    // the client replays.  Correctness is kept.
  }
}

net::Connection* ShuffleServer::TaskOwnerConn(int map_task) {
  std::scoped_lock lock(mu_);
  auto owner = task_owner_.find(map_task);
  if (owner != task_owner_.end()) {
    auto client = clients_.find(owner->second);
    if (client != clients_.end()) return client->second.conn;
  }
  // Single-client local modes never record owners per task; route to the
  // only connection there is.
  if (clients_.size() == 1) return clients_.begin()->second.conn;
  return nullptr;
}

void ShuffleServer::Broadcast(const net::Frame& frame) {
  std::vector<net::Connection*> conns;
  {
    std::scoped_lock lock(mu_);
    conns.reserve(clients_.size());
    for (const auto& [worker, state] : clients_) {
      if (state.conn != nullptr) conns.push_back(state.conn);
    }
  }
  for (net::Connection* conn : conns) SendTo(conn, frame);
}

std::uint64_t ShuffleServer::map_input_records() const {
  std::scoped_lock lock(mu_);
  return map_input_records_;
}

std::uint64_t ShuffleServer::map_output_records() const {
  std::scoped_lock lock(mu_);
  return map_output_records_;
}

void ShuffleServer::WaitClientsFinished(double timeout_s) {
  std::unique_lock lock(mu_);
  bye_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_s), [this] {
        return !clients_.empty() && byes_received_ >= clients_.size();
      });
}

bool ShuffleServer::AdmitSequenced(net::Connection* from, std::uint64_t seq) {
  if (seq == 0) return true;  // unsequenced legacy frame: apply, never ack
  net::NetFaultHook* hook = net::GetNetFaultHook();
  int receive_attempt = 1;
  std::uint64_t applied_upto = 0;
  {
    std::scoped_lock lock(mu_);
    ClientState& st = clients_[conn_worker_[from]];
    if (hook != nullptr) receive_attempt = ++st.recv_attempts[seq];
    applied_upto = st.applied_upto;
  }
  if (hook != nullptr && hook->OnServerFrameApply(seq, receive_attempt)) {
    // peer_crash: the frame was delivered to this host but dies before
    // apply, and the connection dies with it.  Only the client's
    // ack-window replay can bring the data back.
    from->Close();
    return false;
  }
  if (seq <= applied_upto) {
    // Replayed duplicate of an applied frame: skip, but re-ack so the
    // client prunes its window.
    dup_frames_->Increment();
    net::AckMsg ack;
    ack.upto = applied_upto;
    SendTo(from, ack.ToFrame());
    return false;
  }
  if (seq != applied_upto + 1) {
    // Out-of-order gap: frames after a discarded one on a dying
    // connection.  Drop unacked — the replay re-delivers them in order.
    return false;
  }
  return true;
}

void ShuffleServer::AckApplied(net::Connection* from, std::uint64_t seq) {
  if (seq == 0) return;
  std::uint64_t upto = 0;
  {
    std::scoped_lock lock(mu_);
    ClientState& st = clients_[conn_worker_[from]];
    st.applied_upto = std::max(st.applied_upto, seq);
    upto = st.applied_upto;
  }
  net::AckMsg ack;
  ack.upto = upto;
  SendTo(from, ack.ToFrame());
}

void ShuffleServer::RecordTaskOwner(net::Connection* from, int map_task) {
  std::scoped_lock lock(mu_);
  task_owner_[map_task] = conn_worker_[from];
}

void ShuffleServer::HandleFrame(net::Connection* from, net::Frame frame) {
  // Every received frame — including duplicates the seq watermark will
  // absorb — is proof the mapper side is alive: reset the idle-timeout
  // fallback so it cannot fire while an ack replay is in progress.
  shuffle_->NoteActivity();
  // Never let a malformed frame unwind a transport reader thread: poison
  // the shuffle instead so reducers fail with a diagnosis.
  try {
    switch (frame.type) {
      case net::FrameType::kHello: {
        const auto msg = net::HelloMsg::Parse(frame);  // validates version
        if (!secret_.empty() && !net::ConstantTimeEquals(secret_, msg.auth)) {
          auth_failures_->Increment();
          net::AbortMsg abort;
          abort.reason = "shuffle server: authentication failed for worker '" +
                         msg.worker + "'";
          SendTo(from, abort.ToFrame());
          break;
        }
        std::scoped_lock lock(mu_);
        conn_worker_[from] = msg.worker;
        clients_[msg.worker].conn = from;  // re-Hello after reconnect re-routes
        break;
      }
      case net::FrameType::kChunk: {
        auto msg = net::ChunkMsg::Parse(frame);
        RecordTaskOwner(from, msg.map_task);
        if (!AdmitSequenced(from, msg.seq)) break;
        ShuffleItem item;
        item.map_task = msg.map_task;
        item.sorted = msg.sorted;
        item.records = msg.records;
        item.bytes = std::move(msg.bytes);
        // The client already admitted this chunk against its credit
        // window; the bounded re-check would spuriously reject after a
        // Rewind re-queued consumed items.
        shuffle_->ForcePush(msg.reducer, std::move(item));
        AckApplied(from, msg.seq);
        break;
      }
      case net::FrameType::kSegmentRef: {
        const auto msg = net::SegmentRefMsg::Parse(frame);
        RecordTaskOwner(from, msg.map_task);
        if (!AdmitSequenced(from, msg.seq)) break;
        Segment seg;
        seg.offset = msg.offset;
        seg.bytes = msg.length;
        seg.records = msg.records;
        shuffle_->RegisterSegment(msg.map_task,
                                  std::filesystem::path(msg.path),
                                  msg.reducer, seg, msg.sorted);
        AckApplied(from, msg.seq);
        break;
      }
      case net::FrameType::kSegmentData: {
        auto msg = net::SegmentDataMsg::Parse(frame);
        RecordTaskOwner(from, msg.map_task);
        if (!AdmitSequenced(from, msg.seq)) break;
        std::filesystem::path spill_path;
        Segment seg;
        {
          std::scoped_lock lock(mu_);
          auto& writer = clients_[conn_worker_[from]].spill;
          if (writer == nullptr) {
            writer = std::make_unique<SequentialWriter>(
                files_->NewFile("net_seg"),
                IoChannel(metrics_, device::kNetSegmentWrite));
          }
          seg.offset = writer->bytes_written();
          seg.bytes = msg.bytes.size();
          seg.records = msg.records;
          writer->Append(msg.bytes);
          writer->Flush();
          spill_path = writer->path();
        }
        shuffle_->RegisterSegment(msg.map_task, spill_path, msg.reducer, seg,
                                  msg.sorted);
        AckApplied(from, msg.seq);
        break;
      }
      case net::FrameType::kMapDone: {
        const auto msg = net::MapDoneMsg::Parse(frame);
        RecordTaskOwner(from, msg.map_task);
        if (!AdmitSequenced(from, msg.seq)) break;
        {
          std::scoped_lock lock(mu_);
          map_input_records_ += msg.input_records;
          map_output_records_ += msg.output_records;
        }
        // The coded decoder delivers the task's locally-held units before
        // the service learns the task is done (ordering matters: MapTaskDone
        // may unblock reducers waiting for the last item).
        if (map_done_hook_) map_done_hook_(msg.map_task);
        shuffle_->MapTaskDone(msg.map_task);
        AckApplied(from, msg.seq);
        break;
      }
      case net::FrameType::kCodedChunk: {
        const auto msg = net::CodedChunkMsg::Parse(frame);
        if (!coded_handler_) {
          throw net::WireError(
              "shuffle server: coded frame without a coded decoder attached "
              "(run with --coded-r on both sides)");
        }
        if (!AdmitSequenced(from, msg.seq)) break;
        const std::uint64_t decoded = coded_handler_(msg);
        // Advance the watermark like AckApplied, but answer with CodedAck
        // so the map side sees decode progress.
        std::uint64_t upto = 0;
        {
          std::scoped_lock lock(mu_);
          ClientState& st = clients_[conn_worker_[from]];
          st.applied_upto = std::max(st.applied_upto, msg.seq);
          upto = st.applied_upto;
        }
        net::CodedAckMsg ack;
        ack.upto = upto;
        ack.decoded = decoded;
        SendTo(from, ack.ToFrame());
        break;
      }
      case net::FrameType::kBye: {
        const auto msg = net::ByeMsg::Parse(frame);
        if (merge_client_wire_stats_) {
          // Client-process-only events, folded in so the reduce-side job
          // report covers the whole wire.  Skipped when both endpoints
          // share one registry (kAll mode) — they are already counted.
          metrics_->Get(net::kNetRetransmits)
              ->Add(static_cast<std::int64_t>(msg.retransmits));
          metrics_->Get(net::kNetReconnects)
              ->Add(static_cast<std::int64_t>(msg.reconnects));
          metrics_->Get(net::kNetStallNanos)
              ->Add(static_cast<std::int64_t>(msg.stall_nanos));
          metrics_->Get(kShuffleAckReplays)
              ->Add(static_cast<std::int64_t>(msg.ack_replays));
          metrics_->Get(kShuffleAckReplayedFrames)
              ->Add(static_cast<std::int64_t>(msg.ack_replayed_frames));
          metrics_->Get(dataplane::kBlocksSent)
              ->Add(static_cast<std::int64_t>(msg.blocks_sent));
          metrics_->Get(dataplane::kBlocksCompressed)
              ->Add(static_cast<std::int64_t>(msg.blocks_compressed));
          metrics_->Get(dataplane::kSendfileFrames)
              ->Add(static_cast<std::int64_t>(msg.sendfile_frames));
          metrics_->Get(dataplane::kSendfileBytes)
              ->Add(static_cast<std::int64_t>(msg.sendfile_bytes));
        }
        {
          std::scoped_lock lock(mu_);
          ++byes_received_;
        }
        bye_cv_.notify_all();
        break;
      }
      case net::FrameType::kAbort: {
        const auto msg = net::AbortMsg::Parse(frame);
        shuffle_->Abort("map worker group aborted: " + msg.reason);
        break;
      }
      default:
        throw net::WireError("shuffle server: unexpected frame type " +
                             std::string(net::FrameTypeName(frame.type)));
    }
  } catch (const std::exception& e) {
    shuffle_->Abort(std::string("shuffle server: ") + e.what());
  }
}

}  // namespace opmr
