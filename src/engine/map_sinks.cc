#include "engine/map_sinks.h"

#include "metrics/stopwatch.h"

#include <stdexcept>

namespace opmr {

namespace {
void FrameRecord(std::string& dst, Slice key, Slice value) {
  AppendU32(dst, static_cast<std::uint32_t>(key.size()));
  AppendU32(dst, static_cast<std::uint32_t>(value.size()));
  dst.append(key.data(), key.size());
  dst.append(value.data(), value.size());
}
}  // namespace

// --- FileSink ----------------------------------------------------------------

FileSink::FileSink(int map_task, FileManager* files, MetricRegistry* metrics,
                   ShuffleMapEndpoint* shuffle, int num_partitions,
                   std::size_t stream_buffer_bytes, bool sync_output)
    : map_task_(map_task),
      files_(files),
      metrics_(metrics),
      shuffle_(shuffle),
      num_partitions_(num_partitions),
      stream_buffer_bytes_(stream_buffer_bytes),
      sync_output_(sync_output),
      stream_buffers_(num_partitions),
      stream_records_(num_partitions, 0) {}

void FileSink::BeginBatch(bool sorted) {
  if (writer_ != nullptr) {
    throw std::logic_error("FileSink: nested batch");
  }
  current_file_ = MapOutputFile{};
  current_file_.map_task = map_task_;
  current_file_.sorted = sorted;
  current_file_.path = files_->NewFile("map_out");
  current_file_.partitions.assign(num_partitions_, Segment{});
  writer_ = std::make_unique<SequentialWriter>(
      current_file_.path, IoChannel(metrics_, device::kMapOutputWrite));
  current_partition_ = -1;
  segment_start_ = 0;
  segment_records_ = 0;
}

void FileSink::BatchAppend(std::uint32_t partition, Slice key, Slice value) {
  if (writer_ == nullptr) throw std::logic_error("FileSink: append w/o batch");
  const int p = static_cast<int>(partition);
  if (p < current_partition_) {
    throw std::logic_error("FileSink: batch not partition-grouped");
  }
  if (p != current_partition_) {
    if (current_partition_ >= 0) {
      Segment& seg = current_file_.partitions[current_partition_];
      seg.offset = segment_start_;
      seg.bytes = writer_->bytes_written() - segment_start_;
      seg.records = segment_records_;
    }
    current_partition_ = p;
    segment_start_ = writer_->bytes_written();
    segment_records_ = 0;
  }
  writer_->AppendU32(static_cast<std::uint32_t>(key.size()));
  writer_->AppendU32(static_cast<std::uint32_t>(value.size()));
  writer_->Append(key);
  writer_->Append(value);
  ++segment_records_;
  bytes_out_ += key.size() + value.size();
}

void FileSink::EndBatch() {
  if (writer_ == nullptr) throw std::logic_error("FileSink: end w/o batch");
  if (current_partition_ >= 0) {
    Segment& seg = current_file_.partitions[current_partition_];
    seg.offset = segment_start_;
    seg.bytes = writer_->bytes_written() - segment_start_;
    seg.records = segment_records_;
  }
  // The Hadoop contract: a mapper completes only after its output has been
  // persisted (paper §II-A), hence the synchronous flush here.  The wall
  // time of this persistence step is what §III-B.2 measures (1.3 s of a
  // 21.6 s map task).
  {
    WallTimer write_timer;
    writer_->Flush(sync_output_);
    writer_->Close();
    metrics_->Get(device::kMapOutputWriteNanos)->Add(write_timer.Nanos());
  }
  writer_.reset();
  pending_files_.push_back(current_file_);
}

void FileSink::AppendStreaming(std::uint32_t partition, Slice key,
                               Slice value) {
  std::string& buf = stream_buffers_.at(partition);
  const std::size_t before = buf.size();
  FrameRecord(buf, key, value);
  stream_bytes_ += buf.size() - before;
  ++stream_records_[partition];
  bytes_out_ += key.size() + value.size();
  if (stream_bytes_ >= stream_buffer_bytes_) FlushStreamBuffers();
}

void FileSink::FlushStreamBuffers() {
  if (stream_bytes_ == 0) return;
  // Write one spill file with the staged partition buffers back-to-back.
  MapOutputFile file;
  file.map_task = map_task_;
  file.sorted = false;
  file.path = files_->NewFile("map_out");
  file.partitions.assign(num_partitions_, Segment{});
  SequentialWriter writer(file.path,
                          IoChannel(metrics_, device::kMapOutputWrite));
  for (int p = 0; p < num_partitions_; ++p) {
    if (stream_buffers_[p].empty()) continue;
    Segment& seg = file.partitions[p];
    seg.offset = writer.bytes_written();
    seg.bytes = stream_buffers_[p].size();
    seg.records = stream_records_[p];
    writer.Append(stream_buffers_[p]);
    stream_buffers_[p].clear();
    stream_records_[p] = 0;
  }
  writer.Flush(sync_output_);
  writer.Close();
  stream_bytes_ = 0;
  pending_files_.push_back(file);
}

void FileSink::Close() {
  if (writer_ != nullptr) throw std::logic_error("FileSink: close mid-batch");
  FlushStreamBuffers();
}

void FileSink::Publish() {
  for (const auto& file : pending_files_) shuffle_->RegisterFile(file);
  pending_files_.clear();
}

void FileSink::Abandon() noexcept {
  if (writer_ != nullptr) writer_->Abandon();
  writer_.reset();
  for (auto& buf : stream_buffers_) buf.clear();
  stream_bytes_ = 0;
  pending_files_.clear();  // never registered; FileManager reclaims the files
}

// --- PushSink ----------------------------------------------------------------

PushSink::PushSink(int map_task, FileManager* files, MetricRegistry* metrics,
                   ShuffleMapEndpoint* shuffle, int num_partitions,
                   std::size_t chunk_bytes)
    : map_task_(map_task),
      shuffle_(shuffle),
      metrics_(metrics),
      chunk_bytes_(chunk_bytes),
      chunks_(num_partitions),
      chunk_records_(num_partitions, 0) {
  // HOP persists all map output too, but asynchronously — no fdatasync.
  writer_ = std::make_unique<SequentialWriter>(
      files->NewFile("map_out_push"),
      IoChannel(metrics, device::kMapOutputWrite));
}

void PushSink::BeginBatch(bool sorted) { batch_sorted_ = sorted; }

void PushSink::BatchAppend(std::uint32_t partition, Slice key, Slice value) {
  AppendRecord(partition, key, value);
}

void PushSink::EndBatch() {
  // Chunks must not span batches: a sorted batch's chunks are each sorted
  // runs only if they are cut at batch boundaries.
  EmitAllPartialChunks();
  batch_sorted_ = false;
}

void PushSink::AppendStreaming(std::uint32_t partition, Slice key,
                               Slice value) {
  batch_sorted_ = false;
  AppendRecord(partition, key, value);
}

void PushSink::AppendRecord(std::uint32_t partition, Slice key, Slice value) {
  std::string& chunk = chunks_.at(partition);
  FrameRecord(chunk, key, value);
  ++chunk_records_[partition];
  bytes_out_ += key.size() + value.size();
  if (chunk.size() >= chunk_bytes_) EmitChunk(partition);
}

void PushSink::EmitChunk(std::uint32_t partition) {
  std::string& chunk = chunks_[partition];
  if (chunk.empty()) return;

  // Persist the chunk first (fault-tolerance copy; also the divert target).
  const std::uint64_t offset = writer_->bytes_written();
  writer_->Append(chunk);

  ShuffleItem item;
  item.map_task = map_task_;
  item.sorted = batch_sorted_;
  item.records = chunk_records_[partition];
  item.bytes = chunk;

  switch (shuffle_->TryPush(static_cast<int>(partition), std::move(item))) {
    case PushResult::kAccepted:
      ++pushed_;
      metrics_->Get(device::kPushedChunks)->Increment();
      break;
    case PushResult::kBusy: {
      // Back-pressure: reducer is behind; leave the bytes on disk and let
      // the reducer pull them later (paper §III-D adaptive mechanism).
      ++diverted_;
      metrics_->Get(device::kDivertedChunks)->Increment();
      writer_->Flush();
      Segment seg;
      seg.offset = offset;
      seg.bytes = chunk.size();
      seg.records = chunk_records_[partition];
      shuffle_->RegisterSegment(map_task_, writer_->path(),
                                static_cast<int>(partition), seg,
                                batch_sorted_);
      break;
    }
    case PushResult::kReducerGone:
      throw ReducerGoneError(
          "push shuffle: reducer " + std::to_string(partition) +
          " terminally failed after consuming pipelined map output — pushed "
          "chunks cannot be recalled, so the job must fail (paper Table "
          "III: pipelining trades away reduce-side fault tolerance)");
  }
  chunk.clear();
  chunk_records_[partition] = 0;
}

void PushSink::EmitAllPartialChunks() {
  for (std::uint32_t p = 0; p < chunks_.size(); ++p) EmitChunk(p);
}

void PushSink::Close() {
  EmitAllPartialChunks();
  writer_->Close();
}

void PushSink::Abandon() noexcept {
  if (writer_ != nullptr) writer_->Abandon();
}

}  // namespace opmr
