// ClusterExecutor: runs one MapReduce job on an in-process "cluster" of
// N nodes × S map slots (worker threads) plus R reducer threads, with
// block-level, locality-aware scheduling against the mini-DFS — the same
// execution structure the paper benchmarks on its 10-node cluster.
#pragma once

#include <algorithm>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/block_cache.h"
#include "dfs/dfs.h"
#include "engine/job.h"
#include "engine/reduce_common.h"
#include "metrics/counters.h"
#include "metrics/timeline.h"
#include "metrics/timeseries.h"

namespace opmr {

class FaultInjector;

namespace net {
class Transport;
}  // namespace net

namespace coord {
class CoordClient;
class Coordinator;
}  // namespace coord

// Which half of the job this executor instance runs.  kAll is the seed's
// single-process mode.  kMapOnly / kReduceOnly split the worker groups
// across OS processes: the map group serialises its shuffle traffic onto a
// net::Transport, the reduce group serves it (the CLI's --transport=tcp
// mode; paper Fig. 5's mapper/reducer separation made physical).
enum class WorkerRole {
  kAll,
  kMapOnly,
  kReduceOnly,
};

// Slot-lease hooks a multi-job scheduler (src/sched) installs to meter an
// executor's parallelism out of a shared pool.  Acquire callbacks may block
// until a slot is granted; all callbacks must be thread-safe, and unset
// members are no-ops.  A map slot is leased per task attempt (the worker
// thread holds no slot while idle); a reduce slot is held for the whole
// reducer-thread lifetime.  The progress probes feed shortest-remaining-
// work admission policies.
struct SchedHooks {
  std::function<void(int node)> acquire_map_slot;
  std::function<void(int node)> release_map_slot;
  std::function<void()> acquire_reduce_slot;
  std::function<void()> release_reduce_slot;
  std::function<void(int done, int total)> on_map_progress;
  std::function<void(int done, int total)> on_reduce_progress;
  // Operation-level placement seam (src/placement): a freed map slot on
  // `node` asks which of `pending` (this job's untaken blocks, listing
  // order) it should run.  Return an index into `pending` to override the
  // executor's built-in local-first order, or -1 to keep it.  Must be
  // thread-safe; called under the block scheduler's lock, so it must not
  // call back into BlockScheduler.
  std::function<int(int node, const std::vector<const BlockInfo*>& pending)>
      place_map_block;
};

// Straggler predicate shared by map speculation and the reduce-speculation
// watchdog: an attempt is a straggler once its elapsed time reaches
// threshold x the mean completed-task time (boundary inclusive).  With no
// completions yet there is no baseline, so nothing is a straggler.
[[nodiscard]] inline bool IsStraggler(double elapsed_s,
                                      double mean_completed_s,
                                      double threshold) noexcept {
  return mean_completed_s > 0.0 && elapsed_s >= threshold * mean_completed_s;
}

struct ClusterOptions {
  int num_nodes = 4;
  int map_slots_per_node = 2;
  // Hadoop syncs map output before a task reports complete; HOP persists
  // asynchronously.  Exposed for the map-output-cost microbench (M2).
  bool sync_map_output = true;
  // Task re-execution on failure (Hadoop's fault-tolerance model), for both
  // map attempts and reduce attempts.  Only valid with pull shuffle: a
  // failed map attempt's output was never published and a restarted reducer
  // can re-fetch the registered map outputs, so the retry is invisible.
  // Push pipelining exposes output before task completion and therefore
  // cannot retry — the weakness the paper attributes to eager pipelining
  // (Table III).
  int max_task_attempts = 1;

  // Exponential backoff between retry attempts: sleep
  // min(base * 2^(attempt-1), max) * jitter, where jitter in [0.5, 1) is a
  // deterministic function of (task, attempt).  Base <= 0 disables backoff.
  double retry_backoff_base_ms = 5.0;
  double retry_backoff_max_ms = 250.0;

  // Speculative re-execution of straggler map tasks (paper §VI on [35]):
  // once the block pool is drained, an idle map slot launches a backup
  // attempt of any running task whose elapsed time exceeds
  // speculation_threshold x the mean completed-task time; the first attempt
  // to finish publishes, the loser's output is discarded unpublished.
  // Pull shuffle only — a duplicate pushed attempt cannot be recalled.
  bool speculative_execution = false;
  double speculation_threshold = 2.0;

  // Checkpoint-aware speculative reduce attempts: a reducer whose elapsed
  // time reaches reduce_speculation_threshold x the mean completed-reducer
  // time — or one running on a fault-plan-designated slow node — is
  // preempted at a record boundary once a checkpoint exists to seed from;
  // the backup attempt restores the newest image and replays only the
  // un-acknowledged shuffle suffix.  Requires checkpointing
  // (JobOptions::checkpoint.enabled) and, unlike map speculation, works
  // under push shuffle: the retained-until-acknowledged feed makes the
  // takeover recallable.
  bool speculative_reduce = false;
  double reduce_speculation_threshold = 2.0;

  // Multi-job slot metering (see SchedHooks).  Not owned; must outlive
  // every Run() that observes it.
  const SchedHooks* sched_hooks = nullptr;

  // Chaos plane: when set, the injector is installed as the global I/O
  // fault hook for the duration of Run() and consulted at every engine
  // fault site (see src/fault/fault.h).  Not owned.
  FaultInjector* fault_injector = nullptr;

  // Worker-group split (see WorkerRole).  Roles other than kAll require a
  // shuffle_transport.
  WorkerRole role = WorkerRole::kAll;

  // When set, shuffle traffic is carried over this transport (one
  // ShuffleClient on the map side, one ShuffleServer on the reduce side)
  // instead of direct in-process calls.  Not owned; used for exactly one
  // Run() — the executor shuts it down before returning.  nullptr with
  // role == kAll is the seed's direct path.
  net::Transport* shuffle_transport = nullptr;

  // Both worker groups see the same filesystem, so segments can cross the
  // wire as path descriptors instead of inline bytes.  True for loopback
  // and same-host forked processes; a future remote mode would clear it.
  bool shuffle_shared_fs = true;

  // Reduce-group liveness guard (seconds; 0 disables): abort a reducer
  // blocked in NextItem with no shuffle activity for this long while map
  // tasks are still outstanding — the mapper process likely died without
  // sending Abort.  Demoted to a last-resort fallback in cluster mode:
  // the coordinator's failure detector (on_worker_lost) is the primary
  // death signal, and every inbound shuffle frame — including replayed
  // duplicates — resets the idle clock, so the watchdog cannot fire
  // while an ack-window replay is in flight.
  double shuffle_idle_timeout_s = 0.0;

  // --- Cluster coordination (src/coord) -------------------------------------
  // Registered worker id this process joined the group as; carried in the
  // shuffle Hello so the reduce side can key its per-sender ack watermark.
  // Empty in the single-process / forked modes.
  std::string worker_id;

  // Shared secret authenticating shuffle Hello and coordinator Register
  // frames.  Empty disables authentication.
  std::string shuffle_secret;

  // Horizontal map partition for multi-worker map groups: this worker
  // runs exactly the input blocks whose global index i satisfies
  // i % map_partition_count == map_partition_index, under globally
  // unique task ids, so sibling map workers cover the input disjointly.
  int map_partition_index = 0;
  int map_partition_count = 1;

  // --- Coded shuffle (src/coded) --------------------------------------------
  // Replication degree r of the coded shuffle plane; 0 (default) disables
  // it.  With r >= 1 every map block is held by r logical nodes (the
  // reducers' co-located mappers) and intermediate delivery goes out as
  // XOR-coded multicast frames — ~r-fold fewer shuffle bytes for r-fold
  // map CPU.  Requires a framed shuffle_transport, push shuffle,
  // num_reducers >= r + 1, DFS replication >= r, and an unpartitioned map
  // group; Validate enforces all of it with actionable errors.
  int coded_r = 0;
  // Seed completing holder sets beyond what DFS placement pins down; both
  // sides must agree (they do: one process, one options struct).
  std::uint64_t coded_seed = 1;
  // Fault-plane test hook: after `coded_kill_after_frames` coded frames
  // are applied reduce-side, logical node `coded_kill_node`'s re-mapped
  // store is dropped, as if the worker hosting it died mid-job.  -1 (the
  // default) kills nobody.
  int coded_kill_node = -1;
  std::uint64_t coded_kill_after_frames = 0;

  // Membership agent of a map-group worker (not owned).  When set, an
  // eviction/rejoin observed by the heartbeat thread fires
  // ShuffleClient::ReplayUnacked() — the reduce side may have lost this
  // worker's delivered-but-unacked tail with the membership flap.
  coord::CoordClient* coord_client = nullptr;

  // Coordinator hosted by a reduce-group process (not owned).  When set,
  // its on_worker_lost signal aborts the shuffle fast (while map tasks
  // are still outstanding) instead of waiting out the idle timeout.
  coord::Coordinator* coordinator = nullptr;

  // --- Data plane (src/dataplane) -------------------------------------------
  // Capacity of the reducer-side block cache that serves checkpoint-restart
  // shuffle replays without re-reading retention-spill files.  Only active
  // with checkpointed replay (kRetainAll retention); 0 disables the cache.
  std::size_t block_cache_bytes = 64u << 20;
};

struct JobResult {
  std::string job_name;
  double wall_seconds = 0.0;

  // Data volumes (job-scoped deltas of the metric registry).
  std::map<std::string, std::int64_t> counters;

  // Per-phase CPU seconds across all task threads (Table II / §V).
  std::map<std::string, double> cpu_seconds;
  double total_cpu_seconds = 0.0;

  std::uint64_t input_records = 0;
  std::uint64_t map_output_records = 0;
  std::uint64_t output_records = 0;

  // Incremental-processing metrics.
  double first_output_seconds = -1.0;  // < 0 means no output
  std::vector<Sample> emission_curve;  // cumulative emitted records vs time

  int num_map_tasks = 0;
  int num_reduce_tasks = 0;
  int local_map_tasks = 0;   // scheduled on a node holding the block

  // Recovery activity (all zero in a clean run).
  int map_task_retries = 0;     // failed map attempts that were re-executed
  int reduce_task_retries = 0;  // failed reduce attempts that were re-run
  int speculative_launched = 0; // backup map attempts started
  int speculative_wins = 0;     // backups that published before the original
  int spec_reduce_launched = 0; // backup reduce attempts started (takeover)
  int spec_reduce_seeded_from_ckpt = 0;  // backups seeded from a checkpoint
  int spec_reduce_wins = 0;     // backup reduce attempts that completed
  std::int64_t faults_injected = 0;  // chaos-plane faults fired (all points)

  // Checkpoint activity (all zero with checkpointing off).
  std::int64_t checkpoints_written = 0;
  std::int64_t checkpoints_loaded = 0;   // restores performed by retries
  std::int64_t checkpoint_bytes = 0;     // bytes committed to checkpoints
  std::int64_t replay_records = 0;       // shuffle records re-delivered
  double recover_seconds = 0.0;          // time spent restoring checkpoints
  std::int64_t checkpoints_swept = 0;    // stale files GC'd after completion

  // Wire activity (all zero on the seed's direct in-process path).
  std::int64_t net_bytes_sent = 0;
  std::int64_t net_bytes_received = 0;
  std::int64_t net_frames_sent = 0;
  std::int64_t net_frames_received = 0;
  std::int64_t net_retransmits = 0;      // frame sends retried after a drop
  std::int64_t net_reconnects = 0;       // client connections re-established
  double net_stall_seconds = 0.0;        // injected stalls + reconnect waits
  std::int64_t shuffle_ack_replays = 0;  // ack-window replay passes
  std::int64_t shuffle_ack_replayed_frames = 0;  // frames resent by replays
  std::int64_t shuffle_dup_frames = 0;   // dups absorbed by the watermark

  // Reducer-side block cache (zero unless a checkpoint-restart replayed
  // retention spills; see ClusterOptions::block_cache_bytes).
  std::int64_t block_cache_hits = 0;       // replays served from memory
  std::int64_t block_cache_misses = 0;     // replays that re-read the spill
  std::int64_t block_cache_evictions = 0;  // entries dropped for capacity

  // Per-reducer output records: the partition-skew signal (related work
  // [19] targets exactly this imbalance).
  std::vector<std::uint64_t> reducer_output_records;

  // max/mean output records across reducers; 1.0 = perfectly balanced.
  [[nodiscard]] double ReducerImbalance() const {
    if (reducer_output_records.empty()) return 1.0;
    std::uint64_t max = 0, sum = 0;
    for (auto v : reducer_output_records) {
      max = std::max(max, v);
      sum += v;
    }
    const double mean =
        static_cast<double>(sum) / reducer_output_records.size();
    return mean == 0 ? 1.0 : max / mean;
  }

  std::vector<TaskInterval> timeline;

  // Convenience accessors over `counters`.
  [[nodiscard]] std::int64_t Bytes(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

// Locality-aware block scheduler: a freed map slot on node n prefers an
// unprocessed block with a replica on n, falling back to any block.  When
// `hooks->place_map_block` is installed, the placement plane overrides
// that built-in order (see SchedHooks).
class BlockScheduler {
 public:
  BlockScheduler(std::vector<BlockInfo> blocks, int num_nodes,
                 const SchedHooks* hooks = nullptr);

  // Returns the next block for `node` (and whether it was node-local), or
  // nullopt when all blocks are taken.
  std::optional<BlockInfo> Next(int node, bool* was_local);

  [[nodiscard]] int local_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<BlockInfo> blocks_;
  std::vector<bool> taken_;
  std::vector<std::vector<std::size_t>> by_node_;
  const SchedHooks* hooks_;
  std::size_t next_any_ = 0;
  int local_count_ = 0;
};

class ClusterExecutor {
 public:
  ClusterExecutor(Dfs* dfs, FileManager* files, MetricRegistry* metrics,
                  ClusterOptions options = {});

  // Runs the job to completion and returns its result.  Throws on invalid
  // configuration or task failure.
  JobResult Run(const JobSpec& spec, const JobOptions& options);

  // Launches Run() on its own thread; the future carries the JobResult or
  // rethrows the failure on get().  The executor, spec, and options must
  // outlive the future's completion — the multi-job scheduler keeps all
  // three in its per-job state.
  std::future<JobResult> RunAsync(const JobSpec& spec,
                                  const JobOptions& options);

  // Installs (or clears) the chaos-plane injector used by subsequent runs.
  void set_fault_injector(FaultInjector* injector) {
    cluster_.fault_injector = injector;
  }

  // Worker-group split for subsequent runs (see ClusterOptions).  The
  // transport, when set, is used for exactly one Run() and shut down by it.
  void set_worker_role(WorkerRole role) { cluster_.role = role; }
  void set_shuffle_transport(net::Transport* transport) {
    cluster_.shuffle_transport = transport;
  }
  void set_shuffle_idle_timeout(double seconds) {
    cluster_.shuffle_idle_timeout_s = seconds;
  }
  void set_shuffle_shared_fs(bool shared) {
    cluster_.shuffle_shared_fs = shared;
  }
  void set_speculative_reduce(bool on, double threshold = 2.0) {
    cluster_.speculative_reduce = on;
    cluster_.reduce_speculation_threshold = threshold;
  }
  void set_sched_hooks(const SchedHooks* hooks) {
    cluster_.sched_hooks = hooks;
  }

  // Cluster-mode identity and coordination wiring (see ClusterOptions).
  void set_cluster_identity(std::string worker_id, std::string secret) {
    cluster_.worker_id = std::move(worker_id);
    cluster_.shuffle_secret = std::move(secret);
  }
  void set_map_partition(int index, int count) {
    cluster_.map_partition_index = index;
    cluster_.map_partition_count = count;
  }
  void set_coded(int r, std::uint64_t seed = 1) {
    cluster_.coded_r = r;
    cluster_.coded_seed = seed;
  }
  void set_coded_kill(int node, std::uint64_t after_frames) {
    cluster_.coded_kill_node = node;
    cluster_.coded_kill_after_frames = after_frames;
  }
  void set_coord_client(coord::CoordClient* client) {
    cluster_.coord_client = client;
  }
  void set_coordinator(coord::Coordinator* coordinator) {
    cluster_.coordinator = coordinator;
  }
  void set_block_cache_bytes(std::size_t bytes) {
    cluster_.block_cache_bytes = bytes;
  }

 private:
  void Validate(const JobSpec& spec, const JobOptions& options) const;

  // Deterministically jittered exponential backoff before retry `attempt`.
  void RetryBackoff(int attempt, std::uint64_t salt) const;

  Dfs* dfs_;
  FileManager* files_;
  MetricRegistry* metrics_;
  ClusterOptions cluster_;
  // Reducer-side block cache; lazily created by Run() and kept across jobs
  // so restarted attempts within one executor see a warm cache.
  std::unique_ptr<dataplane::BlockCache> block_cache_;
};

}  // namespace opmr
