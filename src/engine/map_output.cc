#include "engine/map_output.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace opmr {

void MapOutputBuffer::Sort() {
  std::sort(records_.begin(), records_.end(),
            [](const RecordMeta& a, const RecordMeta& b) {
              if (a.partition != b.partition) return a.partition < b.partition;
              const std::size_t min_len =
                  a.key_len < b.key_len ? a.key_len : b.key_len;
              const int c =
                  min_len == 0 ? 0 : std::memcmp(a.key, b.key, min_len);
              if (c != 0) return c < 0;
              return a.key_len < b.key_len;
            });
}

MapCombineTable::MapCombineTable(const Aggregator* aggregator,
                                 std::size_t initial_slots)
    : aggregator_(aggregator), slots_(initial_slots, 0) {
  if (aggregator_ == nullptr) {
    throw std::invalid_argument("MapCombineTable requires an aggregator");
  }
  if ((initial_slots & (initial_slots - 1)) != 0) {
    throw std::invalid_argument("MapCombineTable: slots must be a power of 2");
  }
}

void MapCombineTable::Grow() {
  std::vector<std::uint32_t> bigger(slots_.size() * 2, 0);
  const std::size_t mask = bigger.size() - 1;
  for (std::uint32_t idx : slots_) {
    if (idx == 0) continue;
    std::size_t pos = entries_[idx - 1].hash & mask;
    while (bigger[pos] != 0) pos = (pos + 1) & mask;
    bigger[pos] = idx;
  }
  slots_ = std::move(bigger);
}

void MapCombineTable::Fold(std::uint32_t partition, Slice key, Slice value,
                           bool value_is_state) {
  Fold(partition, BytesHash(key), key, value, value_is_state);
}

void MapCombineTable::Fold(std::uint32_t partition, std::uint64_t key_hash,
                           Slice key, Slice value, bool value_is_state) {
  if ((entries_.size() + 1) * 2 > slots_.size()) Grow();

  // Partition participates in identity: the same key never crosses
  // partitions (partition is a function of the key), but folding it into
  // the hash costs nothing and keeps the table correct for any partitioner.
  const std::uint64_t h = key_hash ^ (partition * 0x9e3779b97f4a7c15ULL);
  const std::size_t mask = slots_.size() - 1;
  std::size_t pos = h & mask;
  while (true) {
    ++probes_;
    const std::uint32_t idx = slots_[pos];
    if (idx == 0) break;
    Entry& e = entries_[idx - 1];
    if (e.hash == h && e.partition == partition && e.key == key) {
      const std::size_t before = e.state.size();
      if (value_is_state) {
        aggregator_->Merge(&e.state, value);
      } else {
        aggregator_->Update(&e.state, value);
      }
      state_bytes_ += e.state.size() - before;
      return;
    }
    pos = (pos + 1) & mask;
  }

  Entry e;
  e.hash = h;
  e.partition = partition;
  e.key = arena_.Copy(key);
  if (value_is_state) {
    e.state.assign(value.data(), value.size());
  } else {
    aggregator_->Init(value, &e.state);
  }
  state_bytes_ += e.state.size();
  entries_.push_back(std::move(e));
  slots_[pos] = static_cast<std::uint32_t>(entries_.size());
}

std::vector<const MapCombineTable::Entry*>
MapCombineTable::EntriesByPartition() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(&e);
  std::stable_sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    return a->partition < b->partition;
  });
  return out;
}

void MapCombineTable::Clear() {
  std::fill(slots_.begin(), slots_.end(), 0);
  entries_.clear();
  arena_.Reset();
  state_bytes_ = 0;
}

}  // namespace opmr
