// One map task: reads one DFS block, applies the map function, and routes
// output through the configured map-side technique:
//
//   * kSortMerge — buffer + block-level sort on (partition, key), optional
//     combine over sorted groups, spill when the buffer fills (Hadoop).
//   * kHash + combine — MapCombineTable folding values into states; flushes
//     the table when it exceeds the buffer (the in-memory degenerate case
//     of map-side Hybrid Hash, §V map technique 2).
//   * kHash, no combine — partition-only scan: records stream straight to
//     the sink, no grouping work at all (§V map technique 1).
#pragma once

#include "dfs/dfs.h"
#include "engine/job.h"
#include "engine/map_sinks.h"
#include "engine/reduce_common.h"

namespace opmr {

// Hadoop's default HashPartitioner equivalent; reducers are chosen by a
// seeded byte hash of the key.
inline constexpr std::uint64_t kPartitionSeed = 0x9d5fULL;

inline std::uint32_t PartitionOf(Slice key, int num_reducers) {
  return static_cast<std::uint32_t>(BytesHash(key, kPartitionSeed) %
                                    static_cast<std::uint64_t>(num_reducers));
}

class MapTask {
 public:
  struct Stats {
    std::uint64_t input_records = 0;
    std::uint64_t output_records = 0;
    std::uint64_t output_bytes = 0;
  };

  MapTask(int task_id, const JobSpec& spec, const JobOptions& options,
          const RuntimeEnv& env, const BlockInfo& block, MapOutputSink* sink);

  // Processes the whole block; Close()s the sink but does NOT report
  // MapTaskDone (the executor does, after recording the timeline entry).
  Stats Run();

 private:
  void RunSortPath(DfsBlockReader& reader);
  void RunHashCombinePath(DfsBlockReader& reader);
  void RunPartitionOnlyPath(DfsBlockReader& reader);

  // Sorts the buffer, applies the derived combiner when configured, and
  // writes one partition-grouped batch to the sink.
  void FlushSortedBuffer(class MapOutputBuffer& buffer);

  int task_id_;
  const JobSpec& spec_;
  const JobOptions& options_;
  RuntimeEnv env_;
  const BlockInfo& block_;
  MapOutputSink* sink_;
  Stats stats_;
};

}  // namespace opmr
