#include "engine/cluster.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>
#include <thread>

#include "engine/map_task.h"
#include "engine/reduce_hash.h"
#include "engine/reduce_incremental.h"
#include "engine/reduce_sortmerge.h"

namespace opmr {

// --- BlockScheduler ----------------------------------------------------------

BlockScheduler::BlockScheduler(std::vector<BlockInfo> blocks, int num_nodes)
    : blocks_(std::move(blocks)),
      taken_(blocks_.size(), false),
      by_node_(num_nodes) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (int n : blocks_[i].replica_nodes) {
      if (n >= 0 && n < num_nodes) by_node_[n].push_back(i);
    }
  }
}

std::optional<BlockInfo> BlockScheduler::Next(int node, bool* was_local) {
  std::scoped_lock lock(mu_);
  if (node >= 0 && node < static_cast<int>(by_node_.size())) {
    for (std::size_t idx : by_node_[node]) {
      if (!taken_[idx]) {
        taken_[idx] = true;
        ++local_count_;
        *was_local = true;
        return blocks_[idx];
      }
    }
  }
  while (next_any_ < blocks_.size() && taken_[next_any_]) ++next_any_;
  if (next_any_ >= blocks_.size()) return std::nullopt;
  taken_[next_any_] = true;
  *was_local = false;
  return blocks_[next_any_];
}

int BlockScheduler::local_count() const {
  std::scoped_lock lock(mu_);
  return local_count_;
}

// --- ClusterExecutor ---------------------------------------------------------

ClusterExecutor::ClusterExecutor(Dfs* dfs, FileManager* files,
                                 MetricRegistry* metrics,
                                 ClusterOptions options)
    : dfs_(dfs), files_(files), metrics_(metrics), cluster_(options) {}

void ClusterExecutor::Validate(const JobSpec& spec,
                               const JobOptions& options) const {
  if (!spec.map) throw std::invalid_argument("JobSpec: map function required");
  if (!spec.reduce && !spec.has_aggregator()) {
    throw std::invalid_argument(
        "JobSpec: a reduce function or an aggregator is required");
  }
  if (spec.num_reducers <= 0) {
    throw std::invalid_argument("JobSpec: num_reducers must be positive");
  }
  if (options.group_by == GroupBy::kHash &&
      options.hash_reduce != HashReduce::kHybridHash &&
      !spec.has_aggregator()) {
    throw std::invalid_argument(
        "incremental hash reducers require an Aggregator; holistic reduce "
        "functions must use kHybridHash or kSortMerge");
  }
  if (options.snapshot_interval > 0.0 &&
      options.group_by != GroupBy::kSortMerge) {
    throw std::invalid_argument(
        "snapshots are a MapReduce Online (sort-merge) mechanism");
  }
  if (options.merge_factor < 2) {
    throw std::invalid_argument("merge_factor must be at least 2");
  }
  if (spec.grouping_prefix > 0 &&
      (options.group_by != GroupBy::kSortMerge || spec.has_aggregator())) {
    throw std::invalid_argument(
        "secondary sort (grouping_prefix) requires the sort-merge runtime "
        "and a holistic reduce function");
  }
  if (cluster_.max_task_attempts > 1 && options.shuffle == Shuffle::kPush) {
    throw std::invalid_argument(
        "task retries require pull shuffle: pushed output is visible before "
        "task completion and cannot be recalled");
  }
  if (cluster_.max_task_attempts < 1) {
    throw std::invalid_argument("max_task_attempts must be at least 1");
  }
}

JobResult ClusterExecutor::Run(const JobSpec& spec, const JobOptions& options) {
  Validate(spec, options);

  auto blocks = dfs_->ListBlocks(spec.input_file);
  for (const auto& extra : spec.extra_inputs) {
    const auto more = dfs_->ListBlocks(extra);
    blocks.insert(blocks.end(), more.begin(), more.end());
  }
  const int num_maps = static_cast<int>(blocks.size());
  const int num_reducers = spec.num_reducers;

  const auto counters_before = metrics_->Snapshot();

  WallTimer job_start;
  PhaseProfiler profiler;
  TimelineRecorder timeline;
  EmissionLog emissions(&job_start);
  ShuffleService shuffle(num_maps, num_reducers, metrics_,
                         options.push_queue_chunks);

  RuntimeEnv env;
  env.dfs = dfs_;
  env.files = files_;
  env.metrics = metrics_;
  env.profiler = &profiler;
  env.shuffle = &shuffle;
  env.timeline = &timeline;
  env.emissions = &emissions;
  env.job_start = &job_start;

  BlockScheduler scheduler(blocks, dfs_->options().num_nodes);

  std::mutex failure_mu;
  std::exception_ptr first_failure;
  auto record_failure = [&](std::exception_ptr e) {
    std::scoped_lock lock(failure_mu);
    if (!first_failure) first_failure = e;
  };

  std::atomic<std::uint64_t> input_records{0};
  std::atomic<std::uint64_t> map_output_records{0};
  std::atomic<std::uint64_t> output_records{0};
  std::vector<std::uint64_t> per_reducer_records(num_reducers, 0);
  std::atomic<int> next_map_task{0};
  std::atomic<int> map_retries{0};
  std::atomic<bool> maps_failed{false};

  // --- Reducer threads (start immediately: reducers shuffle while maps run).
  std::vector<std::jthread> reducer_threads;
  reducer_threads.reserve(num_reducers);
  for (int r = 0; r < num_reducers; ++r) {
    reducer_threads.emplace_back([&, r] {
      try {
        std::uint64_t records = 0;
        if (options.group_by == GroupBy::kSortMerge) {
          SortMergeReducer reducer(r, spec, options, env);
          records = reducer.Run();
        } else {
          switch (options.hash_reduce) {
            case HashReduce::kHybridHash: {
              HybridHashReducer reducer(r, spec, options, env);
              records = reducer.Run();
              break;
            }
            case HashReduce::kIncremental: {
              IncrementalHashReducer reducer(r, spec, options, env);
              records = reducer.Run();
              break;
            }
            case HashReduce::kHotKeyIncremental: {
              HotKeyIncrementalReducer reducer(r, spec, options, env);
              records = reducer.Run();
              break;
            }
          }
        }
        output_records.fetch_add(records, std::memory_order_relaxed);
        per_reducer_records[r] = records;  // one writer per slot
      } catch (...) {
        record_failure(std::current_exception());
      }
    });
  }

  // --- Map worker threads: num_nodes × map_slots_per_node slots.
  {
    std::vector<std::jthread> map_workers;
    const int num_workers =
        cluster_.num_nodes * cluster_.map_slots_per_node;
    map_workers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      const int node = w / cluster_.map_slots_per_node;
      map_workers.emplace_back([&, node] {
        try {
          while (!maps_failed.load(std::memory_order_relaxed)) {
            bool was_local = false;
            auto block = scheduler.Next(node, &was_local);
            if (!block) break;
            const int task_id = next_map_task.fetch_add(1);
            const double begin = job_start.Seconds();

            // Attempt loop: a failed attempt publishes nothing, so the
            // re-execution is invisible to reducers.
            MapTask::Stats stats;
            for (int attempt = 1;; ++attempt) {
              std::unique_ptr<MapOutputSink> sink;
              if (options.shuffle == Shuffle::kPush) {
                sink = std::make_unique<PushSink>(task_id, files_, metrics_,
                                                  &shuffle, num_reducers,
                                                  options.push_chunk_bytes);
              } else {
                sink = std::make_unique<FileSink>(
                    task_id, files_, metrics_, &shuffle, num_reducers,
                    options.map_buffer_bytes, cluster_.sync_map_output);
              }
              MapTask task(task_id, spec, options, env, *block, sink.get());
              try {
                stats = task.Run();
                sink->Publish();
                break;
              } catch (...) {
                if (attempt >= cluster_.max_task_attempts) throw;
                map_retries.fetch_add(1, std::memory_order_relaxed);
              }
            }
            shuffle.MapTaskDone(task_id);

            input_records.fetch_add(stats.input_records,
                                    std::memory_order_relaxed);
            map_output_records.fetch_add(stats.output_records,
                                         std::memory_order_relaxed);
            timeline.Record(TaskKind::kMap, begin, job_start.Seconds());
          }
        } catch (...) {
          maps_failed.store(true, std::memory_order_relaxed);
          record_failure(std::current_exception());
          shuffle.Abort("map task failed");
        }
      });
    }
    // jthreads join at scope exit.
  }
  if (maps_failed.load()) {
    // Reducers are unwinding via the aborted shuffle; join then rethrow.
  }
  reducer_threads.clear();  // join all reducers

  {
    std::scoped_lock lock(failure_mu);
    if (first_failure) std::rethrow_exception(first_failure);
  }

  emissions.Finish();

  // --- Assemble the result ----------------------------------------------------
  JobResult result;
  result.job_name = spec.name;
  result.wall_seconds = job_start.Seconds();
  result.num_map_tasks = num_maps;
  result.num_reduce_tasks = num_reducers;
  result.local_map_tasks = scheduler.local_count();
  result.map_task_retries = map_retries.load();
  result.reducer_output_records = std::move(per_reducer_records);
  result.input_records = input_records.load();
  result.map_output_records = map_output_records.load();
  result.output_records = output_records.load();
  result.first_output_seconds = emissions.first_emit_seconds();
  result.emission_curve = emissions.series().Snapshot();
  result.cpu_seconds = profiler.Snapshot();
  result.total_cpu_seconds = profiler.TotalCpuSeconds();
  result.timeline = timeline.Snapshot();

  const auto counters_after = metrics_->Snapshot();
  for (const auto& [name, value] : counters_after) {
    auto it = counters_before.find(name);
    const std::int64_t before = it == counters_before.end() ? 0 : it->second;
    result.counters[name] = value - before;
  }
  return result;
}

}  // namespace opmr
