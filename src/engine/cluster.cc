#include "engine/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "checkpoint/checkpoint.h"
#include "coded/coded.h"
#include "coded/plan.h"
#include "common/rng.h"
#include "coord/coordinator.h"
#include "coord/member.h"
#include "engine/map_task.h"
#include "engine/reduce_hash.h"
#include "engine/reduce_incremental.h"
#include "engine/reduce_sortmerge.h"
#include "engine/shuffle_remote.h"
#include "fault/fault.h"
#include "net/transport.h"

namespace opmr {

namespace {

// Installs the chaos injector as the process-global I/O hook for the
// duration of one Run(); clean runs install nothing and pay nothing.
class IoFaultHookGuard {
 public:
  explicit IoFaultHookGuard(IoFaultHook* hook) : installed_(hook != nullptr) {
    if (installed_) SetIoFaultHook(hook);
  }
  ~IoFaultHookGuard() {
    if (installed_) SetIoFaultHook(nullptr);
  }
  IoFaultHookGuard(const IoFaultHookGuard&) = delete;
  IoFaultHookGuard& operator=(const IoFaultHookGuard&) = delete;

 private:
  bool installed_;
};

// Same pattern for the wire's fault seam (conn_drop / net_stall points).
class NetFaultHookGuard {
 public:
  explicit NetFaultHookGuard(net::NetFaultHook* hook)
      : installed_(hook != nullptr) {
    if (installed_) net::SetNetFaultHook(hook);
  }
  ~NetFaultHookGuard() {
    if (installed_) net::SetNetFaultHook(nullptr);
  }
  NetFaultHookGuard(const NetFaultHookGuard&) = delete;
  NetFaultHookGuard& operator=(const NetFaultHookGuard&) = delete;

 private:
  bool installed_;
};

// Shuts a per-run transport down at scope exit — joining its I/O threads
// before the ShuffleServer / ShuffleService they call into are destroyed.
class TransportShutdownGuard {
 public:
  ~TransportShutdownGuard() {
    if (transport != nullptr) transport->Shutdown();
  }
  net::Transport* transport = nullptr;
};

// Clears the per-run membership callbacks at scope exit, before the
// ShuffleClient / ShuffleService they capture are destroyed.
class CoordRunGuard {
 public:
  ~CoordRunGuard() {
    if (client != nullptr) client->SetOnEvicted({});
    if (coordinator != nullptr) coordinator->SetOnWorkerLost({});
  }
  coord::CoordClient* client = nullptr;
  coord::Coordinator* coordinator = nullptr;
};

// One logical map task: its input block plus the coordination state rival
// attempts (original + speculative backup) race on.  `published` makes the
// publish step exactly-once; the losing attempt's output is discarded
// without ever becoming visible to reducers.
struct MapTaskEntry {
  BlockInfo block;
  int task_id = 0;
  double started_s = 0.0;
  std::atomic<bool> done{false};
  std::atomic<bool> speculated{false};
  std::atomic<bool> published{false};
};

// RAII slot leases against the (optional) multi-job scheduler hooks; with
// no hooks installed both are free no-ops.  Acquire may block until the
// shared pool grants a slot.
class MapSlotLease {
 public:
  MapSlotLease(const SchedHooks* hooks, int node) : hooks_(hooks), node_(node) {
    if (hooks_ != nullptr && hooks_->acquire_map_slot) {
      hooks_->acquire_map_slot(node_);
    }
  }
  ~MapSlotLease() {
    if (hooks_ != nullptr && hooks_->release_map_slot) {
      hooks_->release_map_slot(node_);
    }
  }
  MapSlotLease(const MapSlotLease&) = delete;
  MapSlotLease& operator=(const MapSlotLease&) = delete;

 private:
  const SchedHooks* hooks_;
  int node_;
};

// The coded decoder's always-accepting stand-in for the shuffle endpoint:
// collects a re-mapped task's pushed chunks per partition, byte-identical
// to what the map side's CodedShuffleClient buffers (both sit behind a
// PushSink whose chunk boundaries are then a pure function of the record
// stream).
class CapturingEndpoint final : public ShuffleMapEndpoint {
 public:
  explicit CapturingEndpoint(coded::UnitsByPartition* out) : out_(out) {}

  void RegisterFile(const MapOutputFile& file) override {
    (void)file;
    throw std::logic_error("coded re-map must not register spill files");
  }
  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment,
                       bool sorted) override {
    (void)map_task;
    (void)path;
    (void)reducer;
    (void)segment;
    (void)sorted;
    throw std::logic_error("coded re-map must not divert segments");
  }
  PushResult TryPush(int reducer, ShuffleItem chunk) override {
    coded::CodedUnit unit;
    unit.sorted = chunk.sorted;
    unit.records = chunk.records;
    unit.bytes = std::move(chunk.bytes);
    out_->at(static_cast<std::size_t>(reducer)).push_back(std::move(unit));
    return PushResult::kAccepted;
  }
  void MapTaskDone(int map_task, std::uint64_t input_records,
                   std::uint64_t output_records) override {
    (void)map_task;
    (void)input_records;
    (void)output_records;
  }

 private:
  coded::UnitsByPartition* out_;
};

class ReduceSlotLease {
 public:
  explicit ReduceSlotLease(const SchedHooks* hooks) : hooks_(hooks) {
    if (hooks_ != nullptr && hooks_->acquire_reduce_slot) {
      hooks_->acquire_reduce_slot();
    }
  }
  ~ReduceSlotLease() {
    if (hooks_ != nullptr && hooks_->release_reduce_slot) {
      hooks_->release_reduce_slot();
    }
  }
  ReduceSlotLease(const ReduceSlotLease&) = delete;
  ReduceSlotLease& operator=(const ReduceSlotLease&) = delete;

 private:
  const SchedHooks* hooks_;
};

}  // namespace

// --- BlockScheduler ----------------------------------------------------------

BlockScheduler::BlockScheduler(std::vector<BlockInfo> blocks, int num_nodes,
                               const SchedHooks* hooks)
    : blocks_(std::move(blocks)),
      taken_(blocks_.size(), false),
      by_node_(num_nodes),
      hooks_(hooks) {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    for (int n : blocks_[i].replica_nodes) {
      if (n >= 0 && n < num_nodes) by_node_[n].push_back(i);
    }
  }
}

std::optional<BlockInfo> BlockScheduler::Next(int node, bool* was_local) {
  std::scoped_lock lock(mu_);
  if (hooks_ != nullptr && hooks_->place_map_block) {
    // Placement-plane seam: offer the untaken blocks (listing order) and
    // honour an override; -1 falls through to the built-in order.
    std::vector<const BlockInfo*> pending;
    std::vector<std::size_t> indices;
    pending.reserve(blocks_.size());
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (taken_[i]) continue;
      pending.push_back(&blocks_[i]);
      indices.push_back(i);
    }
    if (pending.empty()) return std::nullopt;
    const int pick = hooks_->place_map_block(node, pending);
    if (pick >= 0 && pick < static_cast<int>(pending.size())) {
      const std::size_t idx = indices[static_cast<std::size_t>(pick)];
      taken_[idx] = true;
      const auto& holders = blocks_[idx].replica_nodes;
      *was_local =
          std::find(holders.begin(), holders.end(), node) != holders.end();
      if (*was_local) ++local_count_;
      return blocks_[idx];
    }
  }
  if (node >= 0 && node < static_cast<int>(by_node_.size())) {
    for (std::size_t idx : by_node_[node]) {
      if (!taken_[idx]) {
        taken_[idx] = true;
        ++local_count_;
        *was_local = true;
        return blocks_[idx];
      }
    }
  }
  while (next_any_ < blocks_.size() && taken_[next_any_]) ++next_any_;
  if (next_any_ >= blocks_.size()) return std::nullopt;
  taken_[next_any_] = true;
  *was_local = false;
  return blocks_[next_any_];
}

int BlockScheduler::local_count() const {
  std::scoped_lock lock(mu_);
  return local_count_;
}

// --- ClusterExecutor ---------------------------------------------------------

ClusterExecutor::ClusterExecutor(Dfs* dfs, FileManager* files,
                                 MetricRegistry* metrics,
                                 ClusterOptions options)
    : dfs_(dfs), files_(files), metrics_(metrics), cluster_(options) {}

void ClusterExecutor::Validate(const JobSpec& spec,
                               const JobOptions& options) const {
  if (!spec.map) throw std::invalid_argument("JobSpec: map function required");
  if (!spec.reduce && !spec.has_aggregator()) {
    throw std::invalid_argument(
        "JobSpec: a reduce function or an aggregator is required");
  }
  if (spec.num_reducers <= 0) {
    throw std::invalid_argument("JobSpec: num_reducers must be positive");
  }
  if (options.group_by == GroupBy::kHash &&
      options.hash_reduce != HashReduce::kHybridHash &&
      !spec.has_aggregator()) {
    throw std::invalid_argument(
        "incremental hash reducers require an Aggregator; holistic reduce "
        "functions must use kHybridHash or kSortMerge");
  }
  if (options.snapshot_interval > 0.0 &&
      options.group_by != GroupBy::kSortMerge) {
    throw std::invalid_argument(
        "snapshots are a MapReduce Online (sort-merge) mechanism");
  }
  if (options.merge_factor < 2) {
    throw std::invalid_argument("merge_factor must be at least 2");
  }
  if (spec.grouping_prefix > 0 &&
      (options.group_by != GroupBy::kSortMerge || spec.has_aggregator())) {
    throw std::invalid_argument(
        "secondary sort (grouping_prefix) requires the sort-merge runtime "
        "and a holistic reduce function");
  }
  if (cluster_.max_task_attempts < 1) {
    throw std::invalid_argument("max_task_attempts must be at least 1");
  }
  if (options.checkpoint.enabled) {
    if (options.group_by != GroupBy::kHash ||
        options.hash_reduce != HashReduce::kIncremental) {
      throw std::invalid_argument(
          "checkpointing requires the incremental hash runtime (group_by == "
          "kHash, hash_reduce == kIncremental): only per-key aggregator "
          "state can be snapshotted and resumed");
    }
    if (options.early_emit) {
      throw std::invalid_argument(
          "checkpointing is incompatible with early_emit: answers emitted "
          "before a failure cannot be recalled, so a restored attempt would "
          "duplicate them");
    }
    if (options.checkpoint.retain < 1) {
      throw std::invalid_argument("checkpoint.retain must be at least 1");
    }
    if (options.checkpoint.interval_records == 0 &&
        options.checkpoint.interval_bytes == 0 &&
        options.checkpoint.interval_seconds <= 0.0) {
      throw std::invalid_argument(
          "checkpointing enabled without an interval: set interval_records, "
          "interval_bytes, or interval_seconds");
    }
  }
  if (cluster_.speculative_execution && options.shuffle == Shuffle::kPush) {
    throw std::invalid_argument(
        "speculative re-execution requires pull shuffle: a duplicate "
        "attempt's pushed output cannot be recalled");
  }
  if (cluster_.speculative_reduce && !options.checkpoint.enabled) {
    throw std::invalid_argument(
        "speculative_reduce requires checkpointing: a backup reduce attempt "
        "seeds from the primary's newest checkpoint image and replays only "
        "the un-acknowledged shuffle suffix — enable JobOptions::checkpoint "
        "(e.g. CheckpointedOnePassOptions)");
  }
  if (cluster_.max_task_attempts > 1 && options.snapshot_interval > 0.0) {
    throw std::invalid_argument(
        "task retries with snapshots are unsupported: a re-executed reducer "
        "would collide with snapshot files already published by the failed "
        "attempt");
  }
  if (cluster_.role != WorkerRole::kAll &&
      cluster_.shuffle_transport == nullptr) {
    throw std::invalid_argument(
        "a split worker role (kMapOnly / kReduceOnly) requires a "
        "shuffle_transport to reach the other group");
  }
  if (cluster_.map_partition_count < 1 || cluster_.map_partition_index < 0 ||
      cluster_.map_partition_index >= cluster_.map_partition_count) {
    throw std::invalid_argument(
        "map partition must satisfy 0 <= map_partition_index < "
        "map_partition_count");
  }
  if (cluster_.map_partition_count > 1 &&
      cluster_.role != WorkerRole::kMapOnly) {
    throw std::invalid_argument(
        "map_partition_count > 1 splits the map group across processes and "
        "requires role == kMapOnly (the reduce group sees the full task "
        "count via MapDone frames)");
  }
  if (cluster_.coded_r > 0) {
    if (cluster_.shuffle_transport == nullptr) {
      throw std::invalid_argument(
          "coded shuffle (coded_r > 0) requires a framed shuffle transport: "
          "kCodedChunk frames cannot ride the direct in-process endpoint — "
          "re-run with --transport=loopback or --transport=tcp");
    }
    if (options.shuffle != Shuffle::kPush) {
      throw std::invalid_argument(
          "coded shuffle requires push (pipelined) shuffle: the encoder "
          "buffers pushed chunks into multicast groups");
    }
    if (spec.num_reducers < cluster_.coded_r + 1) {
      throw std::invalid_argument(
          "coded shuffle with r=" + std::to_string(cluster_.coded_r) +
          " requires num_reducers >= r + 1 (= " +
          std::to_string(cluster_.coded_r + 1) +
          "): every multicast group seats r holders plus one receiver");
    }
    if (dfs_->options().replication < cluster_.coded_r) {
      throw std::invalid_argument(
          "coded shuffle with r=" + std::to_string(cluster_.coded_r) +
          " requires DFS replication >= r (have " +
          std::to_string(dfs_->options().replication) +
          "): every map block needs r replicas to seat its r co-located "
          "mappers — raise replication to at least " +
          std::to_string(cluster_.coded_r));
    }
    if (cluster_.map_partition_count > 1) {
      throw std::invalid_argument(
          "coded shuffle does not compose with a partitioned map group "
          "(map_partition_count > 1): every sibling would re-encode the "
          "whole group set");
    }
  }
}

void ClusterExecutor::RetryBackoff(int attempt, std::uint64_t salt) const {
  if (cluster_.retry_backoff_base_ms <= 0.0) return;
  double ms = cluster_.retry_backoff_base_ms *
              std::pow(2.0, std::max(0, attempt - 1));
  ms = std::min(ms, cluster_.retry_backoff_max_ms);
  // Deterministic jitter in [0.5, 1): decorrelates retries of tasks that
  // failed together (e.g. a node-wide fault) without sacrificing
  // reproducibility.
  Rng rng(salt * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(attempt));
  ms *= 0.5 + 0.5 * rng.NextDouble();
  metrics_->Get("retry.backoff_ms")->Add(static_cast<std::int64_t>(ms));
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

JobResult ClusterExecutor::Run(const JobSpec& spec, const JobOptions& options) {
  Validate(spec, options);

  FaultInjector* fault = cluster_.fault_injector;
  IoFaultHookGuard hook_guard(fault);
  NetFaultHookGuard net_hook_guard(fault);

  const WorkerRole role = cluster_.role;
  const bool run_maps = role != WorkerRole::kReduceOnly;
  const bool run_reducers = role != WorkerRole::kMapOnly;
  net::Transport* transport = cluster_.shuffle_transport;

  // Snapshot before replica filtering so faults injected during scheduling
  // setup are part of this job's counter delta.
  const auto counters_before = metrics_->Snapshot();

  auto blocks = dfs_->ListBlocks(spec.input_file);
  for (const auto& extra : spec.extra_inputs) {
    const auto more = dfs_->ListBlocks(extra);
    blocks.insert(blocks.end(), more.begin(), more.end());
  }
  // The coded plan derives holder sets from the pristine replica placement
  // and both wire endpoints must agree on it, so snapshot the listing
  // before fault-plane replica filtering degrades it.
  const bool coded_enabled = cluster_.coded_r > 0;
  std::vector<BlockInfo> coded_blocks;
  if (coded_enabled) coded_blocks = blocks;
  if (fault != nullptr) {
    // Replica loss degrades locality metadata before scheduling; the block
    // data itself survives (the scheduler falls back to remote reads).
    for (auto& block : blocks) {
      fault->FilterReplicas(&block.replica_nodes, block.block_id);
    }
  }
  // Task ids are global: in a multi-worker map group each sibling filters
  // the same full listing down to its partition but numbers tasks off the
  // unfiltered index, so ids never collide on the shared reduce side.
  // Coded mode forces global ids too — the plan speaks listing indices, so
  // claim-order ids (nondeterministic across worker threads) would desync
  // the encoder from the reduce-side re-map.
  const int num_maps = static_cast<int>(blocks.size());
  std::map<std::uint64_t, int> global_task_id;
  if (cluster_.map_partition_count > 1 || coded_enabled) {
    for (int i = 0; i < num_maps; ++i) {
      global_task_id[blocks[i].block_id] = i;
    }
  }
  if (cluster_.map_partition_count > 1) {
    std::vector<BlockInfo> mine;
    for (int i = 0; i < num_maps; ++i) {
      if (i % cluster_.map_partition_count == cluster_.map_partition_index) {
        mine.push_back(std::move(blocks[i]));
      }
    }
    blocks = std::move(mine);
  }
  const int local_map_tasks = static_cast<int>(blocks.size());
  const int num_reducers = spec.num_reducers;

  // Both sides derive the identical coded plan from the same inputs, so
  // group ids travel in frames as plain integers.
  std::unique_ptr<coded::CodedPlan> coded_plan;
  if (coded_enabled) {
    coded_plan = std::make_unique<coded::CodedPlan>(coded::CodedPlan::Build(
        coded_blocks, num_reducers, cluster_.coded_r, cluster_.coded_seed));
  }

  WallTimer job_start;
  PhaseProfiler profiler;
  TimelineRecorder timeline;
  EmissionLog emissions(&job_start);
  ShuffleService shuffle(num_maps, num_reducers, metrics_,
                         options.push_queue_chunks);

  const bool checkpoint_enabled = options.checkpoint.enabled;
  const bool reduce_retry_enabled = cluster_.max_task_attempts > 1;
  if (run_reducers) {
    if (checkpoint_enabled) {
      // Retain every consumed shuffle item (spilling past the budget) until
      // the consuming reducer's checkpoints cover it — reduce recovery works
      // even for pipelined (push) feeds.
      shuffle.EnableCheckpointReplay(files_->NewDir("shuffle_retain"),
                                     options.checkpoint.retain_budget_bytes);
      if (cluster_.block_cache_bytes > 0) {
        // Retained-spill payloads also land in the reducer-side block cache
        // so a checkpoint-restart replay is served from memory.
        if (block_cache_ == nullptr) {
          block_cache_ = std::make_unique<dataplane::BlockCache>(
              cluster_.block_cache_bytes, metrics_);
        }
        shuffle.SetBlockCache(block_cache_.get(), spec.name);
      }
    } else if (reduce_retry_enabled) {
      // Classic Hadoop-style replay: file descriptors only.  A push job
      // still runs, but a reduce failure after a pushed chunk was consumed
      // becomes a structured Table III error instead of a recovery.
      shuffle.EnableReplay();
    }
    if (cluster_.shuffle_idle_timeout_s > 0.0) {
      shuffle.SetIdleTimeout(cluster_.shuffle_idle_timeout_s);
    }
  }
  if (fault != nullptr) {
    shuffle.SetFetchProbe([fault](int reducer, int map_task) {
      fault->OnShuffleFetch(reducer, map_task);
    });
  }

  // The runtime environment is built before the shuffle endpoints because
  // the coded decoder's Prepare() re-runs map tasks through it.
  RuntimeEnv env;
  env.dfs = dfs_;
  env.files = files_;
  env.metrics = metrics_;
  env.profiler = &profiler;
  env.shuffle = &shuffle;
  env.timeline = &timeline;
  env.emissions = &emissions;
  env.job_start = &job_start;
  env.fault = fault;
  if (checkpoint_enabled) {
    env.checkpoint_dir = options.checkpoint.dir.empty()
                             ? files_->NewDir("checkpoints")
                             : std::filesystem::path(options.checkpoint.dir);
  }

  // Shuffle endpoint selection.  Without a transport the map side calls
  // the service directly (the seed's path, zero overhead).  With one, the
  // reduce side serves frames and the map side sends them — over loopback
  // (same process) or sockets (split worker groups).  Coded mode layers
  // over both halves: the decoder feeds the server's coded frames into the
  // ordinary exactly-once pipeline, the encoder wraps the client as the
  // map sinks' endpoint.  Declared before the transport guard so the
  // transport's I/O threads are joined before either dies.
  ShuffleMapEndpoint* endpoint = &shuffle;
  std::unique_ptr<ShuffleServer> shuffle_server;
  std::unique_ptr<ShuffleClient> shuffle_client;
  std::unique_ptr<coded::CodedDecoder> coded_decoder;
  std::unique_ptr<coded::CodedShuffleClient> coded_client;
  TransportShutdownGuard transport_guard;
  if (transport != nullptr) {
    transport_guard.transport = transport;
    if (run_reducers) {
      shuffle_server = std::make_unique<ShuffleServer>(
          transport, &shuffle, files_, metrics_,
          /*merge_client_wire_stats=*/role == WorkerRole::kReduceOnly);
      shuffle_server->SetAuthSecret(cluster_.shuffle_secret);
      if (coded_enabled) {
        ShuffleService* service = &shuffle;
        coded_decoder = std::make_unique<coded::CodedDecoder>(
            coded_plan.get(),
            /*remap=*/
            [this, &spec, &options, &env, num_reducers](
                int task, const BlockInfo& block,
                coded::UnitsByPartition* out) {
              CapturingEndpoint capture(out);
              PushSink sink(task, files_, metrics_, &capture, num_reducers,
                            options.push_chunk_bytes);
              MapTask remap(task, spec, options, env, block, &sink);
              remap.Run();
            },
            /*push=*/
            [service](int reducer, int task, const coded::CodedUnit& unit) {
              ShuffleItem item;
              item.map_task = task;
              item.sorted = unit.sorted;
              item.records = unit.records;
              item.bytes = unit.bytes;
              service->ForcePush(reducer, std::move(item));
            },
            metrics_);
        if (cluster_.coded_kill_node >= 0) {
          coded_decoder->SetKill(cluster_.coded_kill_node,
                                 cluster_.coded_kill_after_frames);
        }
        coded_decoder->Prepare(coded_blocks);
        coded::CodedDecoder* decoder = coded_decoder.get();
        shuffle_server->SetCodedFrameHandler(
            [decoder](const net::CodedChunkMsg& msg) {
              return decoder->OnCodedFrame(msg);
            });
        shuffle_server->SetMapDoneHook(
            [decoder](int task) { decoder->OnMapDone(task); });
      }
      shuffle_server->Start();
    }
    if (run_maps) {
      ShuffleClient::Options client_options;
      client_options.job = spec.name;
      client_options.num_map_tasks = num_maps;
      client_options.num_reducers = num_reducers;
      client_options.push_queue_chunks = options.push_queue_chunks;
      client_options.shared_fs = cluster_.shuffle_shared_fs;
      client_options.worker = cluster_.worker_id;
      client_options.auth = cluster_.shuffle_secret;
      shuffle_client = std::make_unique<ShuffleClient>(
          transport, metrics_, std::move(client_options));
      endpoint = shuffle_client.get();
      if (coded_enabled) {
        ShuffleClient* raw = shuffle_client.get();
        coded_client = std::make_unique<coded::CodedShuffleClient>(
            coded_plan.get(),
            /*send=*/
            [raw](const std::function<net::Frame(std::uint64_t)>& build) {
              raw->SendSequencedFrame(build);
            },
            /*map_done=*/
            [raw](int task, std::uint64_t in, std::uint64_t out) {
              raw->MapTaskDone(task, in, out);
            },
            metrics_);
        endpoint = coded_client.get();
      }
    }
  }

  // Membership wiring, per run: an evicted-and-rejoined map worker replays
  // its delivered-but-unacked shuffle window (the reduce side may have
  // dropped the tail with the flap); a worker declared LOST while map
  // tasks are still outstanding aborts the shuffle immediately — the
  // coordinator's failure detector is the primary death signal, the idle
  // timeout only a fallback.
  CoordRunGuard coord_guard;
  if (cluster_.coord_client != nullptr && shuffle_client != nullptr) {
    ShuffleClient* client = shuffle_client.get();
    cluster_.coord_client->SetOnEvicted([client] { client->ReplayUnacked(); });
    coord_guard.client = cluster_.coord_client;
  }
  if (cluster_.coordinator != nullptr && run_reducers) {
    ShuffleService* service = &shuffle;
    cluster_.coordinator->SetOnWorkerLost([service](const std::string& id) {
      if (service->MapsDoneFraction() < 1.0) {
        service->Abort("map worker '" + id +
                       "' lost (lease expired past rejoin grace)");
      }
    });
    coord_guard.coordinator = cluster_.coordinator;
  }

  BlockScheduler scheduler(blocks, dfs_->options().num_nodes,
                           cluster_.sched_hooks);

  std::mutex failure_mu;
  std::exception_ptr first_failure;
  auto record_failure = [&](std::exception_ptr e) {
    std::scoped_lock lock(failure_mu);
    if (!first_failure) first_failure = e;
  };

  std::atomic<std::uint64_t> input_records{0};
  std::atomic<std::uint64_t> map_output_records{0};
  std::atomic<std::uint64_t> output_records{0};
  std::vector<std::uint64_t> per_reducer_records(num_reducers, 0);
  std::atomic<int> map_retries{0};
  std::atomic<int> reduce_retries{0};
  std::atomic<int> spec_launched{0};
  std::atomic<int> spec_wins{0};
  std::atomic<bool> maps_failed{false};

  // Reduce-speculation state: the watchdog raises a reducer's preempt flag;
  // the reducer converts it to a ReducePreempted throw at the next record
  // boundary and the following attempt is the checkpoint-seeded backup.
  const bool reduce_spec_enabled =
      cluster_.speculative_reduce && run_reducers && checkpoint_enabled;
  std::vector<std::atomic<bool>> reduce_preempt(
      static_cast<std::size_t>(num_reducers));
  std::vector<std::atomic<bool>> reduce_finished(
      static_cast<std::size_t>(num_reducers));
  std::atomic<int> reducers_completed{0};
  std::atomic<std::int64_t> reduce_completed_us{0};
  std::atomic<int> spec_reduce_launched{0};
  std::atomic<int> spec_reduce_wins{0};

  // --- Reducer threads (start immediately: reducers shuffle while maps run).
  std::vector<std::jthread> reducer_threads;
  reducer_threads.reserve(run_reducers ? num_reducers : 0);
  for (int r = 0; run_reducers && r < num_reducers; ++r) {
    reducer_threads.emplace_back([&, r] {
      // Under a multi-job scheduler the whole reducer lifetime occupies one
      // shared reduce slot (push-mode map output destined here simply
      // queues or diverts to files while the lease waits).
      ReduceSlotLease slot(cluster_.sched_hooks);
      const double reducer_begin = job_start.Seconds();
      RuntimeEnv renv = env;
      if (reduce_spec_enabled) renv.reduce_preempt = &reduce_preempt[r];
      auto run_reducer = [&]() -> std::uint64_t {
        if (options.group_by == GroupBy::kSortMerge) {
          SortMergeReducer reducer(r, spec, options, renv);
          return reducer.Run();
        }
        switch (options.hash_reduce) {
          case HashReduce::kHybridHash: {
            HybridHashReducer reducer(r, spec, options, renv);
            return reducer.Run();
          }
          case HashReduce::kIncremental: {
            IncrementalHashReducer reducer(r, spec, options, renv);
            return reducer.Run();
          }
          case HashReduce::kHotKeyIncremental: {
            HotKeyIncrementalReducer reducer(r, spec, options, renv);
            return reducer.Run();
          }
        }
        return 0;  // unreachable
      };
      // Attempt loop: a failed attempt's partial reducer state (hash
      // tables, spill runs, unpublished output writers) dies with the
      // reducer object; Rewind re-delivers every published map output.
      for (int attempt = 1;; ++attempt) {
        FaultScope scope(FaultScope::Kind::kReduce, r, attempt,
                         r % cluster_.num_nodes);
        try {
          const std::uint64_t records = run_reducer();
          output_records.fetch_add(records, std::memory_order_relaxed);
          per_reducer_records[r] = records;  // one writer per slot
          if (renv.speculative_attempt) {
            spec_reduce_wins.fetch_add(1, std::memory_order_relaxed);
            metrics_->Get("speculation.reduce_wins")->Increment();
          }
          reduce_finished[r].store(true, std::memory_order_release);
          const int done =
              reducers_completed.fetch_add(1, std::memory_order_relaxed) + 1;
          reduce_completed_us.fetch_add(
              static_cast<std::int64_t>(
                  (job_start.Seconds() - reducer_begin) * 1e6),
              std::memory_order_relaxed);
          if (cluster_.sched_hooks != nullptr &&
              cluster_.sched_hooks->on_reduce_progress) {
            cluster_.sched_hooks->on_reduce_progress(done, num_reducers);
          }
          return;
        } catch (const ReducePreempted&) {
          // Takeover speculation: the next attempt IS the backup — it seeds
          // from the newest checkpoint image and replays only the shuffle
          // suffix past its watermark.  A preemption never counts against
          // max_task_attempts and never rewinds to ordinal 0.
          reduce_preempt[r].store(false, std::memory_order_relaxed);
          renv.speculative_attempt = true;
          spec_reduce_launched.fetch_add(1, std::memory_order_relaxed);
          metrics_->Get("speculation.reduce_launched")->Increment();
          continue;
        } catch (const ReplayError&) {
          // The feed is unrecoverable; another attempt would fail the same
          // way (Table III).
          record_failure(std::current_exception());
          shuffle.MarkReducerGone(r);
          return;
        } catch (...) {
          const bool retryable = reduce_retry_enabled &&
                                 attempt < cluster_.max_task_attempts &&
                                 !maps_failed.load(std::memory_order_relaxed);
          if (!retryable) {
            record_failure(std::current_exception());
            // Terminal: push-mode mappers fail fast (kReducerGone) instead
            // of pushing into a queue nobody will drain.
            shuffle.MarkReducerGone(r);
            return;
          }
          if (!checkpoint_enabled) {
            // Full replay from the start.  With checkpointing on, the next
            // attempt restores its own checkpoint and rewinds to that
            // watermark itself.
            std::string why;
            if (!shuffle.Rewind(r, /*from_ordinal=*/0, &why)) {
              record_failure(std::make_exception_ptr(ReplayError(
                  "reduce task " + std::to_string(r) +
                  " cannot be re-executed: " + why)));
              shuffle.MarkReducerGone(r);
              return;
            }
          }
          reduce_retries.fetch_add(1, std::memory_order_relaxed);
          metrics_->Get("retry.reduce_task")->Increment();
          RetryBackoff(attempt, 0x5edce5ull + static_cast<std::uint64_t>(r));
        }
      }
    });
  }

  // --- Reduce-speculation watchdog: picks straggling reducers (or ones on
  // a fault-plan-designated slow node) and raises their preempt flag — but
  // only once a checkpoint acknowledgement proves a seed image exists, so
  // the backup always replays a strict suffix of the feed.  Declared after
  // the reducer threads so an unwinding Run() stops it first.
  std::jthread reduce_watchdog;
  if (reduce_spec_enabled) {
    reduce_watchdog = std::jthread([&](std::stop_token stop) {
      std::vector<bool> backed_up(static_cast<std::size_t>(num_reducers));
      while (!stop.stop_requested()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        const int done_n = reducers_completed.load(std::memory_order_relaxed);
        const double mean_s =
            done_n > 0
                ? static_cast<double>(reduce_completed_us.load(
                      std::memory_order_relaxed)) /
                      1e6 / done_n
                : 0.0;
        // Reducers all start with the job, so job time is reducer elapsed
        // time.
        const double elapsed_s = job_start.Seconds();
        for (int r = 0; r < num_reducers; ++r) {
          if (backed_up[r]) continue;
          if (reduce_finished[r].load(std::memory_order_acquire)) continue;
          if (shuffle.AckedOrdinal(r) == 0) continue;  // nothing to seed from
          const bool on_slow_node =
              fault != nullptr &&
              fault->SlowNodeDelayMs(r % cluster_.num_nodes) > 0.0;
          const bool straggling = IsStraggler(
              elapsed_s, mean_s, cluster_.reduce_speculation_threshold);
          if (!on_slow_node && !straggling) continue;
          backed_up[r] = true;
          reduce_preempt[r].store(true, std::memory_order_relaxed);
        }
      }
    });
  }

  // --- Map task table: rival attempts (retry waves, speculative backups)
  // coordinate through these entries.
  std::deque<MapTaskEntry> task_entries;
  std::mutex entries_mu;
  std::atomic<std::uint64_t> completed_maps{0};
  std::atomic<std::int64_t> completed_us_total{0};

  auto register_entry = [&](BlockInfo block) -> MapTaskEntry* {
    std::scoped_lock lock(entries_mu);
    MapTaskEntry& entry = task_entries.emplace_back();
    // Partitioned map groups and coded mode use the globally-unique
    // listing index (the coded plan addresses tasks by it); otherwise ids
    // stay in claim order (the seed's behaviour, which fault plans target
    // by task number).
    entry.task_id = cluster_.map_partition_count > 1 || coded_enabled
                        ? global_task_id.at(block.block_id)
                        : static_cast<int>(task_entries.size()) - 1;
    entry.block = std::move(block);
    entry.started_s = job_start.Seconds();
    return &entry;
  };

  auto all_entries_done = [&] {
    std::scoped_lock lock(entries_mu);
    if (static_cast<int>(task_entries.size()) < local_map_tasks) return false;
    for (const auto& entry : task_entries) {
      if (!entry.done.load(std::memory_order_acquire)) return false;
    }
    return true;
  };

  // An idle slot picks the longest-overdue running task that nobody has
  // backed up yet (elapsed > threshold x mean completed-task time).
  auto pick_straggler = [&]() -> MapTaskEntry* {
    const std::uint64_t done_n = completed_maps.load();
    if (done_n == 0) return nullptr;
    const double mean_s =
        static_cast<double>(completed_us_total.load()) / 1e6 / done_n;
    const double now = job_start.Seconds();
    std::scoped_lock lock(entries_mu);
    for (auto& entry : task_entries) {
      if (entry.done.load(std::memory_order_acquire)) continue;
      if (!IsStraggler(now - entry.started_s, mean_s,
                       cluster_.speculation_threshold)) {
        continue;
      }
      if (entry.speculated.exchange(true)) continue;
      return &entry;
    }
    return nullptr;
  };

  // Runs one task's attempt loop on `node`.  Speculative backups get a
  // single attempt numbered past max_task_attempts (so budgeted faults do
  // not re-fire) and never fail the job — the original attempt still owns
  // recovery.
  auto run_map_attempts = [&](MapTaskEntry* entry, int node,
                              bool speculative) {
    const int task_id = entry->task_id;
    const double begin = job_start.Seconds();
    const int first_attempt =
        speculative ? cluster_.max_task_attempts + 1 : 1;
    for (int attempt = first_attempt;; ++attempt) {
      FaultScope scope(FaultScope::Kind::kMap, task_id, attempt, node);
      std::unique_ptr<MapOutputSink> sink;
      if (options.shuffle == Shuffle::kPush) {
        sink = std::make_unique<PushSink>(task_id, files_, metrics_, endpoint,
                                          num_reducers,
                                          options.push_chunk_bytes);
      } else {
        sink = std::make_unique<FileSink>(
            task_id, files_, metrics_, endpoint, num_reducers,
            options.map_buffer_bytes, cluster_.sync_map_output);
      }
      RuntimeEnv task_env = env;
      task_env.map_node = node;
      MapTask task(task_id, spec, options, task_env, entry->block, sink.get());
      MapTask::Stats stats;
      try {
        stats = task.Run();
      } catch (const ReducerGoneError&) {
        // Already the Table III diagnosis (a dead reducer consumed pushed
        // output); never retryable and never re-wrapped.
        sink->Abandon();
        if (entry->done.load(std::memory_order_acquire)) return;
        if (speculative) return;
        throw;
      } catch (...) {
        // Drop the attempt's buffered output first: once the exception is
        // caught, a later sink destructor would no longer be unwinding, and
        // its cleanup flush must not write — or re-fire the fault hook for —
        // bytes of a dead attempt.
        sink->Abandon();
        if (entry->done.load(std::memory_order_acquire)) return;  // lost race
        if (speculative) return;  // backup failures never fail the job
        if (sink->publishes_eagerly()) {
          // The paper's Table III trade-off, demonstrated: this attempt's
          // output already reached reducers, so re-execution would
          // duplicate records.  Fail fast with the diagnosis.
          std::string why = "unknown error";
          try {
            throw;
          } catch (const std::exception& e) {
            why = e.what();
          } catch (...) {
          }
          throw std::runtime_error(
              "map task " + std::to_string(task_id) +
              " failed under push (pipelined) shuffle and cannot be "
              "re-executed: its output was already pipelined to reducers "
              "before completion, so a retry would duplicate records — the "
              "pipelining / fault-tolerance trade-off of paper Table III. "
              "Re-run with pull shuffle and max_task_attempts > 1 to "
              "recover. Original failure: " +
              why);
        }
        if (attempt >= cluster_.max_task_attempts) throw;
        map_retries.fetch_add(1, std::memory_order_relaxed);
        metrics_->Get("retry.map_task")->Increment();
        RetryBackoff(attempt, static_cast<std::uint64_t>(task_id));
        continue;
      }
      // Success: publish exactly once across rival attempts; the loser's
      // output was never registered and is simply discarded.
      if (!entry->published.exchange(true)) {
        sink->Publish();
        endpoint->MapTaskDone(task_id, stats.input_records,
                              stats.output_records);
        entry->done.store(true, std::memory_order_release);
        const double end = job_start.Seconds();
        const std::uint64_t done_now =
            completed_maps.fetch_add(1, std::memory_order_relaxed) + 1;
        completed_us_total.fetch_add(
            static_cast<std::int64_t>((end - begin) * 1e6),
            std::memory_order_relaxed);
        if (cluster_.sched_hooks != nullptr &&
            cluster_.sched_hooks->on_map_progress) {
          cluster_.sched_hooks->on_map_progress(static_cast<int>(done_now),
                                                num_maps);
        }
        if (speculative) {
          spec_wins.fetch_add(1, std::memory_order_relaxed);
          metrics_->Get("speculation.wins")->Increment();
        }
        input_records.fetch_add(stats.input_records,
                                std::memory_order_relaxed);
        map_output_records.fetch_add(stats.output_records,
                                     std::memory_order_relaxed);
        timeline.Record(TaskKind::kMap, begin, end);
      }
      return;
    }
  };

  // --- Map worker threads: num_nodes × map_slots_per_node slots.
  if (run_maps) {
    std::vector<std::jthread> map_workers;
    const int num_workers =
        cluster_.num_nodes * cluster_.map_slots_per_node;
    map_workers.reserve(num_workers);
    for (int w = 0; w < num_workers; ++w) {
      const int node = w / cluster_.map_slots_per_node;
      map_workers.emplace_back([&, node] {
        try {
          while (!maps_failed.load(std::memory_order_relaxed)) {
            bool was_local = false;
            auto block = scheduler.Next(node, &was_local);
            if (block) {
              // Lease a shared slot per task, after claiming the block:
              // an idle worker never sits on a slot another job could use.
              MapSlotLease lease(cluster_.sched_hooks, node);
              run_map_attempts(register_entry(std::move(*block)), node,
                               /*speculative=*/false);
              continue;
            }
            if (!cluster_.speculative_execution) break;
            if (all_entries_done()) break;
            if (MapTaskEntry* victim = pick_straggler()) {
              MapSlotLease lease(cluster_.sched_hooks, node);
              spec_launched.fetch_add(1, std::memory_order_relaxed);
              metrics_->Get("speculation.launched")->Increment();
              run_map_attempts(victim, node, /*speculative=*/true);
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
          }
        } catch (...) {
          maps_failed.store(true, std::memory_order_relaxed);
          record_failure(std::current_exception());
          shuffle.Abort("map task failed");
        }
      });
    }
    // jthreads join at scope exit.
  }
  if (maps_failed.load()) {
    // Reducers are unwinding via the aborted shuffle; join then rethrow.
  }

  // Map group over a transport: close the connection before joining
  // reducers — Bye on success, Abort so the reduce group unwinds promptly
  // instead of waiting out its idle timeout on failure.
  if (shuffle_client != nullptr) {
    std::string failure_reason;
    {
      std::scoped_lock lock(failure_mu);
      if (first_failure) {
        try {
          std::rethrow_exception(first_failure);
        } catch (const std::exception& e) {
          failure_reason = e.what();
        } catch (...) {
          failure_reason = "unknown error";
        }
      }
    }
    if (failure_reason.empty() && coded_client != nullptr &&
        coded_client->PendingMapDones() > 0) {
      // Every task completed yet some group never flushed: a bookkeeping
      // bug that would otherwise hang the reduce side waiting on MapDones.
      failure_reason = "coded shuffle: map group finished with " +
                       std::to_string(coded_client->PendingMapDones()) +
                       " undelivered MapDone(s)";
      record_failure(
          std::make_exception_ptr(std::runtime_error(failure_reason)));
    }
    if (failure_reason.empty()) {
      shuffle_client->Finish();
    } else {
      shuffle_client->SendAbort(failure_reason);
    }
  }

  reducer_threads.clear();  // join all reducers
  if (reduce_watchdog.joinable()) {
    reduce_watchdog.request_stop();
    reduce_watchdog.join();
  }

  {
    std::scoped_lock lock(failure_mu);
    if (first_failure) std::rethrow_exception(first_failure);
  }

  // Job done: garbage-collect this job's checkpoint files (ROADMAP's
  // multi-job GC).  A shared checkpoint directory only accretes files from
  // jobs that never completed.
  if (run_reducers && checkpoint_enabled) {
    const int swept =
        CheckpointManager::SweepFinishedJobs(env.checkpoint_dir, spec.name);
    metrics_->Get("checkpoint.swept")->Add(swept);
  }

  emissions.Finish();

  // --- Assemble the result ----------------------------------------------------
  JobResult result;
  result.job_name = spec.name;
  result.wall_seconds = job_start.Seconds();
  result.num_map_tasks = num_maps;
  result.num_reduce_tasks = num_reducers;
  result.local_map_tasks = scheduler.local_count();
  result.map_task_retries = map_retries.load();
  result.reduce_task_retries = reduce_retries.load();
  result.speculative_launched = spec_launched.load();
  result.speculative_wins = spec_wins.load();
  result.spec_reduce_launched = spec_reduce_launched.load();
  result.spec_reduce_wins = spec_reduce_wins.load();
  result.reducer_output_records = std::move(per_reducer_records);
  result.input_records = input_records.load();
  result.map_output_records = map_output_records.load();
  result.output_records = output_records.load();
  if (role == WorkerRole::kReduceOnly && shuffle_server != nullptr) {
    // Let the clients' Bye frames land before the counter snapshot below:
    // the reduce tail can finish a few milliseconds before a Bye that rode
    // the data-plane flush timer, and the report would miss the client-side
    // wire counters it carries.
    shuffle_server->WaitClientsFinished(/*timeout_s=*/0.25);
    // Map tasks ran in the peer process; their stats arrived as MapDone
    // frames.
    result.input_records = shuffle_server->map_input_records();
    result.map_output_records = shuffle_server->map_output_records();
  }
  result.first_output_seconds = emissions.first_emit_seconds();
  result.emission_curve = emissions.series().Snapshot();
  result.cpu_seconds = profiler.Snapshot();
  result.total_cpu_seconds = profiler.TotalCpuSeconds();
  result.timeline = timeline.Snapshot();

  const auto counters_after = metrics_->Snapshot();
  for (const auto& [name, value] : counters_after) {
    auto it = counters_before.find(name);
    const std::int64_t before = it == counters_before.end() ? 0 : it->second;
    result.counters[name] = value - before;
  }
  result.faults_injected = result.Bytes("faults.injected");
  result.checkpoints_written = result.Bytes("checkpoint.written");
  result.checkpoints_loaded = result.Bytes("checkpoint.loaded");
  result.checkpoint_bytes = result.Bytes(device::kCheckpointWrite);
  result.replay_records = result.Bytes("recovery.replay_records");
  result.recover_seconds =
      static_cast<double>(result.Bytes("checkpoint.recover_us")) / 1e6;
  result.checkpoints_swept = result.Bytes("checkpoint.swept");
  result.net_bytes_sent = result.Bytes(net::kNetBytesSent);
  result.net_bytes_received = result.Bytes(net::kNetBytesReceived);
  result.net_frames_sent = result.Bytes(net::kNetFramesSent);
  result.net_frames_received = result.Bytes(net::kNetFramesReceived);
  result.net_retransmits = result.Bytes(net::kNetRetransmits);
  result.net_reconnects = result.Bytes(net::kNetReconnects);
  result.net_stall_seconds =
      static_cast<double>(result.Bytes(net::kNetStallNanos)) / 1e9;
  result.shuffle_ack_replays = result.Bytes(kShuffleAckReplays);
  result.shuffle_ack_replayed_frames = result.Bytes(kShuffleAckReplayedFrames);
  result.shuffle_dup_frames = result.Bytes(kShuffleDupFrames);
  result.block_cache_hits = result.Bytes(dataplane::kBlockCacheHits);
  result.block_cache_misses = result.Bytes(dataplane::kBlockCacheMisses);
  result.block_cache_evictions = result.Bytes(dataplane::kBlockCacheEvictions);
  result.spec_reduce_seeded_from_ckpt =
      static_cast<int>(result.Bytes("speculation.reduce_seeded"));
  return result;
}

std::future<JobResult> ClusterExecutor::RunAsync(const JobSpec& spec,
                                                 const JobOptions& options) {
  return std::async(std::launch::async,
                    [this, &spec, &options] { return Run(spec, options); });
}

}  // namespace opmr
