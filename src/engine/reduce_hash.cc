#include "engine/reduce_hash.h"

#include <algorithm>
#include <stdexcept>

#include "engine/state_table.h"

namespace opmr {

namespace {

constexpr int kMaxRecursionLevel = 8;

// ValueIterator over an in-memory value list.
class VectorValueIterator final : public ValueIterator {
 public:
  explicit VectorValueIterator(const std::vector<Slice>& values)
      : values_(values) {}

  bool Next(Slice* value) override {
    if (pos_ >= values_.size()) return false;
    *value = values_[pos_++];
    return true;
  }

 private:
  const std::vector<Slice>& values_;
  std::size_t pos_ = 0;
};

}  // namespace

void ExternalHashAggregate(
    const std::vector<std::filesystem::path>& runs, int level,
    std::size_t memory_budget, const RuntimeEnv& env,
    const std::function<void(Slice key, const std::vector<Slice>& values)>&
        emit_group,
    bool compress) {
  if (level > kMaxRecursionLevel) {
    throw std::runtime_error(
        "ExternalHashAggregate: recursion limit exceeded (pathological key "
        "distribution or tiny memory budget)");
  }
  constexpr int kSubBuckets = 16;
  const HashFamily family(0x5eedf00dULL);

  struct SubBucket {
    HashValueTable table;
    std::unique_ptr<RecordSink> spill;
    std::filesystem::path spill_path;
  };
  std::vector<SubBucket> buckets(kSubBuckets);

  IoChannel spill_read(env.metrics, device::kSpillRead);
  IoChannel spill_write(env.metrics, device::kSpillWrite);

  auto resident_bytes = [&buckets] {
    std::size_t total = 0;
    for (const auto& b : buckets) total += b.table.MemoryBytes();
    return total;
  };
  auto demote_largest = [&] {
    SubBucket* victim = nullptr;
    for (auto& b : buckets) {
      // Never demote single-key buckets: a group that alone exceeds memory
      // cannot be split by rehashing and must be handled in memory.
      if (b.spill == nullptr && b.table.size() > 1 &&
          (victim == nullptr ||
           b.table.MemoryBytes() > victim->table.MemoryBytes())) {
        victim = &b;
      }
    }
    if (victim == nullptr) return false;
    victim->spill_path = env.files->NewFile("hash_spill");
    victim->spill = NewSpillSink(compress, victim->spill_path, spill_write);
    victim->table.ForEach([&](Slice key, const std::vector<Slice>& values) {
      for (const Slice& v : values) victim->spill->Append(key, v);
    });
    victim->table.Clear();
    return true;
  };

  std::uint64_t since_check = 0;
  for (const auto& path : runs) {
    auto reader = OpenSpillRun(compress, path, spill_read);
    while (reader->Next()) {
      const int b = static_cast<int>(family.Hash(level, reader->key()) %
                                     kSubBuckets);
      SubBucket& bucket = buckets[b];
      if (bucket.spill != nullptr) {
        bucket.spill->Append(reader->key(), reader->value());
      } else {
        bucket.table.Add(reader->key(), reader->value());
      }
      if (++since_check >= 64) {
        since_check = 0;
        while (resident_bytes() > memory_budget && demote_largest()) {
        }
      }
    }
  }

  for (auto& bucket : buckets) {
    if (bucket.spill != nullptr) {
      bucket.spill->Close();
      bucket.spill.reset();
      ExternalHashAggregate({bucket.spill_path}, level + 1, memory_budget,
                            env, emit_group, compress);
      std::filesystem::remove(bucket.spill_path);
    } else {
      bucket.table.ForEach(emit_group);
    }
  }
}

HybridHashReducer::HybridHashReducer(int reducer_id, const JobSpec& spec,
                                     const JobOptions& options,
                                     const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine),
      buckets_(kNumBuckets) {
  for (auto& b : buckets_) {
    if (spec_.has_aggregator()) {
      b.states = std::make_unique<StateTable>(spec_.aggregator.get());
    } else {
      b.values = std::make_unique<HashValueTable>();
    }
  }
}

std::size_t HybridHashReducer::ResidentBytes() const {
  std::size_t total = 0;
  for (const auto& b : buckets_) {
    if (b.values != nullptr) total += b.values->MemoryBytes();
    if (b.states != nullptr) total += b.states->MemoryBytes();
  }
  return total;
}

void HybridHashReducer::DemoteLargestBucket() {
  Bucket* victim = nullptr;
  std::size_t victim_bytes = 0;
  for (auto& b : buckets_) {
    if (b.spill != nullptr) continue;
    const std::size_t bytes = b.values != nullptr ? b.values->MemoryBytes()
                                                  : b.states->MemoryBytes();
    const std::size_t keys =
        b.values != nullptr ? b.values->size() : b.states->size();
    if (keys > 1 && bytes > victim_bytes) {
      victim = &b;
      victim_bytes = bytes;
    }
  }
  if (victim == nullptr) return;

  ++spilled_count_;
  victim->spill_path = env_.files->NewFile("hybrid_spill");
  victim->spill = NewSpillSink(
      options_.compress_spills, victim->spill_path,
      IoChannel(env_.metrics, device::kSpillWrite));
  if (victim->values != nullptr) {
    victim->values->ForEach([&](Slice key, const std::vector<Slice>& values) {
      for (const Slice& v : values) {
        victim->spill->Append(key, v);
        ++victim->spill_records;
      }
    });
    victim->values->Clear();
  } else {
    victim->states->ForEach([&](Slice key, const StateTable::Entry& entry) {
      victim->spill->Append(key, entry.state);
      ++victim->spill_records;
    });
    victim->states->Clear();
  }
}

void HybridHashReducer::FoldRecord(Slice key, Slice value) {
  const int b =
      static_cast<int>(family_.Hash(/*member=*/0, key) % kNumBuckets);
  Bucket& bucket = buckets_[b];
  if (bucket.spill != nullptr) {
    if (spec_.has_aggregator() && !values_are_states_) {
      // Keep spill files uniform: with an aggregator, demoted buckets hold
      // states, so lift raw values before appending.
      std::string state;
      spec_.aggregator->Init(value, &state);
      bucket.spill->Append(key, state);
    } else {
      bucket.spill->Append(key, value);
    }
    ++bucket.spill_records;
    return;
  }
  if (bucket.states != nullptr) {
    bucket.states->Fold(key, value, values_are_states_);
  } else {
    bucket.values->Add(key, value);
  }
}

void HybridHashReducer::EmitResidentBucket(Bucket& bucket,
                                           OutputCollector& out) {
  const auto reduce_fn = MakeReduceFn(spec_, values_are_states_);
  if (bucket.states != nullptr) {
    std::string final_value;
    bucket.states->ForEach([&](Slice key, const StateTable::Entry& entry) {
      spec_.aggregator->Finalize(entry.state, &final_value);
      out.Emit(key, final_value);
    });
  } else {
    bucket.values->ForEach([&](Slice key, const std::vector<Slice>& values) {
      VectorValueIterator it(values);
      reduce_fn(key, it, out);
    });
  }
}

void HybridHashReducer::EmitSpilledBucket(Bucket& bucket,
                                          OutputCollector& out) {
  bucket.spill->Close();
  bucket.spill.reset();
  const auto reduce_fn = MakeReduceFn(spec_, values_are_states_);
  const bool agg = spec_.has_aggregator();
  const Aggregator* aggregator = spec_.aggregator.get();
  ExternalHashAggregate(
      {bucket.spill_path}, /*level=*/1, options_.reduce_buffer_bytes, env_,
      [&](Slice key, const std::vector<Slice>& values) {
        if (agg) {
          // Spill files hold states by construction; merge then finalize.
          std::string state(values.front().data(), values.front().size());
          for (std::size_t i = 1; i < values.size(); ++i) {
            aggregator->Merge(&state, values[i]);
          }
          std::string final_value;
          aggregator->Finalize(state, &final_value);
          out.Emit(key, final_value);
        } else {
          VectorValueIterator it(values);
          reduce_fn(key, it, out);
        }
      },
      options_.compress_spills);
  std::filesystem::remove(bucket.spill_path);
}

std::uint64_t HybridHashReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);

  ShuffleItem item;
  std::uint64_t since_check = 0;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    auto stream = OpenShuffleItem(item, shuffle_read);
    PhaseScope cpu(env_.profiler, "hash_group");
    while (stream->Next()) {
      FoldRecord(stream->key(), stream->value());
      if (++since_check >= 64) {
        since_check = 0;
        while (ResidentBytes() > options_.reduce_buffer_bytes) {
          const int before = spilled_count_;
          DemoteLargestBucket();
          if (spilled_count_ == before) break;  // nothing demotable
        }
      }
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  // Blocking emission: hybrid hash only answers after all input arrived.
  const double reduce_begin = env_.job_start->Seconds();
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    for (auto& bucket : buckets_) {
      if (bucket.spill != nullptr) {
        EmitSpilledBucket(bucket, out);
      } else {
        EmitResidentBucket(bucket, out);
      }
    }
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

}  // namespace opmr
