// The Hadoop reducer: collect sorted map-output segments, spill merged runs
// to disk when the buffer fills, background-merge whenever F on-disk runs
// accumulate, multi-pass merge down to F after the last map, and only then
// stream one final merge through the reduce function (paper §II-A).
//
// This path is deliberately blocking: nothing reaches the reduce function
// until the final merge begins.  With snapshots enabled (MapReduce Online)
// the current runs are additionally re-merged at each snapshot point, which
// produces early output at the price of repeated merge I/O (§III-D).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "engine/job.h"
#include "engine/reduce_common.h"

namespace opmr {

class SortMergeReducer {
 public:
  SortMergeReducer(int reducer_id, const JobSpec& spec,
                   const JobOptions& options, const RuntimeEnv& env);

  // Consumes this reducer's shuffle feed to completion and writes the final
  // output; returns the number of records emitted.
  std::uint64_t Run();

  // Observability for tests/benches.
  [[nodiscard]] int merge_passes() const noexcept { return merge_passes_; }
  [[nodiscard]] int snapshots_taken() const noexcept { return snapshots_; }

 private:
  // Merges all in-memory segments into one on-disk run (reduce-side spill),
  // applying the derived combiner when configured — Hadoop applies the
  // combine function "in a reducer when its data buffer fills up" (§II-A),
  // and the paper stresses the data is written out regardless.
  void SpillMemorySegments();

  // Merges the oldest `merge_factor` on-disk runs into one (the background /
  // multi-pass merge).
  void MergeDiskRuns();

  // Runs the reduce function over a merge of everything received so far and
  // writes a snapshot output file (HOP's periodic snapshot mechanism).
  void TakeSnapshot();

  // Builds streams over current disk runs + memory segments.
  [[nodiscard]] std::vector<std::unique_ptr<RecordStream>> OpenAllRuns();

  int reducer_id_;
  const JobSpec& spec_;
  const JobOptions& options_;
  RuntimeEnv env_;
  bool values_are_states_;

  std::vector<std::string> memory_segments_;  // sorted framed-record blobs
  std::size_t memory_bytes_ = 0;
  std::vector<std::filesystem::path> disk_runs_;

  int merge_passes_ = 0;
  int snapshots_ = 0;
  double next_snapshot_at_ = 2.0;  // fraction of maps done; 2.0 = disabled
};

}  // namespace opmr
