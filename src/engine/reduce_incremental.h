// Incremental hash reducers (§V reduce techniques 2 and 3) — the paper's
// primary contribution.
//
// IncrementalHashReducer keeps one aggregator state per key and folds each
// arriving value in immediately; answers can be produced the moment the
// data needed for them has been seen (the early_emit policy), and final
// answers require only a finalize scan — no blocking merge.  When memory is
// short, the whole table is flushed to a run and the runs are re-aggregated
// at the end (states are mergeable by construction).
//
// HotKeyIncrementalReducer adds the frequent-items optimization: a
// Space-Saving sketch identifies hot keys online, exactly those keys keep
// their states pinned in memory, and evicted (cold) states are appended to
// a cold run.  Because state size is sublinear in the number of values
// aggregated, pinning hot keys instead of random keys minimizes spilled
// bytes (§V: "maintaining hot keys instead of random keys in memory results
// in less I/Os"), and hot keys' (approximate) answers are available as soon
// as all input has arrived — before any cold-file pass.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "engine/job.h"
#include "engine/reduce_common.h"
#include "engine/state_table.h"
#include "frequent/space_saving.h"

namespace opmr {

class IncrementalHashReducer {
 public:
  IncrementalHashReducer(int reducer_id, const JobSpec& spec,
                         const JobOptions& options, const RuntimeEnv& env);

  std::uint64_t Run();

  [[nodiscard]] int table_spills() const noexcept { return table_spills_; }
  [[nodiscard]] std::uint64_t early_emits() const noexcept {
    return early_emits_;
  }

 private:
  void SpillTable();

  // Checkpoint plumbing (ckpt_ is null when checkpointing is off).
  // Prepare() resets stale images on a first attempt, or restores the
  // latest checkpoint and rewinds the shuffle feed on a retry; returns the
  // restored watermark (0 = start from scratch).
  std::uint64_t PrepareCheckpoint();
  void RestoreFromImage(const CheckpointImage& image);
  void WriteCheckpoint(std::uint64_t watermark);

  int reducer_id_;
  const JobSpec& spec_;
  const JobOptions& options_;
  RuntimeEnv env_;
  bool values_are_states_;

  StateTable table_;
  std::vector<std::filesystem::path> spill_runs_;
  int table_spills_ = 0;
  std::uint64_t early_emits_ = 0;
  std::uint64_t folded_ = 0;  // fold ordinal for the OnReduceFold fault site

  std::unique_ptr<CheckpointManager> ckpt_;
  std::map<std::uint32_t, std::uint64_t> feed_records_;  // map task -> records
};

class HotKeyIncrementalReducer {
 public:
  HotKeyIncrementalReducer(int reducer_id, const JobSpec& spec,
                           const JobOptions& options, const RuntimeEnv& env);

  std::uint64_t Run();

  [[nodiscard]] std::uint64_t cold_records() const noexcept {
    return cold_records_;
  }
  [[nodiscard]] std::uint64_t hot_folds() const noexcept { return hot_folds_; }

 private:
  // Demotes `key`'s state (if resident) to the cold run.
  void DemoteToCold(Slice key);

  // Enforces the byte budget by demoting the lowest-estimate resident keys.
  void EnforceBudget();

  void EnsureColdWriter();

  int reducer_id_;
  const JobSpec& spec_;
  const JobOptions& options_;
  RuntimeEnv env_;
  bool values_are_states_;

  SpaceSaving sketch_;
  StateTable resident_;
  std::unique_ptr<RecordSink> cold_;
  std::filesystem::path cold_path_;
  std::uint64_t cold_records_ = 0;
  std::uint64_t hot_folds_ = 0;
  std::uint64_t early_emits_ = 0;
};

}  // namespace opmr
