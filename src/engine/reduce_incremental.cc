#include "engine/reduce_incremental.h"

#include <algorithm>
#include <stdexcept>

#include "engine/reduce_hash.h"

namespace opmr {

namespace {

void RequireAggregator(const JobSpec& spec, const char* who) {
  if (!spec.has_aggregator()) {
    throw std::invalid_argument(std::string(who) +
                                " requires an Aggregator (the paper's "
                                "incremental techniques need a combine "
                                "function)");
  }
}

// Merges a list of state slices and emits the finalized value.
void MergeStatesAndEmit(const Aggregator& agg, Slice key,
                        const std::vector<Slice>& states,
                        OutputCollector& out) {
  std::string state(states.front().data(), states.front().size());
  for (std::size_t i = 1; i < states.size(); ++i) {
    agg.Merge(&state, states[i]);
  }
  std::string final_value;
  agg.Finalize(state, &final_value);
  out.Emit(key, final_value);
}

}  // namespace

// --- IncrementalHashReducer --------------------------------------------------

IncrementalHashReducer::IncrementalHashReducer(int reducer_id,
                                               const JobSpec& spec,
                                               const JobOptions& options,
                                               const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine),
      table_((RequireAggregator(spec, "IncrementalHashReducer"),
              spec.aggregator.get())) {}

void IncrementalHashReducer::SpillTable() {
  const double begin = env_.job_start->Seconds();
  const auto path = env_.files->NewFile("incr_spill");
  auto writer = NewSpillSink(options_.compress_spills, path,
                             IoChannel(env_.metrics, device::kSpillWrite));
  table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
    writer->Append(key, entry.state);
  });
  writer->Close();
  table_.Clear();
  spill_runs_.push_back(path);
  ++table_spills_;
  env_.timeline->Record(TaskKind::kMerge, begin, env_.job_start->Seconds());
}

std::uint64_t IncrementalHashReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  std::string early_value;

  ShuffleItem item;
  std::uint64_t since_check = 0;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    auto stream = OpenShuffleItem(item, shuffle_read);
    PhaseScope cpu(env_.profiler, "hash_group");
    while (stream->Next()) {
      StateTable::Entry& entry =
          table_.Fold(stream->key(), stream->value(), values_are_states_);
      if (options_.early_emit && !entry.early_emitted &&
          options_.early_emit(stream->key(), entry.state)) {
        // Incremental processing: the answer leaves the system the moment
        // the data needed to produce it has been read (paper §IV req. 3).
        spec_.aggregator->Finalize(entry.state, &early_value);
        out.Emit(stream->key(), early_value);
        entry.early_emitted = true;
        ++early_emits_;
      }
      if (++since_check >= 64) {
        since_check = 0;
        if (table_.MemoryBytes() > options_.reduce_buffer_bytes) SpillTable();
      }
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  const double reduce_begin = env_.job_start->Seconds();
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    if (spill_runs_.empty()) {
      // Pure in-memory one-pass processing: a finalize scan is all that
      // remains.
      std::string final_value;
      table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &final_value);
        out.Emit(key, final_value);
      });
    } else {
      // Resolve spilled partial states: flush the live table as one more
      // run, then externally re-aggregate.  States merge associatively, so
      // the result is exact.
      if (table_.size() > 0) SpillTable();
      ExternalHashAggregate(
          spill_runs_, /*level=*/0, options_.reduce_buffer_bytes, env_,
          [&](Slice key, const std::vector<Slice>& states) {
            MergeStatesAndEmit(*spec_.aggregator, key, states, out);
          },
          options_.compress_spills);
      for (const auto& path : spill_runs_) std::filesystem::remove(path);
    }
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

// --- HotKeyIncrementalReducer ------------------------------------------------

HotKeyIncrementalReducer::HotKeyIncrementalReducer(int reducer_id,
                                                   const JobSpec& spec,
                                                   const JobOptions& options,
                                                   const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine),
      sketch_(options.hot_key_capacity),
      resident_((RequireAggregator(spec, "HotKeyIncrementalReducer"),
                 spec.aggregator.get())) {}

void HotKeyIncrementalReducer::EnsureColdWriter() {
  if (cold_ == nullptr) {
    cold_path_ = env_.files->NewFile("cold_run");
    cold_ = NewSpillSink(options_.compress_spills, cold_path_,
                         IoChannel(env_.metrics, device::kSpillWrite));
  }
}

void HotKeyIncrementalReducer::DemoteToCold(Slice key) {
  std::string state;
  if (!resident_.Extract(key, &state)) return;
  EnsureColdWriter();
  cold_->Append(key, state);
  ++cold_records_;
}

void HotKeyIncrementalReducer::EnforceBudget() {
  if (resident_.MemoryBytes() <= options_.reduce_buffer_bytes) return;
  // Demote the resident keys the sketch considers coldest until under
  // budget.  Rare: the sketch capacity normally bounds residency first.
  std::vector<std::pair<std::uint64_t, std::string>> by_estimate;
  by_estimate.reserve(resident_.size());
  resident_.ForEach([&](Slice key, const StateTable::Entry&) {
    by_estimate.emplace_back(sketch_.Estimate(key), std::string(key.view()));
  });
  std::sort(by_estimate.begin(), by_estimate.end());
  for (const auto& [estimate, key] : by_estimate) {
    if (resident_.MemoryBytes() <= options_.reduce_buffer_bytes) break;
    DemoteToCold(key);
  }
}

std::uint64_t HotKeyIncrementalReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  std::string early_value;

  ShuffleItem item;
  std::uint64_t since_check = 0;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    auto stream = OpenShuffleItem(item, shuffle_read);
    PhaseScope cpu(env_.profiler, "hash_group");
    while (stream->Next()) {
      const Slice key = stream->key();
      // The sketch sees every arrival; its eviction is the demotion signal —
      // but demotion only matters under memory pressure.  While the table
      // is comfortably inside its budget every state stays resident, so an
      // amply-provisioned run spills nothing at all.
      if (auto victim = sketch_.OfferAndEvict(key); victim.has_value()) {
        if (resident_.MemoryBytes() >
            options_.reduce_buffer_bytes - options_.reduce_buffer_bytes / 4) {
          DemoteToCold(*victim);
        }
      }
      StateTable::Entry& entry =
          resident_.Fold(key, stream->value(), values_are_states_);
      ++hot_folds_;
      if (options_.early_emit && !entry.early_emitted &&
          options_.early_emit(key, entry.state)) {
        spec_.aggregator->Finalize(entry.state, &early_value);
        out.Emit(key, early_value);
        entry.early_emitted = true;
        ++early_emits_;
      }
      if (++since_check >= 64) {
        since_check = 0;
        EnforceBudget();
      }
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  const double reduce_begin = env_.job_start->Seconds();
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    if (cold_ == nullptr) {
      // Everything stayed resident: exact one-pass answers.
      std::string final_value;
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &final_value);
        out.Emit(key, final_value);
      });
    } else {
      // Early (approximate) answers for hot keys, available before any
      // cold-file pass — the paper's "return (approximate) results for
      // these keys as early as when all the input data has arrived".
      ReducerOutput early(env_, spec_.output_file + ".early.part" +
                                    std::to_string(reducer_id_));
      std::string approx_value;
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &approx_value);
        early.Emit(key, approx_value);
      });
      early.Close();

      // Exact phase: fold the resident states into the cold run and
      // re-aggregate everything.
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        cold_->Append(key, entry.state);
      });
      cold_->Close();
      ExternalHashAggregate(
          {cold_path_}, /*level=*/0, options_.reduce_buffer_bytes, env_,
          [&](Slice key, const std::vector<Slice>& states) {
            MergeStatesAndEmit(*spec_.aggregator, key, states, out);
          },
          options_.compress_spills);
      std::filesystem::remove(cold_path_);
    }
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

}  // namespace opmr
