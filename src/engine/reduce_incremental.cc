#include "engine/reduce_incremental.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "engine/reduce_hash.h"
#include "fault/fault.h"

namespace opmr {

namespace {

void RequireAggregator(const JobSpec& spec, const char* who) {
  if (!spec.has_aggregator()) {
    throw std::invalid_argument(std::string(who) +
                                " requires an Aggregator (the paper's "
                                "incremental techniques need a combine "
                                "function)");
  }
}

// Merges a list of state slices and emits the finalized value.
void MergeStatesAndEmit(const Aggregator& agg, Slice key,
                        const std::vector<Slice>& states,
                        OutputCollector& out) {
  std::string state(states.front().data(), states.front().size());
  for (std::size_t i = 1; i < states.size(); ++i) {
    agg.Merge(&state, states[i]);
  }
  std::string final_value;
  agg.Finalize(state, &final_value);
  out.Emit(key, final_value);
}

// Collects emissions into a vector so they can be sorted before reaching
// the real output — checkpointed runs emit in key order, making output
// bytes independent of hash-table iteration order (and therefore identical
// between a clean run and a recovered one).
class BufferingCollector final : public OutputCollector {
 public:
  void Emit(Slice key, Slice value) override {
    rows_.emplace_back(std::string(key.view()), std::string(value.view()));
  }

  void DrainSorted(OutputCollector& out) {
    std::sort(rows_.begin(), rows_.end());
    for (const auto& [key, value] : rows_) out.Emit(key, value);
    rows_.clear();
  }

 private:
  std::vector<std::pair<std::string, std::string>> rows_;
};

}  // namespace

// --- IncrementalHashReducer --------------------------------------------------

IncrementalHashReducer::IncrementalHashReducer(int reducer_id,
                                               const JobSpec& spec,
                                               const JobOptions& options,
                                               const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine),
      table_((RequireAggregator(spec, "IncrementalHashReducer"),
              spec.aggregator.get())) {
  if (options_.checkpoint.enabled) {
    ckpt_ = std::make_unique<CheckpointManager>(
        env_.checkpoint_dir, spec_.name, reducer_id_, options_.checkpoint,
        env_.metrics);
  }
}

std::uint64_t IncrementalHashReducer::PrepareCheckpoint() {
  const FaultScope::Frame& frame = FaultScope::Current();
  if (frame.attempt <= 1) {
    // Fresh execution: stale images of a previous run must never restore.
    ckpt_->Reset();
    return 0;
  }
  std::uint64_t watermark = 0;
  if (auto image = ckpt_->LoadLatest(); image.has_value()) {
    RestoreFromImage(*image);
    watermark = image->watermark;
    if (env_.speculative_attempt && env_.metrics != nullptr) {
      // A speculative backup attempt seeded itself from the primary's
      // newest image instead of re-folding the whole feed.
      env_.metrics->Get("speculation.reduce_seeded")->Increment();
    }
  }
  // No (valid) checkpoint degrades to a full re-execution — feasible for
  // retained-feed shuffles, a structured Table III error otherwise.
  std::string why;
  if (!env_.shuffle->Rewind(reducer_id_, watermark, &why)) {
    throw ReplayError("reduce task " + std::to_string(reducer_id_) +
                      " cannot resume from checkpoint watermark " +
                      std::to_string(watermark) + ": " + why);
  }
  return watermark;
}

void IncrementalHashReducer::RestoreFromImage(const CheckpointImage& image) {
  table_.Clear();
  spill_runs_.clear();
  feed_records_.clear();
  for (const auto& entry : image.entries) {
    table_.Fold(entry.key, entry.state, /*value_is_state=*/true)
        .early_emitted = entry.early_emitted;
  }
  for (const auto& spill : image.spill_files) {
    const std::filesystem::path path(spill.path);
    if (!std::filesystem::exists(path)) {
      throw std::runtime_error("checkpoint manifest references missing "
                               "spill run " +
                               spill.path);
    }
    // Appends made after the checkpoint belong to the failed epoch.
    if (std::filesystem::file_size(path) > spill.committed_bytes) {
      std::filesystem::resize_file(path, spill.committed_bytes);
    }
    spill_runs_.push_back(path);
  }
  table_spills_ = static_cast<int>(spill_runs_.size());
  for (const auto& [feed, records] : image.feeds) feed_records_[feed] = records;
}

void IncrementalHashReducer::WriteCheckpoint(std::uint64_t watermark) {
  PhaseScope cpu(env_.profiler, "checkpoint");
  CheckpointImage image;
  image.watermark = watermark;
  image.feeds.assign(feed_records_.begin(), feed_records_.end());
  for (const auto& path : spill_runs_) {
    image.spill_files.push_back(
        {path.string(), std::filesystem::file_size(path)});
  }
  image.entries.reserve(table_.size());
  table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
    image.entries.push_back(
        {std::string(key.view()), entry.state, entry.early_emitted});
  });
  ckpt_->Write(&image);
  // Acknowledge up to the OLDEST retained checkpoint: any of the retained
  // images can still restore, so the shuffle may release everything its
  // watermark covers.
  if (auto ack = ckpt_->OldestRetainedWatermark(); ack.has_value()) {
    env_.shuffle->Acknowledge(reducer_id_, *ack);
  }
}

void IncrementalHashReducer::SpillTable() {
  const double begin = env_.job_start->Seconds();
  const auto path = env_.files->NewFile("incr_spill");
  auto writer = NewSpillSink(options_.compress_spills, path,
                             IoChannel(env_.metrics, device::kSpillWrite));
  table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
    writer->Append(key, entry.state);
  });
  writer->Close();
  table_.Clear();
  spill_runs_.push_back(path);
  ++table_spills_;
  env_.timeline->Record(TaskKind::kMerge, begin, env_.job_start->Seconds());
}

std::uint64_t IncrementalHashReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);
  std::uint64_t watermark = ckpt_ != nullptr ? PrepareCheckpoint() : 0;
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  std::string early_value;

  ShuffleItem item;
  std::uint64_t since_check = 0;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    auto stream = OpenShuffleItem(item, shuffle_read);
    {
      PhaseScope cpu(env_.profiler, "hash_group");
      while (stream->Next()) {
        if (env_.fault != nullptr) env_.fault->OnReduceFold(++folded_);
        StateTable::Entry& entry =
            table_.Fold(stream->key(), stream->value(), values_are_states_);
        if (options_.early_emit && !entry.early_emitted &&
            options_.early_emit(stream->key(), entry.state)) {
          // Incremental processing: the answer leaves the system the moment
          // the data needed to produce it has been read (paper §IV req. 3).
          spec_.aggregator->Finalize(entry.state, &early_value);
          out.Emit(stream->key(), early_value);
          entry.early_emitted = true;
          ++early_emits_;
        }
        if (++since_check >= 64) {
          since_check = 0;
          if (env_.reduce_preempt != nullptr &&
              env_.reduce_preempt->load(std::memory_order_relaxed)) {
            throw ReducePreempted("reduce task " +
                                  std::to_string(reducer_id_) +
                                  " preempted for a speculative backup");
          }
          if (table_.MemoryBytes() > options_.reduce_buffer_bytes) {
            SpillTable();
          }
        }
      }
    }
    if (ckpt_ != nullptr) {
      // Checkpoints land on item boundaries: the watermark names the last
      // fully-folded consume ordinal, so a restore replays whole items.
      watermark = item.ordinal;
      feed_records_[static_cast<std::uint32_t>(item.map_task)] += item.records;
      ckpt_->OnProgress(item.records, item.size_bytes());
      if (ckpt_->Due()) WriteCheckpoint(watermark);
    }
    if (env_.reduce_preempt != nullptr &&
        env_.reduce_preempt->load(std::memory_order_relaxed)) {
      throw ReducePreempted("reduce task " + std::to_string(reducer_id_) +
                            " preempted for a speculative backup");
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  const double reduce_begin = env_.job_start->Seconds();
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    // Checkpointed runs route emissions through a sort so output bytes do
    // not depend on hash iteration order — a recovered attempt's output is
    // byte-identical to a clean run's.
    BufferingCollector sorted;
    OutputCollector& sink =
        ckpt_ != nullptr ? static_cast<OutputCollector&>(sorted) : out;
    if (spill_runs_.empty()) {
      // Pure in-memory one-pass processing: a finalize scan is all that
      // remains.
      std::string final_value;
      table_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &final_value);
        sink.Emit(key, final_value);
      });
    } else {
      // Resolve spilled partial states: flush the live table as one more
      // run, then externally re-aggregate.  States merge associatively, so
      // the result is exact.
      if (table_.size() > 0) SpillTable();
      ExternalHashAggregate(
          spill_runs_, /*level=*/0, options_.reduce_buffer_bytes, env_,
          [&](Slice key, const std::vector<Slice>& states) {
            MergeStatesAndEmit(*spec_.aggregator, key, states, sink);
          },
          options_.compress_spills);
      for (const auto& path : spill_runs_) std::filesystem::remove(path);
    }
    if (ckpt_ != nullptr) sorted.DrainSorted(out);
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

// --- HotKeyIncrementalReducer ------------------------------------------------

HotKeyIncrementalReducer::HotKeyIncrementalReducer(int reducer_id,
                                                   const JobSpec& spec,
                                                   const JobOptions& options,
                                                   const RuntimeEnv& env)
    : reducer_id_(reducer_id),
      spec_(spec),
      options_(options),
      env_(env),
      values_are_states_(spec.has_aggregator() && options.map_side_combine),
      sketch_(options.hot_key_capacity),
      resident_((RequireAggregator(spec, "HotKeyIncrementalReducer"),
                 spec.aggregator.get())) {}

void HotKeyIncrementalReducer::EnsureColdWriter() {
  if (cold_ == nullptr) {
    cold_path_ = env_.files->NewFile("cold_run");
    cold_ = NewSpillSink(options_.compress_spills, cold_path_,
                         IoChannel(env_.metrics, device::kSpillWrite));
  }
}

void HotKeyIncrementalReducer::DemoteToCold(Slice key) {
  std::string state;
  if (!resident_.Extract(key, &state)) return;
  EnsureColdWriter();
  cold_->Append(key, state);
  ++cold_records_;
}

void HotKeyIncrementalReducer::EnforceBudget() {
  if (resident_.MemoryBytes() <= options_.reduce_buffer_bytes) return;
  // Demote the resident keys the sketch considers coldest until under
  // budget.  Rare: the sketch capacity normally bounds residency first.
  std::vector<std::pair<std::uint64_t, std::string>> by_estimate;
  by_estimate.reserve(resident_.size());
  resident_.ForEach([&](Slice key, const StateTable::Entry&) {
    by_estimate.emplace_back(sketch_.Estimate(key), std::string(key.view()));
  });
  std::sort(by_estimate.begin(), by_estimate.end());
  for (const auto& [estimate, key] : by_estimate) {
    if (resident_.MemoryBytes() <= options_.reduce_buffer_bytes) break;
    DemoteToCold(key);
  }
}

std::uint64_t HotKeyIncrementalReducer::Run() {
  const double shuffle_begin = env_.job_start->Seconds();
  IoChannel shuffle_read(env_.metrics, device::kShuffleRead);
  ReducerOutput out(env_,
                    spec_.output_file + ".part" + std::to_string(reducer_id_));
  std::string early_value;

  ShuffleItem item;
  std::uint64_t since_check = 0;
  while (env_.shuffle->NextItem(reducer_id_, &item)) {
    auto stream = OpenShuffleItem(item, shuffle_read);
    PhaseScope cpu(env_.profiler, "hash_group");
    while (stream->Next()) {
      const Slice key = stream->key();
      // The sketch sees every arrival; its eviction is the demotion signal —
      // but demotion only matters under memory pressure.  While the table
      // is comfortably inside its budget every state stays resident, so an
      // amply-provisioned run spills nothing at all.
      if (auto victim = sketch_.OfferAndEvict(key); victim.has_value()) {
        if (resident_.MemoryBytes() >
            options_.reduce_buffer_bytes - options_.reduce_buffer_bytes / 4) {
          DemoteToCold(*victim);
        }
      }
      StateTable::Entry& entry =
          resident_.Fold(key, stream->value(), values_are_states_);
      ++hot_folds_;
      if (options_.early_emit && !entry.early_emitted &&
          options_.early_emit(key, entry.state)) {
        spec_.aggregator->Finalize(entry.state, &early_value);
        out.Emit(key, early_value);
        entry.early_emitted = true;
        ++early_emits_;
      }
      if (++since_check >= 64) {
        since_check = 0;
        EnforceBudget();
      }
    }
  }
  env_.timeline->Record(TaskKind::kShuffle, shuffle_begin,
                        env_.job_start->Seconds());

  const double reduce_begin = env_.job_start->Seconds();
  {
    PhaseScope cpu(env_.profiler, "reduce_function");
    if (cold_ == nullptr) {
      // Everything stayed resident: exact one-pass answers.
      std::string final_value;
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &final_value);
        out.Emit(key, final_value);
      });
    } else {
      // Early (approximate) answers for hot keys, available before any
      // cold-file pass — the paper's "return (approximate) results for
      // these keys as early as when all the input data has arrived".
      ReducerOutput early(env_, spec_.output_file + ".early.part" +
                                    std::to_string(reducer_id_));
      std::string approx_value;
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        spec_.aggregator->Finalize(entry.state, &approx_value);
        early.Emit(key, approx_value);
      });
      early.Close();

      // Exact phase: fold the resident states into the cold run and
      // re-aggregate everything.
      resident_.ForEach([&](Slice key, const StateTable::Entry& entry) {
        cold_->Append(key, entry.state);
      });
      cold_->Close();
      ExternalHashAggregate(
          {cold_path_}, /*level=*/0, options_.reduce_buffer_bytes, env_,
          [&](Slice key, const std::vector<Slice>& states) {
            MergeStatesAndEmit(*spec_.aggregator, key, states, out);
          },
          options_.compress_spills);
      std::filesystem::remove(cold_path_);
    }
  }
  out.Close();
  env_.timeline->Record(TaskKind::kReduce, reduce_begin,
                        env_.job_start->Seconds());
  return out.records();
}

}  // namespace opmr
