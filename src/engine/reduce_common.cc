#include "engine/reduce_common.h"

#include <stdexcept>

namespace opmr {

namespace {

// The group identity of a key: the whole key, or its grouping prefix.
Slice GroupOf(Slice key, std::size_t group_prefix) {
  if (group_prefix == 0 || key.size() <= group_prefix) return key;
  return {key.data(), group_prefix};
}

// ValueIterator over one group of a sorted stream.  The first value is the
// stream's current record; each subsequent Next() advances the stream and
// stops at a group change (leaving the stream positioned on the next
// group's first record) or at end of stream.
class GroupValueIterator final : public ValueIterator {
 public:
  GroupValueIterator(RecordStream& stream, Slice group_key,
                     std::size_t group_prefix, bool* exhausted,
                     bool* next_group_pending)
      : stream_(stream),
        group_key_(group_key),
        group_prefix_(group_prefix),
        exhausted_(exhausted),
        next_group_pending_(next_group_pending) {}

  bool Next(Slice* value) override {
    if (*next_group_pending_ || *exhausted_) return false;
    if (first_) {
      first_ = false;
      *value = stream_.value();
      return true;
    }
    if (!stream_.Next()) {
      *exhausted_ = true;
      return false;
    }
    if (GroupOf(stream_.key(), group_prefix_) != group_key_) {
      *next_group_pending_ = true;
      return false;
    }
    *value = stream_.value();
    return true;
  }

 private:
  RecordStream& stream_;
  Slice group_key_;
  std::size_t group_prefix_;
  bool* exhausted_;
  bool* next_group_pending_;
  bool first_ = true;
};

}  // namespace

void GroupedApply(RecordStream& stream,
                  const std::function<void(Slice, ValueIterator&)>& fn,
                  std::size_t group_prefix) {
  if (!stream.Next()) return;
  bool exhausted = false;
  while (!exhausted) {
    // Copy the full first key (the reduce key) and derive the group
    // identity; the stream's buffer is reused as the group is drained.
    const std::string key(stream.key().view());
    const Slice group = GroupOf(key, group_prefix);
    bool next_group_pending = false;
    GroupValueIterator values(stream, group, group_prefix, &exhausted,
                              &next_group_pending);
    fn(key, values);
    // Skip whatever part of the group fn did not consume.
    Slice unused;
    while (!exhausted && !next_group_pending && values.Next(&unused)) {
    }
    if (exhausted) break;
    if (!next_group_pending) {
      // Stream ended exactly at the group boundary inside the drain loop.
      break;
    }
  }
}

std::function<void(Slice, ValueIterator&, OutputCollector&)> MakeReduceFn(
    const JobSpec& spec, bool values_are_states) {
  if (spec.reduce) return spec.reduce;
  if (!spec.has_aggregator()) {
    throw std::invalid_argument("JobSpec needs a reduce fn or an aggregator");
  }
  const Aggregator* agg = spec.aggregator.get();
  return [agg, values_are_states](Slice key, ValueIterator& values,
                                  OutputCollector& out) {
    std::string state;
    std::string final_value;
    Slice v;
    bool first = true;
    while (values.Next(&v)) {
      if (values_are_states) {
        if (first) {
          state.assign(v.data(), v.size());
        } else {
          agg->Merge(&state, v);
        }
      } else {
        if (first) {
          agg->Init(v, &state);
        } else {
          agg->Update(&state, v);
        }
      }
      first = false;
    }
    if (!first) {
      agg->Finalize(state, &final_value);
      out.Emit(key, final_value);
    }
  };
}

std::unique_ptr<RecordSink> NewSpillSink(bool compress,
                                         const std::filesystem::path& path,
                                         IoChannel channel) {
  if (compress) return std::make_unique<CompressedRunWriter>(path, channel);
  return std::make_unique<RunWriter>(path, channel);
}

std::unique_ptr<RecordStream> OpenSpillRun(bool compress,
                                           const std::filesystem::path& path,
                                           IoChannel channel) {
  if (compress) return std::make_unique<CompressedRunReader>(path, channel);
  return std::make_unique<RunReader>(path, channel);
}

std::unique_ptr<RecordStream> OpenShuffleItem(const ShuffleItem& item,
                                              IoChannel channel) {
  if (!item.from_file) {
    return std::make_unique<MemoryRunStream>(Slice(item.bytes));
  }
  if (item.cached != nullptr) {
    // Block-cache hit on a replayed retention spill: serve the payload from
    // memory.  The item keeps its retain_spill identity, so acknowledgement
    // bookkeeping is untouched.  `item` outlives the returned stream, which
    // keeps the shared payload alive.
    return std::make_unique<MemoryRunStream>(Slice(*item.cached));
  }
  auto reader = std::make_unique<RunReader>(item.path, channel);
  reader->Restrict(item.segment.offset, item.segment.bytes);
  return reader;
}

}  // namespace opmr
