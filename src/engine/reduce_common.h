// Shared reduce-side plumbing: the runtime environment handed to every
// reducer implementation, the emission log that timestamps incremental
// answers (time-to-first-output is the paper's incremental-processing
// metric, Table III), grouped application of reduce functions over sorted
// streams, and adapters from shuffle items to record streams.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "engine/job.h"
#include "engine/shuffle.h"
#include "fault/fault.h"
#include "metrics/phase_profiler.h"
#include "metrics/timeline.h"
#include "metrics/timeseries.h"
#include "storage/file_manager.h"
#include "storage/compressed_run.h"
#include "storage/merger.h"

namespace opmr {

// Timestamps every emitted answer relative to job start; the cumulative
// emission curve distinguishes batch output ("everything at the end") from
// pipelined output, and is what the Table III bench prints.
class EmissionLog {
 public:
  explicit EmissionLog(const WallTimer* job_start)
      : job_start_(job_start), series_("emitted_records") {}

  void Record(std::uint64_t count = 1) {
    std::scoped_lock lock(mu_);
    const double now = job_start_->Seconds();
    if (total_ == 0) first_emit_s_ = now;
    total_ += count;
    // One curve point per stride keeps the series small at any scale.
    if (total_ - last_logged_ >= stride_ || last_logged_ == 0) {
      series_.Append(now, static_cast<double>(total_));
      last_logged_ = total_;
    }
  }

  void Finish() {
    std::scoped_lock lock(mu_);
    series_.Append(job_start_->Seconds(), static_cast<double>(total_));
  }

  [[nodiscard]] double first_emit_seconds() const {
    std::scoped_lock lock(mu_);
    return first_emit_s_;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::scoped_lock lock(mu_);
    return total_;
  }
  [[nodiscard]] const TimeSeries& series() const { return series_; }

 private:
  const WallTimer* job_start_;
  mutable std::mutex mu_;
  std::uint64_t total_ = 0;
  std::uint64_t last_logged_ = 0;
  std::uint64_t stride_ = 1024;
  double first_emit_s_ = -1.0;
  TimeSeries series_;
};

// Thrown by a checkpointing reduce attempt when the executor's reduce-
// speculation watchdog preempts it in favour of a backup attempt.  The
// backup seeds itself from the newest checkpoint image and replays only
// the un-acknowledged shuffle suffix; a preemption never counts against
// max_task_attempts.
class ReducePreempted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Everything a task needs from the runtime; plain non-owning pointers, all
// services outlive the tasks (owned by ClusterExecutor::Run's scope).
struct RuntimeEnv {
  Dfs* dfs = nullptr;
  FileManager* files = nullptr;
  MetricRegistry* metrics = nullptr;
  PhaseProfiler* profiler = nullptr;
  ShuffleService* shuffle = nullptr;
  TimelineRecorder* timeline = nullptr;
  EmissionLog* emissions = nullptr;
  const WallTimer* job_start = nullptr;
  FaultInjector* fault = nullptr;  // chaos plane; nullptr in clean runs
  // Resolved checkpoint directory (empty when checkpointing is off).
  std::filesystem::path checkpoint_dir;
  // Reduce-speculation plumbing (ClusterOptions::speculative_reduce): the
  // watchdog raises the flag, the reducer throws ReducePreempted at the
  // next record/item boundary, and the backup attempt runs with
  // speculative_attempt set so its checkpoint restore counts as a
  // speculation seed.
  std::atomic<bool>* reduce_preempt = nullptr;
  bool speculative_attempt = false;
  // Logical node a map attempt runs on (-1 outside the cluster executor).
  // MapTask opens its block through the node-aware Dfs::OpenBlock with it,
  // so remote reads are counted — and charged — per DfsOptions.
  int map_node = -1;
};

// Writes one reducer's output into the DFS and logs emission times.
class ReducerOutput final : public OutputCollector {
 public:
  ReducerOutput(const RuntimeEnv& env, const std::string& dfs_file)
      : env_(env), writer_(env.dfs->Create(dfs_file)) {}

  void Emit(Slice key, Slice value) override {
    if (env_.fault != nullptr) env_.fault->OnReduceRecord(records_ + 1);
    frame_.clear();
    AppendU32(frame_, static_cast<std::uint32_t>(key.size()));
    AppendU32(frame_, static_cast<std::uint32_t>(value.size()));
    frame_.append(key.data(), key.size());
    frame_.append(value.data(), value.size());
    writer_->Append(frame_);
    ++records_;
    env_.emissions->Record();
  }

  void Close() {
    if (writer_ != nullptr) {
      writer_->Close();
      writer_.reset();
    }
  }

  [[nodiscard]] std::uint64_t records() const noexcept { return records_; }

 private:
  RuntimeEnv env_;
  std::unique_ptr<DfsFileWriter> writer_;
  std::string frame_;
  std::uint64_t records_ = 0;
};

// Applies `fn(key, values)` to each group of consecutive equal keys in a
// sorted stream.  `fn` need not drain the iterator; remaining values of the
// group are skipped.  With `group_prefix` > 0, keys sharing their first
// `group_prefix` bytes form one group (secondary sort): `fn` receives the
// group's first full key and the values in full-key order.
void GroupedApply(RecordStream& stream,
                  const std::function<void(Slice, ValueIterator&)>& fn,
                  std::size_t group_prefix = 0);

// Builds the effective reduce function: the user's holistic reduce, or the
// aggregator fold (Init/Update over raw values, or assign/Merge over
// combined states) followed by Finalize.
std::function<void(Slice, ValueIterator&, OutputCollector&)> MakeReduceFn(
    const JobSpec& spec, bool values_are_states);

// Opens a ShuffleItem as a RecordStream: pushed chunks stream from memory,
// file segments stream from disk through `channel`.  The returned stream
// borrows `item` (for memory items), which must outlive it.
std::unique_ptr<RecordStream> OpenShuffleItem(const ShuffleItem& item,
                                              IoChannel channel);

// Spill-run factories: plain or OZ-compressed runs behind one interface,
// selected by JobOptions::compress_spills.
std::unique_ptr<RecordSink> NewSpillSink(bool compress,
                                         const std::filesystem::path& path,
                                         IoChannel channel);
std::unique_ptr<RecordStream> OpenSpillRun(bool compress,
                                           const std::filesystem::path& path,
                                           IoChannel channel);

}  // namespace opmr
