// Shuffle: moves map output to reducers.
//
// Pull (Hadoop): map tasks register completed output files; reducers are
// handed segment descriptors and read the bytes themselves — the in-process
// analogue of "reducers periodically poll a centralized service ... and
// request data directly from the completed mappers" (paper §II-A).
//
// Push (MapReduce Online): map tasks push chunks of output eagerly, bounded
// by a per-reducer queue; when the queue is full the mapper diverts the
// chunk to local disk and registers it for pulling — the paper's adaptive
// load-balancing between mappers and reducers (§III-D).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "engine/map_output.h"
#include "metrics/counters.h"
#include "storage/io_stats.h"

namespace opmr {

// One unit of shuffled data for a single reducer: either an in-memory chunk
// that was pushed, or a file segment to fetch.
struct ShuffleItem {
  int map_task = -1;
  bool sorted = false;
  std::uint64_t records = 0;

  // In-memory payload (push path); empty when the item is a file segment.
  std::string bytes;

  // File segment (pull path / diverted push chunks).
  bool from_file = false;
  std::filesystem::path path;
  Segment segment;

  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return from_file ? segment.bytes : bytes.size();
  }
};

class ShuffleService {
 public:
  ShuffleService(int num_map_tasks, int num_reducers, MetricRegistry* metrics,
                 std::size_t push_queue_chunks);

  // --- map side -------------------------------------------------------------

  // Publishes every non-empty partition segment of a completed spill file.
  void RegisterFile(const MapOutputFile& file);

  // Publishes a single diverted segment.
  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment, bool sorted);

  // Attempts to push an in-memory chunk to `reducer`.  Returns false when
  // the reducer's queue is full (back-pressure) — the caller must divert.
  bool TryPush(int reducer, ShuffleItem chunk);

  // Marks a map task complete.  All its output must have been registered or
  // pushed before this call.
  void MapTaskDone(int map_task);

  // --- reduce side ----------------------------------------------------------

  // Blocks until an item is available for `reducer` or the shuffle is
  // complete.  Returns false when all map tasks are done and the reducer
  // has consumed everything.  Charges the shuffle-read channel.
  bool NextItem(int reducer, ShuffleItem* item);

  // Reduce-task re-execution support (pull shuffle only).  With replay
  // enabled, every consumed file item is retained so a failed reduce
  // attempt can Rewind() and re-fetch the published map outputs from the
  // beginning — the Hadoop recovery move the paper contrasts with eager
  // pipelining (Table III).  In-memory pushed chunks are consumed
  // destructively and cannot be replayed; Rewind() throws if one was seen.
  void EnableReplay();
  void Rewind(int reducer);

  // Optional probe invoked (outside the lock) after each successful
  // NextItem, with (reducer, map_task).  The fault plane uses it to inject
  // fetch stalls.  Set before reducer threads start; may sleep.
  void SetFetchProbe(std::function<void(int reducer, int map_task)> probe) {
    fetch_probe_ = std::move(probe);
  }

  // Fraction of map tasks completed (drives HOP snapshot points).
  [[nodiscard]] double MapsDoneFraction() const;

  // Poisons the shuffle after a task failure: all blocked and future
  // NextItem calls throw, so reducer threads unwind instead of waiting for
  // map completions that will never come.
  void Abort(const std::string& reason);

  [[nodiscard]] int num_map_tasks() const noexcept { return num_map_tasks_; }
  [[nodiscard]] int num_reducers() const noexcept { return num_reducers_; }

 private:
  struct ReducerQueue {
    std::deque<ShuffleItem> items;
    std::size_t pushed_outstanding = 0;  // in-memory chunks awaiting consume
    std::vector<ShuffleItem> consumed;   // replay log (file descriptors only)
    bool replay_broken = false;          // a pushed chunk was consumed
  };

  void Enqueue(int reducer, ShuffleItem item);

  const int num_map_tasks_;
  const int num_reducers_;
  const std::size_t push_queue_chunks_;
  IoChannel shuffle_read_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ReducerQueue> queues_;
  int maps_done_ = 0;
  std::string abort_reason_;
  bool aborted_ = false;
  bool replay_ = false;
  std::function<void(int, int)> fetch_probe_;
};

}  // namespace opmr
