// Shuffle: moves map output to reducers.
//
// Pull (Hadoop): map tasks register completed output files; reducers are
// handed segment descriptors and read the bytes themselves — the in-process
// analogue of "reducers periodically poll a centralized service ... and
// request data directly from the completed mappers" (paper §II-A).
//
// Push (MapReduce Online): map tasks push chunks of output eagerly, bounded
// by a per-reducer queue; when the queue is full the mapper diverts the
// chunk to local disk and registers it for pulling — the paper's adaptive
// load-balancing between mappers and reducers (§III-D).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "dataplane/block_cache.h"
#include "engine/map_output.h"
#include "metrics/counters.h"
#include "storage/io_stats.h"

namespace opmr {

// Thrown by a reduce attempt when its shuffle feed cannot be rewound to the
// watermark it needs (e.g. every checkpoint is corrupt and pushed chunks
// below the acknowledgement floor are gone).  Never retryable: another
// attempt would fail the same way.
class ReplayError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Thrown by a push-mode map sink when its target reducer has terminally
// failed: pushed output cannot be recalled, so the job fails fast with the
// Table III diagnostic instead of spinning chunks into a dead queue.
class ReducerGoneError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Outcome of attempting to push one in-memory chunk.
enum class PushResult {
  kAccepted,     // queued for the reducer
  kBusy,         // back-pressure: queue full, caller should divert to disk
  kReducerGone,  // reducer terminally failed (or job aborted): fail fast
};

// One unit of shuffled data for a single reducer: either an in-memory chunk
// that was pushed, or a file segment to fetch.
struct ShuffleItem {
  int map_task = -1;
  bool sorted = false;
  std::uint64_t records = 0;

  // Consume ordinal: 1-based position in the reducer's consumption order,
  // assigned the first time the item is handed out by NextItem (0 =  not
  // yet consumed).  Checkpoint watermarks and Rewind/Acknowledge speak in
  // these ordinals.
  std::uint64_t ordinal = 0;

  // In-memory payload (push path); empty when the item is a file segment.
  std::string bytes;

  // File segment (pull path / diverted push chunks).
  bool from_file = false;
  std::filesystem::path path;
  Segment segment;

  // The file is a retention spill owned by the shuffle (a pushed chunk
  // persisted while awaiting checkpoint acknowledgement); deleted when the
  // item is acknowledged.
  bool retain_spill = false;

  // BlockCache identity of a retention spill (cache_seq != 0 once the spill
  // payload was offered to the cache) and, when a replay found it resident,
  // the payload itself — served instead of re-reading the spill file.
  std::uint64_t cache_seq = 0;
  std::uint32_t cache_crc = 0;
  std::shared_ptr<const std::string> cached;

  [[nodiscard]] std::uint64_t size_bytes() const noexcept {
    return from_file ? segment.bytes : bytes.size();
  }
};

// The map-facing face of the shuffle.  Map sinks talk to this interface
// only, so the same sink code runs against the in-process ShuffleService
// (loopback) or a ShuffleClient that serialises each call onto a Transport
// connection (tcp / multi-process mode).
class ShuffleMapEndpoint {
 public:
  virtual ~ShuffleMapEndpoint() = default;

  // Publishes every non-empty partition segment of a completed spill file.
  virtual void RegisterFile(const MapOutputFile& file) = 0;

  // Publishes a single diverted segment.
  virtual void RegisterSegment(int map_task, const std::filesystem::path& path,
                               int reducer, const Segment& segment,
                               bool sorted) = 0;

  // Attempts to push an in-memory chunk to `reducer`.  kBusy means the
  // reducer's bounded queue is full (back-pressure) — the caller must
  // divert the chunk to disk.  kReducerGone means the reducer terminally
  // failed: the caller should raise ReducerGoneError.
  virtual PushResult TryPush(int reducer, ShuffleItem chunk) = 0;

  // Marks a map task complete, carrying its record counts (the remote
  // endpoint forwards them so the reduce-side process can report map-side
  // stats).  All the task's output must have been registered or pushed
  // before this call.
  virtual void MapTaskDone(int map_task, std::uint64_t input_records,
                           std::uint64_t output_records) = 0;
};

class ShuffleService : public ShuffleMapEndpoint {
 public:
  ShuffleService(int num_map_tasks, int num_reducers, MetricRegistry* metrics,
                 std::size_t push_queue_chunks);

  // --- map side (ShuffleMapEndpoint) ---------------------------------------

  void RegisterFile(const MapOutputFile& file) override;

  void RegisterSegment(int map_task, const std::filesystem::path& path,
                       int reducer, const Segment& segment,
                       bool sorted) override;

  PushResult TryPush(int reducer, ShuffleItem chunk) override;

  void MapTaskDone(int map_task, std::uint64_t input_records,
                   std::uint64_t output_records) override {
    (void)input_records;
    (void)output_records;
    MapTaskDone(map_task);
  }

  // Marks a map task complete.  All its output must have been registered or
  // pushed before this call.
  void MapTaskDone(int map_task);

  // Unbounded push used by the remote shuffle server when applying chunks
  // that a ShuffleClient already admitted against its credit window.  The
  // client-side credit count is authoritative; re-checking the bounded
  // queue here would spuriously reject chunks whose credits were granted
  // before a Rewind re-queued consumed items.
  void ForcePush(int reducer, ShuffleItem chunk);

  // Marks `reducer` terminally failed: subsequent TryPush calls for it
  // return kReducerGone and the gone probe fires (the remote server relays
  // it to mapper processes as a Gone frame).
  void MarkReducerGone(int reducer);

  // --- reduce side ----------------------------------------------------------

  // Blocks until an item is available for `reducer` or the shuffle is
  // complete.  Returns false when all map tasks are done and the reducer
  // has consumed everything.  Charges the shuffle-read channel.
  bool NextItem(int reducer, ShuffleItem* item);

  // Reduce-task re-execution support.  With replay enabled, every consumed
  // file item is retained so a failed reduce attempt can Rewind() and
  // re-fetch the published map outputs from the beginning — the Hadoop
  // recovery move the paper contrasts with eager pipelining (Table III).
  // In-memory pushed chunks are consumed destructively in this mode;
  // Rewind() reports failure if one was seen.
  void EnableReplay();

  // Checkpointed replay: EVERY consumed item — including pushed in-memory
  // chunks — is retained until the consuming reducer's checkpoint covers it
  // (Acknowledge).  Retained payload beyond `retain_budget_bytes` per
  // reducer is spilled to files under `retain_dir`, so pipelining keeps its
  // bounded memory footprint.  This is what makes reduce recovery possible
  // under push shuffle: the Table III trade-off is bought back with bounded
  // retention instead of giving up pipelining.
  void EnableCheckpointReplay(const std::filesystem::path& retain_dir,
                              std::size_t retain_budget_bytes);

  // Attaches a reducer-side block cache (kRetainAll mode only).  Payloads
  // spilled to retention files are offered to the cache keyed by
  // (job, sender, spill-seq, CRC-32C); a later Rewind serves resident
  // payloads from memory instead of re-reading the spill file.  Entries are
  // dropped when their item is acknowledged.  The cache outlives this
  // service (owned by the executor); may be nullptr.
  void SetBlockCache(dataplane::BlockCache* cache, std::string job_name);

  // Releases retained items with ordinal <= `upto` for `reducer`: pushed
  // payloads (and their retention spills) are discarded; file descriptors
  // are kept — they are cheap and allow a full rewind as the last-resort
  // fallback when every checkpoint is lost.  Callers pass the watermark of
  // the OLDEST retained checkpoint, so any retained checkpoint can still
  // be restored.
  void Acknowledge(int reducer, std::uint64_t upto);

  // Re-queues every consumed item with ordinal > `from_ordinal` for
  // `reducer`, in consumption order, and implicitly acknowledges
  // `from_ordinal` (the caller restored a state that covers it).  Returns
  // false — with a Table III-flavoured diagnostic in `*why` — when the feed
  // cannot be reconstructed: replay was never enabled, a pushed chunk was
  // consumed destructively (EnableReplay mode), or pushed payloads at or
  // below `from_ordinal`'s gap were already discarded by acknowledgement.
  [[nodiscard]] bool Rewind(int reducer, std::uint64_t from_ordinal,
                            std::string* why);

  // Optional probe invoked (outside the lock) after each successful
  // NextItem, with (reducer, map_task).  The fault plane uses it to inject
  // fetch stalls.  Set before reducer threads start; may sleep.
  void SetFetchProbe(std::function<void(int reducer, int map_task)> probe) {
    fetch_probe_ = std::move(probe);
  }

  // Optional probe invoked (outside the lock) the FIRST time a pushed
  // in-memory chunk is consumed for `reducer` — replayed items keep their
  // ordinal and do not re-fire.  The remote shuffle server uses it to grant
  // one flow-control credit back to the mapper that owns `map_task`.  Set
  // before threads start.
  void SetChunkConsumedProbe(
      std::function<void(int reducer, int map_task)> probe) {
    chunk_consumed_probe_ = std::move(probe);
  }

  // Optional probe invoked (outside the lock) by MarkReducerGone.
  void SetGoneProbe(std::function<void(int reducer)> probe) {
    gone_probe_ = std::move(probe);
  }

  // Liveness guard for multi-process mode: when > 0, a NextItem call that
  // sees no shuffle activity at all for `seconds` while map tasks are still
  // outstanding throws (the mapper process likely died without an Abort
  // frame).  0 (default) disables the guard — the seed's in-process
  // behaviour, where map worker threads can always be joined.  With
  // per-chunk acks this is a demoted last-resort fallback: the shuffle
  // server calls NoteActivity() for every frame it receives — including
  // duplicates absorbed by the ack watermark — so the guard cannot fire
  // while an ack-window replay is in progress; the coordinator's lease
  // detector is the primary (and much faster) death signal.
  void SetIdleTimeout(double seconds) { idle_timeout_s_ = seconds; }

  // Resets the idle-timeout window.  For shuffle progress that bypasses
  // Enqueue/TryPush — e.g. replayed frames deduplicated away by the remote
  // server's applied-seq watermark, which are proof the mapper is alive
  // even though no new item lands in any queue.
  void NoteActivity();

  // Fraction of map tasks completed (drives HOP snapshot points).
  [[nodiscard]] double MapsDoneFraction() const;

  // Progress probes for the reduce-speculation watchdog: the highest
  // consume ordinal handed to `reducer` so far, and the highest ordinal its
  // checkpoint acknowledgements cover.  AckedOrdinal > 0 means a backup
  // attempt has a checkpoint image to seed from.
  [[nodiscard]] std::uint64_t ConsumedOrdinal(int reducer) const;
  [[nodiscard]] std::uint64_t AckedOrdinal(int reducer) const;

  // Poisons the shuffle after a task failure: all blocked and future
  // NextItem calls throw, so reducer threads unwind instead of waiting for
  // map completions that will never come.
  void Abort(const std::string& reason);

  [[nodiscard]] int num_map_tasks() const noexcept { return num_map_tasks_; }
  [[nodiscard]] int num_reducers() const noexcept { return num_reducers_; }

 private:
  enum class ReplayMode {
    kNone,       // consumed items are gone
    kFileOnly,   // retain file descriptors; pushed chunks break replay
    kRetainAll,  // retain everything until checkpoint acknowledgement
  };

  struct ReducerQueue {
    std::deque<ShuffleItem> items;
    std::size_t pushed_outstanding = 0;  // in-memory chunks awaiting consume
    std::uint64_t next_ordinal = 0;      // last consume ordinal handed out

    // Consumed-but-unacknowledged items, in consumption order.
    std::deque<ShuffleItem> retained;
    // Acknowledged file descriptors (kept: they cost nothing and permit a
    // full-replay fallback), in consumption order.
    std::deque<ShuffleItem> acked_files;
    // Highest ordinal whose pushed payload was discarded; rewinding below
    // this point is impossible.
    std::uint64_t acked_payload_floor = 0;
    // Highest ordinal any acknowledgement has covered (checkpoint
    // watermarks and Rewind's implicit ack).
    std::uint64_t acked_upto = 0;
    // In-memory payload bytes currently held in `retained`.
    std::size_t retained_payload_bytes = 0;

    bool replay_broken = false;  // kFileOnly: a pushed chunk was consumed
    bool gone = false;           // reducer terminally failed
  };

  void Enqueue(int reducer, ShuffleItem item);
  // Ack implementation shared by Acknowledge and Rewind; `mu_` held.
  void AcknowledgeLocked(ReducerQueue* q, std::uint64_t upto);
  // Spills the oldest retained in-memory payloads to `retain_dir_` until
  // the queue is back under the retention budget; `mu_` held.
  void SpillRetainedLocked(ReducerQueue* q);

  const int num_map_tasks_;
  const int num_reducers_;
  const std::size_t push_queue_chunks_;
  IoChannel shuffle_read_;
  IoChannel retain_write_;
  Counter* replay_records_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ReducerQueue> queues_;
  int maps_done_ = 0;
  std::string abort_reason_;
  bool aborted_ = false;
  ReplayMode replay_mode_ = ReplayMode::kNone;
  std::filesystem::path retain_dir_;
  std::size_t retain_budget_bytes_ = 0;
  std::uint64_t retain_file_seq_ = 0;
  dataplane::BlockCache* block_cache_ = nullptr;  // not owned
  std::string block_cache_job_;
  std::function<void(int, int)> fetch_probe_;
  std::function<void(int, int)> chunk_consumed_probe_;
  std::function<void(int)> gone_probe_;
  double idle_timeout_s_ = 0;
  // Bumped (under mu_) by every state change NextItem could be waiting on;
  // the idle-timeout guard watches it to distinguish "slow" from "dead".
  std::uint64_t activity_ = 0;
};

}  // namespace opmr
