#include "engine/shuffle.h"

#include <algorithm>
#include <chrono>
#include <iterator>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "common/crc32c.h"
#include "storage/io.h"

namespace opmr {

ShuffleService::ShuffleService(int num_map_tasks, int num_reducers,
                               MetricRegistry* metrics,
                               std::size_t push_queue_chunks)
    : num_map_tasks_(num_map_tasks),
      num_reducers_(num_reducers),
      push_queue_chunks_(push_queue_chunks),
      shuffle_read_(metrics, device::kShuffleRead),
      retain_write_(metrics, device::kRetainWrite),
      replay_records_(metrics != nullptr
                          ? metrics->Get("recovery.replay_records")
                          : nullptr),
      queues_(num_reducers) {
  if (num_reducers <= 0) {
    throw std::invalid_argument("ShuffleService: need at least one reducer");
  }
}

void ShuffleService::Enqueue(int reducer, ShuffleItem item) {
  {
    std::scoped_lock lock(mu_);
    queues_.at(reducer).items.push_back(std::move(item));
    ++activity_;
  }
  cv_.notify_all();
}

void ShuffleService::RegisterFile(const MapOutputFile& file) {
  for (int r = 0; r < static_cast<int>(file.partitions.size()); ++r) {
    const Segment& seg = file.partitions[r];
    if (seg.bytes == 0) continue;
    ShuffleItem item;
    item.map_task = file.map_task;
    item.sorted = file.sorted;
    item.records = seg.records;
    item.from_file = true;
    item.path = file.path;
    item.segment = seg;
    Enqueue(r, std::move(item));
  }
}

void ShuffleService::RegisterSegment(int map_task,
                                     const std::filesystem::path& path,
                                     int reducer, const Segment& segment,
                                     bool sorted) {
  if (segment.bytes == 0) return;
  ShuffleItem item;
  item.map_task = map_task;
  item.sorted = sorted;
  item.records = segment.records;
  item.from_file = true;
  item.path = path;
  item.segment = segment;
  Enqueue(reducer, std::move(item));
}

PushResult ShuffleService::TryPush(int reducer, ShuffleItem chunk) {
  {
    std::scoped_lock lock(mu_);
    ReducerQueue& q = queues_.at(reducer);
    if (q.gone) return PushResult::kReducerGone;
    if (q.pushed_outstanding >= push_queue_chunks_) return PushResult::kBusy;
    ++q.pushed_outstanding;
    q.items.push_back(std::move(chunk));
    ++activity_;
  }
  cv_.notify_all();
  return PushResult::kAccepted;
}

void ShuffleService::ForcePush(int reducer, ShuffleItem chunk) {
  {
    std::scoped_lock lock(mu_);
    ReducerQueue& q = queues_.at(reducer);
    ++q.pushed_outstanding;
    q.items.push_back(std::move(chunk));
    ++activity_;
  }
  cv_.notify_all();
}

void ShuffleService::MarkReducerGone(int reducer) {
  {
    std::scoped_lock lock(mu_);
    queues_.at(reducer).gone = true;
    ++activity_;
  }
  cv_.notify_all();
  if (gone_probe_) gone_probe_(reducer);
}

void ShuffleService::MapTaskDone(int /*map_task*/) {
  {
    std::scoped_lock lock(mu_);
    ++maps_done_;
    if (maps_done_ > num_map_tasks_) {
      throw std::logic_error("ShuffleService: more completions than tasks");
    }
    ++activity_;
  }
  cv_.notify_all();
}

void ShuffleService::NoteActivity() {
  {
    std::scoped_lock lock(mu_);
    ++activity_;
  }
  cv_.notify_all();
}

void ShuffleService::Abort(const std::string& reason) {
  {
    std::scoped_lock lock(mu_);
    aborted_ = true;
    abort_reason_ = reason;
    ++activity_;
  }
  cv_.notify_all();
}

bool ShuffleService::NextItem(int reducer, ShuffleItem* item) {
  std::unique_lock lock(mu_);
  ReducerQueue& q = queues_.at(reducer);
  const auto ready = [&] {
    return aborted_ || !q.items.empty() || maps_done_ == num_map_tasks_;
  };
  if (idle_timeout_s_ <= 0) {
    cv_.wait(lock, ready);
  } else {
    // Deadline-based: a wakeup alone proves nothing (NextItem notifies
    // consumers without touching activity_) — only a full quiet window with
    // no activity counts as the mapper process being gone.
    const auto window =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(idle_timeout_s_));
    auto deadline = std::chrono::steady_clock::now() + window;
    while (!ready()) {
      const std::uint64_t before = activity_;
      const auto status = cv_.wait_until(lock, deadline);
      if (activity_ != before) {
        deadline = std::chrono::steady_clock::now() + window;
        continue;
      }
      if (status == std::cv_status::timeout && !ready()) {
        throw std::runtime_error(
            "shuffle idle timeout: no activity for " +
            std::to_string(idle_timeout_s_) + "s with " +
            std::to_string(maps_done_) + "/" +
            std::to_string(num_map_tasks_) +
            " map task(s) done (mapper process lost?)");
      }
    }
  }
  if (aborted_) {
    throw std::runtime_error("shuffle aborted: " + abort_reason_);
  }
  if (q.items.empty()) return false;
  *item = std::move(q.items.front());
  q.items.pop_front();
  const bool first_consume = item->ordinal == 0;
  if (first_consume) item->ordinal = ++q.next_ordinal;
  if (!item->from_file) {
    --q.pushed_outstanding;
    // A pushed chunk crosses the (simulated) network when consumed.
    shuffle_read_.Add(static_cast<std::int64_t>(item->bytes.size()));
  }
  switch (replay_mode_) {
    case ReplayMode::kNone:
      break;
    case ReplayMode::kFileOnly:
      if (!item->from_file) {
        q.replay_broken = true;
      } else {
        // File items are cheap descriptors (no payload); retaining them
        // lets a failed reduce attempt re-fetch the feed from the start.
        q.retained.push_back(*item);
      }
      break;
    case ReplayMode::kRetainAll:
      q.retained.push_back(*item);
      if (!item->from_file) {
        q.retained_payload_bytes += item->bytes.size();
        SpillRetainedLocked(&q);
      }
      break;
  }
  lock.unlock();
  cv_.notify_all();
  if (chunk_consumed_probe_ && first_consume && !item->from_file) {
    chunk_consumed_probe_(reducer, item->map_task);
  }
  if (fetch_probe_ && item->map_task >= 0) {
    fetch_probe_(reducer, item->map_task);
  }
  return true;
}

void ShuffleService::EnableReplay() {
  std::scoped_lock lock(mu_);
  replay_mode_ = ReplayMode::kFileOnly;
}

void ShuffleService::EnableCheckpointReplay(
    const std::filesystem::path& retain_dir, std::size_t retain_budget_bytes) {
  std::scoped_lock lock(mu_);
  replay_mode_ = ReplayMode::kRetainAll;
  retain_dir_ = retain_dir;
  retain_budget_bytes_ = retain_budget_bytes;
  std::filesystem::create_directories(retain_dir_);
}

void ShuffleService::SetBlockCache(dataplane::BlockCache* cache,
                                   std::string job_name) {
  std::scoped_lock lock(mu_);
  block_cache_ = cache;
  block_cache_job_ = std::move(job_name);
}

void ShuffleService::SpillRetainedLocked(ReducerQueue* q) {
  while (q->retained_payload_bytes > retain_budget_bytes_) {
    auto it = std::find_if(q->retained.begin(), q->retained.end(),
                           [](const ShuffleItem& i) { return !i.from_file; });
    if (it == q->retained.end()) break;
    const auto path =
        retain_dir_ / ("retain_" + std::to_string(++retain_file_seq_) + ".seg");
    auto payload =
        std::make_shared<const std::string>(std::move(it->bytes));
    SequentialWriter writer(path, retain_write_);
    writer.Append(*payload);
    writer.Close();
    q->retained_payload_bytes -= payload->size();
    it->segment = Segment{0, payload->size(), it->records};
    it->bytes.clear();
    it->bytes.shrink_to_fit();
    it->from_file = true;
    it->path = path;
    it->retain_spill = true;
    if (block_cache_ != nullptr) {
      // Offer the spilled payload to the block cache so a checkpoint-restart
      // replay can serve it without touching the spill file.
      it->cache_seq = retain_file_seq_;
      it->cache_crc = Crc32c(payload->data(), payload->size());
      block_cache_->Insert(
          dataplane::BlockCacheKey{block_cache_job_, it->map_task,
                                   it->cache_seq, it->cache_crc},
          std::move(payload));
    }
  }
}

void ShuffleService::AcknowledgeLocked(ReducerQueue* q, std::uint64_t upto) {
  q->acked_upto = std::max(q->acked_upto, upto);
  while (!q->retained.empty() && q->retained.front().ordinal <= upto) {
    ShuffleItem& item = q->retained.front();
    if (item.retain_spill) {
      std::error_code ec;
      std::filesystem::remove(item.path, ec);
      if (block_cache_ != nullptr && item.cache_seq != 0) {
        block_cache_->Erase(dataplane::BlockCacheKey{
            block_cache_job_, item.map_task, item.cache_seq, item.cache_crc});
      }
      q->acked_payload_floor = std::max(q->acked_payload_floor, item.ordinal);
    } else if (!item.from_file) {
      q->retained_payload_bytes -= item.bytes.size();
      q->acked_payload_floor = std::max(q->acked_payload_floor, item.ordinal);
    } else {
      q->acked_files.push_back(std::move(item));
    }
    q->retained.pop_front();
  }
}

void ShuffleService::Acknowledge(int reducer, std::uint64_t upto) {
  std::scoped_lock lock(mu_);
  AcknowledgeLocked(&queues_.at(reducer), upto);
}

bool ShuffleService::Rewind(int reducer, std::uint64_t from_ordinal,
                            std::string* why) {
  std::unique_lock lock(mu_);
  ReducerQueue& q = queues_.at(reducer);
  if (replay_mode_ == ReplayMode::kNone) {
    *why =
        "shuffle replay is not enabled (single-attempt job without "
        "checkpointing)";
    return false;
  }
  if (replay_mode_ == ReplayMode::kFileOnly && q.replay_broken) {
    *why =
        "cannot replay a pushed (pipelined) shuffle feed: in-memory chunks "
        "are consumed destructively, so a re-executed reduce attempt would "
        "lose records — the pipelining / fault-tolerance trade-off of paper "
        "Table III. Use pull shuffle, or enable checkpointing so pushed "
        "chunks are retained until a checkpoint covers them.";
    return false;
  }
  if (from_ordinal < q.acked_payload_floor) {
    *why = "cannot replay the shuffle feed from ordinal " +
           std::to_string(from_ordinal) + ": pushed chunks up to ordinal " +
           std::to_string(q.acked_payload_floor) +
           " were discarded after checkpoint acknowledgement and no valid "
           "checkpoint covers them (paper Table III: pipelined output "
           "cannot be recalled once released)";
    return false;
  }
  // The caller restored a state that covers everything <= from_ordinal;
  // that is an acknowledgement.
  AcknowledgeLocked(&q, from_ordinal);
  // Rebuild the suffix in consumption order: acknowledged file descriptors
  // first (their ordinals precede every retained one), then the retained
  // window.
  std::deque<ShuffleItem> replay;
  for (auto it = q.acked_files.begin(); it != q.acked_files.end();) {
    if (it->ordinal > from_ordinal) {
      replay.push_back(std::move(*it));
      it = q.acked_files.erase(it);
    } else {
      ++it;
    }
  }
  for (ShuffleItem& item : q.retained) replay.push_back(std::move(item));
  q.retained.clear();
  std::uint64_t replayed_records = 0;
  for (ShuffleItem& item : replay) {
    replayed_records += item.records;
    if (!item.from_file) {
      ++q.pushed_outstanding;
      q.retained_payload_bytes -= item.bytes.size();
    } else if (block_cache_ != nullptr && item.retain_spill &&
               item.cache_seq != 0) {
      // Serve the replayed spill from the block cache when resident; the
      // item stays a retain_spill so acknowledgement bookkeeping (file
      // removal, payload floor) is unchanged.
      item.cached = block_cache_->Lookup(dataplane::BlockCacheKey{
          block_cache_job_, item.map_task, item.cache_seq, item.cache_crc});
    }
  }
  q.items.insert(q.items.begin(), std::make_move_iterator(replay.begin()),
                 std::make_move_iterator(replay.end()));
  if (replay_records_ != nullptr) {
    replay_records_->Add(static_cast<std::int64_t>(replayed_records));
  }
  ++activity_;
  lock.unlock();
  cv_.notify_all();
  return true;
}

std::uint64_t ShuffleService::ConsumedOrdinal(int reducer) const {
  std::scoped_lock lock(mu_);
  return queues_.at(reducer).next_ordinal;
}

std::uint64_t ShuffleService::AckedOrdinal(int reducer) const {
  std::scoped_lock lock(mu_);
  return queues_.at(reducer).acked_upto;
}

double ShuffleService::MapsDoneFraction() const {
  std::scoped_lock lock(mu_);
  return num_map_tasks_ == 0
             ? 1.0
             : static_cast<double>(maps_done_) / num_map_tasks_;
}

}  // namespace opmr
