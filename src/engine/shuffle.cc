#include "engine/shuffle.h"

#include <stdexcept>

namespace opmr {

ShuffleService::ShuffleService(int num_map_tasks, int num_reducers,
                               MetricRegistry* metrics,
                               std::size_t push_queue_chunks)
    : num_map_tasks_(num_map_tasks),
      num_reducers_(num_reducers),
      push_queue_chunks_(push_queue_chunks),
      shuffle_read_(metrics, device::kShuffleRead),
      queues_(num_reducers) {
  if (num_reducers <= 0) {
    throw std::invalid_argument("ShuffleService: need at least one reducer");
  }
}

void ShuffleService::Enqueue(int reducer, ShuffleItem item) {
  {
    std::scoped_lock lock(mu_);
    queues_.at(reducer).items.push_back(std::move(item));
  }
  cv_.notify_all();
}

void ShuffleService::RegisterFile(const MapOutputFile& file) {
  for (int r = 0; r < static_cast<int>(file.partitions.size()); ++r) {
    const Segment& seg = file.partitions[r];
    if (seg.bytes == 0) continue;
    ShuffleItem item;
    item.map_task = file.map_task;
    item.sorted = file.sorted;
    item.records = seg.records;
    item.from_file = true;
    item.path = file.path;
    item.segment = seg;
    Enqueue(r, std::move(item));
  }
}

void ShuffleService::RegisterSegment(int map_task,
                                     const std::filesystem::path& path,
                                     int reducer, const Segment& segment,
                                     bool sorted) {
  if (segment.bytes == 0) return;
  ShuffleItem item;
  item.map_task = map_task;
  item.sorted = sorted;
  item.records = segment.records;
  item.from_file = true;
  item.path = path;
  item.segment = segment;
  Enqueue(reducer, std::move(item));
}

bool ShuffleService::TryPush(int reducer, ShuffleItem chunk) {
  {
    std::scoped_lock lock(mu_);
    ReducerQueue& q = queues_.at(reducer);
    if (q.pushed_outstanding >= push_queue_chunks_) return false;
    ++q.pushed_outstanding;
    q.items.push_back(std::move(chunk));
  }
  cv_.notify_all();
  return true;
}

void ShuffleService::MapTaskDone(int /*map_task*/) {
  {
    std::scoped_lock lock(mu_);
    ++maps_done_;
    if (maps_done_ > num_map_tasks_) {
      throw std::logic_error("ShuffleService: more completions than tasks");
    }
  }
  cv_.notify_all();
}

void ShuffleService::Abort(const std::string& reason) {
  {
    std::scoped_lock lock(mu_);
    aborted_ = true;
    abort_reason_ = reason;
  }
  cv_.notify_all();
}

bool ShuffleService::NextItem(int reducer, ShuffleItem* item) {
  std::unique_lock lock(mu_);
  ReducerQueue& q = queues_.at(reducer);
  cv_.wait(lock, [&] {
    return aborted_ || !q.items.empty() || maps_done_ == num_map_tasks_;
  });
  if (aborted_) {
    throw std::runtime_error("shuffle aborted: " + abort_reason_);
  }
  if (q.items.empty()) return false;
  *item = std::move(q.items.front());
  q.items.pop_front();
  if (!item->from_file) {
    --q.pushed_outstanding;
    // A pushed chunk crosses the (simulated) network when consumed.
    shuffle_read_.Add(static_cast<std::int64_t>(item->bytes.size()));
    if (replay_) q.replay_broken = true;
  } else if (replay_) {
    // File items are cheap descriptors (no payload); retaining them lets a
    // failed reduce attempt re-fetch the shuffle feed from the start.
    q.consumed.push_back(*item);
  }
  lock.unlock();
  cv_.notify_all();
  if (fetch_probe_ && item->map_task >= 0) {
    fetch_probe_(reducer, item->map_task);
  }
  return true;
}

void ShuffleService::EnableReplay() {
  std::scoped_lock lock(mu_);
  replay_ = true;
}

void ShuffleService::Rewind(int reducer) {
  {
    std::scoped_lock lock(mu_);
    if (!replay_) {
      throw std::logic_error("ShuffleService: Rewind without EnableReplay");
    }
    ReducerQueue& q = queues_.at(reducer);
    if (q.replay_broken) {
      throw std::logic_error(
          "ShuffleService: cannot replay a pushed (pipelined) feed — reduce "
          "re-execution requires pull shuffle");
    }
    q.items.insert(q.items.begin(), q.consumed.begin(), q.consumed.end());
    q.consumed.clear();
  }
  cv_.notify_all();
}

double ShuffleService::MapsDoneFraction() const {
  std::scoped_lock lock(mu_);
  return num_map_tasks_ == 0
             ? 1.0
             : static_cast<double>(maps_done_) / num_map_tasks_;
}

}  // namespace opmr
