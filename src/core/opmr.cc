#include "core/opmr.h"

#include <filesystem>
#include <random>
#include <stdexcept>

#include "storage/record_stream.h"

namespace opmr {

JobOptions HadoopOptions() {
  JobOptions options;
  options.group_by = GroupBy::kSortMerge;
  options.shuffle = Shuffle::kPull;
  options.map_side_combine = true;
  return options;
}

JobOptions MapReduceOnlineOptions() {
  JobOptions options;
  options.group_by = GroupBy::kSortMerge;
  options.shuffle = Shuffle::kPush;
  options.map_side_combine = true;
  options.snapshot_interval = 0.25;
  return options;
}

JobOptions HashOnePassOptions() {
  JobOptions options;
  options.group_by = GroupBy::kHash;
  options.shuffle = Shuffle::kPush;
  options.hash_reduce = HashReduce::kIncremental;
  options.map_side_combine = true;
  return options;
}

JobOptions HotKeyOnePassOptions(std::size_t hot_key_capacity) {
  JobOptions options = HashOnePassOptions();
  options.hash_reduce = HashReduce::kHotKeyIncremental;
  options.hot_key_capacity = hot_key_capacity;
  return options;
}

JobOptions CheckpointedOnePassOptions(std::uint64_t interval_records,
                                      int retain) {
  JobOptions options = HashOnePassOptions();
  options.checkpoint.enabled = true;
  options.checkpoint.interval_records = interval_records;
  options.checkpoint.retain = retain;
  return options;
}

Platform::Platform(PlatformOptions options) {
  if (options.workspace.empty()) {
    std::random_device rd;
    const auto dir = std::filesystem::temp_directory_path() /
                     ("opmr-" + std::to_string(rd()) + std::to_string(rd()));
    files_ = std::make_unique<FileManager>(dir);
  } else {
    files_ = std::make_unique<FileManager>(options.workspace);
  }
  metrics_ = std::make_unique<MetricRegistry>();

  DfsOptions dfs_options;
  dfs_options.num_nodes = options.num_nodes;
  dfs_options.block_bytes = options.block_bytes;
  dfs_options.replication = options.replication;
  dfs_options.placement_skew = options.placement_skew;
  dfs_options.remote_read_penalty_us = options.remote_read_penalty_us;
  dfs_ = std::make_unique<Dfs>(files_.get(), metrics_.get(), dfs_options);

  ClusterOptions cluster;
  cluster.num_nodes = options.num_nodes;
  cluster.map_slots_per_node = options.map_slots_per_node;
  cluster.max_task_attempts = options.max_task_attempts;
  cluster.retry_backoff_base_ms = options.retry_backoff_base_ms;
  cluster.retry_backoff_max_ms = options.retry_backoff_max_ms;
  cluster.speculative_execution = options.speculative_execution;
  cluster.speculation_threshold = options.speculation_threshold;
  cluster.speculative_reduce = options.speculative_reduce;
  cluster.reduce_speculation_threshold = options.reduce_speculation_threshold;
  cluster.block_cache_bytes = options.block_cache_bytes;
  executor_ = std::make_unique<ClusterExecutor>(dfs_.get(), files_.get(),
                                                metrics_.get(), cluster);
  if (!options.fault_plan.empty()) {
    SetFaultPlan(FaultPlan::Load(options.fault_plan));
  }
}

void Platform::SetFaultPlan(FaultPlan plan) {
  if (plan.empty()) {
    injector_.reset();
    executor_->set_fault_injector(nullptr);
    return;
  }
  injector_ = std::make_unique<FaultInjector>(std::move(plan), metrics_.get());
  executor_->set_fault_injector(injector_.get());
}

JobResult Platform::Run(const JobSpec& spec, const JobOptions& options) {
  return executor_->Run(spec, options);
}

namespace {
// Restores the executor's direct in-process configuration however the run
// exits.
class RoleGuard {
 public:
  RoleGuard(ClusterExecutor* executor, WorkerRole role,
            net::Transport* transport, double idle_timeout_s, bool shared_fs)
      : executor_(executor) {
    executor_->set_worker_role(role);
    executor_->set_shuffle_transport(transport);
    executor_->set_shuffle_idle_timeout(idle_timeout_s);
    executor_->set_shuffle_shared_fs(shared_fs);
  }
  ~RoleGuard() {
    executor_->set_worker_role(WorkerRole::kAll);
    executor_->set_shuffle_transport(nullptr);
    executor_->set_shuffle_idle_timeout(0.0);
    executor_->set_shuffle_shared_fs(true);
  }
  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  ClusterExecutor* executor_;
};
}  // namespace

JobResult Platform::RunWithTransport(const JobSpec& spec,
                                     const JobOptions& options,
                                     net::Transport* transport,
                                     bool shared_fs) {
  RoleGuard guard(executor_.get(), WorkerRole::kAll, transport, 0.0,
                  shared_fs);
  return executor_->Run(spec, options);
}

JobResult Platform::RunMapGroup(const JobSpec& spec, const JobOptions& options,
                                net::Transport* transport, bool shared_fs) {
  RoleGuard guard(executor_.get(), WorkerRole::kMapOnly, transport, 0.0,
                  shared_fs);
  return executor_->Run(spec, options);
}

JobResult Platform::RunReduceGroup(const JobSpec& spec,
                                   const JobOptions& options,
                                   net::Transport* transport,
                                   double idle_timeout_s) {
  RoleGuard guard(executor_.get(), WorkerRole::kReduceOnly, transport,
                  idle_timeout_s, /*shared_fs=*/true);
  return executor_->Run(spec, options);
}

std::vector<std::pair<std::string, std::string>> Platform::ReadOutputFile(
    const std::string& name) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& block : dfs_->ListBlocks(name)) {
    auto reader = dfs_->OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      MemoryRunStream frames(record);
      while (frames.Next()) {
        out.emplace_back(frames.key().ToString(), frames.value().ToString());
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> Platform::ReadOutput(
    const std::string& output_prefix, int num_reducers) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (int r = 0; r < num_reducers; ++r) {
    const std::string part = output_prefix + ".part" + std::to_string(r);
    if (!dfs_->Exists(part)) continue;
    auto rows = ReadOutputFile(part);
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

}  // namespace opmr
