// OPMR public API — the one-pass analytics platform facade.
//
// A Platform owns the substrate (workspace, metrics, mini-DFS, executor);
// users load data, build a JobSpec (map + reduce/aggregator), pick a
// runtime preset, and Run.
//
//   opmr::Platform platform({.num_nodes = 4});
//   opmr::GenerateClickStream(platform.dfs(), "clicks", {...});
//   auto spec = opmr::PageFrequencyJob("clicks", "freq", 4);
//   auto result = platform.Run(spec, opmr::HashOnePassOptions());
//
// Presets mirror the paper's three systems (Table III):
//   HadoopOptions()         — sort-merge, pull shuffle, batch output.
//   MapReduceOnlineOptions()— sort-merge, push shuffle, periodic snapshots.
//   HashOnePassOptions()    — hash group-by, push shuffle, incremental.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dfs/dfs.h"
#include "engine/cluster.h"
#include "engine/job.h"
#include "fault/fault.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"

namespace opmr {

struct PlatformOptions {
  int num_nodes = 4;
  int map_slots_per_node = 2;
  std::uint64_t block_bytes = 4ull << 20;  // laptop-scale default block
  int replication = 1;
  // Skewed block placement + remote-read cost (see DfsOptions); defaults
  // keep the seed's uniform, cost-free layout.
  double placement_skew = 0.0;
  std::uint64_t remote_read_penalty_us = 0;
  // Task re-execution attempts (pull shuffle only; see ClusterOptions).
  int max_task_attempts = 1;
  // Retry pacing and straggler backup attempts (see ClusterOptions).
  double retry_backoff_base_ms = 5.0;
  double retry_backoff_max_ms = 250.0;
  bool speculative_execution = false;
  double speculation_threshold = 2.0;
  // Checkpoint-seeded speculative reduce attempts (see ClusterOptions);
  // requires a checkpointing runtime (CheckpointedOnePassOptions).
  bool speculative_reduce = false;
  double reduce_speculation_threshold = 2.0;
  // Chaos plane: FaultPlan spec string or plan-file path (see
  // FaultPlan::Load); empty = no injection.
  std::string fault_plan;
  std::string workspace;  // empty → unique temp directory
  // --- Data plane -----------------------------------------------------------
  // SO_SNDBUF/SO_RCVBUF for shuffle sockets (tcp and epoll transports);
  // 0 keeps the kernel default.  Plumbed into the transport options by the
  // CLI's --sock-buf-bytes; recorded here so embedders share one knob.
  int sock_buf_bytes = 0;
  // Reducer-side block cache capacity (see ClusterOptions); 0 disables.
  std::size_t block_cache_bytes = 64u << 20;
};

// --- Runtime presets ---------------------------------------------------------

// Stock Hadoop as benchmarked in §III.
JobOptions HadoopOptions();

// MapReduce Online (HOP): pipelined push shuffle + snapshots every 25 %.
JobOptions MapReduceOnlineOptions();

// The paper's proposed hash-based one-pass runtime (§V): hash group-by,
// push shuffle, incremental per-key states.
JobOptions HashOnePassOptions();

// Hash runtime with the frequent-algorithm hot-key optimization for
// memory-constrained runs (§V reduce technique 3).
JobOptions HotKeyOnePassOptions(std::size_t hot_key_capacity = 1u << 12);

// Hash runtime with periodic reducer checkpoints: keeps the pipelined push
// shuffle AND tolerates reduce failures (the combination Table III says the
// compared systems lack) by restoring reducer state from the latest image
// and replaying only the un-acknowledged shuffle suffix.
JobOptions CheckpointedOnePassOptions(std::uint64_t interval_records = 4096,
                                      int retain = 2);

class Platform {
 public:
  explicit Platform(PlatformOptions options = {});

  [[nodiscard]] Dfs& dfs() noexcept { return *dfs_; }
  [[nodiscard]] MetricRegistry& metrics() noexcept { return *metrics_; }
  [[nodiscard]] FileManager& files() noexcept { return *files_; }

  // Direct executor access for cluster-mode configuration (worker
  // identity, map partition, coordination wiring) that the RunXxx
  // wrappers below do not cover.
  [[nodiscard]] ClusterExecutor& executor() noexcept { return *executor_; }

  // Runs a job under the given runtime options.
  JobResult Run(const JobSpec& spec, const JobOptions& options);

  // --- Split worker groups (src/net) ---------------------------------------
  // Runs both halves in this process but routes the shuffle over
  // `transport` (loopback for parity testing, a self-dialing TCP server
  // transport for socket testing).  The transport serves exactly one run
  // and is shut down before returning.
  // `shared_fs` false makes the map side ship segment bytes inline
  // (SegmentData frames) instead of path descriptors, as a remote-host
  // deployment would.
  JobResult RunWithTransport(const JobSpec& spec, const JobOptions& options,
                             net::Transport* transport, bool shared_fs = true);

  // Runs only the map worker group: map output, instead of reaching local
  // reducers, is pushed/registered across `transport` to a peer process
  // running RunReduceGroup.  The returned result carries map-side stats.
  JobResult RunMapGroup(const JobSpec& spec, const JobOptions& options,
                        net::Transport* transport, bool shared_fs = true);

  // Runs only the reduce worker group, serving shuffle frames from the
  // peer's map group.  `idle_timeout_s` > 0 aborts the job when the wire
  // goes silent with map tasks outstanding (mapper process death).
  JobResult RunReduceGroup(const JobSpec& spec, const JobOptions& options,
                           net::Transport* transport,
                           double idle_timeout_s = 0.0);

  // Installs (replaces) the chaos-plane fault plan for subsequent runs; an
  // empty plan clears injection.  Also reachable declaratively through
  // PlatformOptions::fault_plan.
  void SetFaultPlan(FaultPlan plan);

  // The active injector, or nullptr when no plan is installed.
  [[nodiscard]] FaultInjector* fault_injector() noexcept {
    return injector_.get();
  }

  // Reads a job's output back as (key, value) string pairs, across all
  // reducer parts of `output_prefix` (unordered across parts).
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> ReadOutput(
      const std::string& output_prefix, int num_reducers) const;

  // Reads one DFS output file of framed records.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> ReadOutputFile(
      const std::string& name) const;

 private:
  std::unique_ptr<FileManager> files_;
  std::unique_ptr<MetricRegistry> metrics_;
  std::unique_ptr<Dfs> dfs_;
  std::unique_ptr<ClusterExecutor> executor_;
  std::unique_ptr<FaultInjector> injector_;
};

}  // namespace opmr
