// Mini distributed file system (the HDFS stand-in).
//
// Files are split into fixed-size blocks (64 MB by default, as in the
// paper's cluster configuration).  Each block is placed on `replication`
// logical nodes; one physical copy is kept on local disk and the replica
// node list is metadata the block-level scheduler uses for locality, which
// is all HDFS contributes to the behaviours the paper measures (block task
// granularity + locality-aware scheduling + input/output I/O traffic).
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/slice.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"
#include "storage/io.h"

namespace opmr {

struct BlockInfo {
  std::uint64_t block_id = 0;
  std::string file;               // owning DFS file name
  std::uint64_t offset = 0;       // offset of the block within the file
  std::uint64_t length = 0;       // bytes in this block
  std::vector<int> replica_nodes; // nodes holding a (logical) replica
  std::filesystem::path path;     // physical location of the block data
};

struct DfsOptions {
  std::uint64_t block_bytes = 64ull << 20;  // HDFS default in the paper
  int replication = 1;                      // the paper turned 3 down to 1
  int num_nodes = 10;                       // paper: 10 compute nodes
  std::uint64_t placement_seed = 42;
  // Block-placement skew: 0 keeps the seed's uniform spread; theta > 0
  // draws each block's first replica from a Zipf(theta) over node rank
  // (low-numbered nodes hoard blocks — the hot-rack layout the placement
  // bench stresses).  Remaining replicas stay uniform distinct.
  double placement_skew = 0.0;
  // Cost of opening a block from a node that holds no replica, charged by
  // the node-aware OpenBlock overload (microseconds of sleep per open).
  // 0 keeps remote reads free, the seed behaviour.
  std::uint64_t remote_read_penalty_us = 0;
};

class Dfs;

// Streams a file into the DFS, cutting blocks at record boundaries: Append()
// never splits one record across blocks (Hadoop achieves the same effect
// with input-split line alignment; cutting at record boundaries keeps the
// reproduction simple without changing any measured behaviour).
class DfsFileWriter {
 public:
  ~DfsFileWriter();

  DfsFileWriter(const DfsFileWriter&) = delete;
  DfsFileWriter& operator=(const DfsFileWriter&) = delete;

  // Appends one record (opaque bytes; the engine's record readers re-frame
  // them).  Records are length-prefixed in the block payload.
  void Append(Slice record);

  // Finishes the file and publishes its block list; returns total bytes.
  std::uint64_t Close();

 private:
  friend class Dfs;
  DfsFileWriter(Dfs* dfs, std::string name);
  void StartBlock();
  void FinishBlock();

  Dfs* dfs_;
  std::string name_;
  std::vector<BlockInfo> blocks_;
  std::unique_ptr<SequentialWriter> current_;
  std::uint64_t current_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool closed_ = false;
};

// Iterates the records of one block.
class DfsBlockReader {
 public:
  DfsBlockReader(const BlockInfo& block, IoChannel channel);

  // False at end of block.  The returned slice is valid until the next call.
  bool Next(Slice* record);

 private:
  SequentialReader reader_;
  std::vector<char> buffer_;
};

class Dfs {
 public:
  Dfs(FileManager* files, MetricRegistry* metrics, DfsOptions options = {});

  // Creates a new file; throws if the name already exists.
  [[nodiscard]] std::unique_ptr<DfsFileWriter> Create(const std::string& name);

  [[nodiscard]] std::vector<BlockInfo> ListBlocks(const std::string& name) const;
  [[nodiscard]] bool Exists(const std::string& name) const;
  [[nodiscard]] std::uint64_t FileBytes(const std::string& name) const;

  [[nodiscard]] std::unique_ptr<DfsBlockReader> OpenBlock(
      const BlockInfo& block) const;

  // Node-aware open (the placement plane's residence query made honest):
  // when `reader_node` >= 0 and holds no replica of `block`, the open
  // counts as a remote read ("dfs.remote_block_reads") and pays
  // remote_read_penalty_us before returning; a replica holder counts
  // under "dfs.local_block_reads" and pays nothing.  reader_node < 0 is
  // the legacy node-blind open above.
  [[nodiscard]] std::unique_ptr<DfsBlockReader> OpenBlock(
      const BlockInfo& block, int reader_node) const;

  [[nodiscard]] const DfsOptions& options() const noexcept { return options_; }
  [[nodiscard]] MetricRegistry* metrics() const noexcept { return metrics_; }

  // Channel used for job-output writes back into the DFS.
  [[nodiscard]] IoChannel WriteChannel() const {
    return {metrics_, device::kDfsWrite};
  }
  [[nodiscard]] IoChannel ReadChannel() const {
    return {metrics_, device::kDfsRead};
  }

 private:
  friend class DfsFileWriter;

  // Chooses `replication` distinct nodes for a new block.
  std::vector<int> PlaceBlock();

  void Publish(const std::string& name, std::vector<BlockInfo> blocks,
               std::uint64_t total_bytes);

  FileManager* files_;
  MetricRegistry* metrics_;
  DfsOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<BlockInfo>> namespace_;
  std::map<std::string, std::uint64_t> file_bytes_;
  std::uint64_t next_block_id_ = 0;
  Rng placement_rng_;
};

}  // namespace opmr
