#include "dfs/dfs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

namespace opmr {

Dfs::Dfs(FileManager* files, MetricRegistry* metrics, DfsOptions options)
    : files_(files),
      metrics_(metrics),
      options_(options),
      placement_rng_(options.placement_seed) {
  if (options_.num_nodes <= 0) {
    throw std::invalid_argument("Dfs: num_nodes must be positive");
  }
  if (options_.replication <= 0 || options_.replication > options_.num_nodes) {
    throw std::invalid_argument("Dfs: replication out of range");
  }
}

std::unique_ptr<DfsFileWriter> Dfs::Create(const std::string& name) {
  {
    std::scoped_lock lock(mu_);
    if (namespace_.count(name) != 0) {
      throw std::runtime_error("Dfs: file exists: " + name);
    }
  }
  return std::unique_ptr<DfsFileWriter>(new DfsFileWriter(this, name));
}

std::vector<BlockInfo> Dfs::ListBlocks(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = namespace_.find(name);
  if (it == namespace_.end()) {
    throw std::runtime_error("Dfs: no such file: " + name);
  }
  return it->second;
}

bool Dfs::Exists(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return namespace_.count(name) != 0;
}

std::uint64_t Dfs::FileBytes(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = file_bytes_.find(name);
  if (it == file_bytes_.end()) {
    throw std::runtime_error("Dfs: no such file: " + name);
  }
  return it->second;
}

std::unique_ptr<DfsBlockReader> Dfs::OpenBlock(const BlockInfo& block) const {
  return std::make_unique<DfsBlockReader>(block, ReadChannel());
}

std::unique_ptr<DfsBlockReader> Dfs::OpenBlock(const BlockInfo& block,
                                               int reader_node) const {
  if (reader_node >= 0) {
    const bool local =
        std::find(block.replica_nodes.begin(), block.replica_nodes.end(),
                  reader_node) != block.replica_nodes.end();
    if (local) {
      metrics_->Get("dfs.local_block_reads")->Increment();
    } else {
      metrics_->Get("dfs.remote_block_reads")->Increment();
      if (options_.remote_read_penalty_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.remote_read_penalty_us));
      }
    }
  }
  return OpenBlock(block);
}

std::vector<int> Dfs::PlaceBlock() {
  // Random distinct nodes; with replication 1 this is a uniform spread that
  // matches HDFS's default placement closely enough for locality stats.
  // With placement_skew > 0 the first replica is Zipf-weighted toward
  // low-numbered nodes instead.  Concurrent reducers each drive their own
  // writer, so the shared placement RNG needs the namespace lock.
  std::scoped_lock lock(mu_);
  std::vector<int> nodes;
  nodes.reserve(options_.replication);
  if (options_.placement_skew > 0.0) {
    // Inverse-CDF draw over w_i = 1/(i+1)^theta, seeded by the shared RNG
    // so layouts stay reproducible per placement_seed.
    double total = 0.0;
    for (int i = 0; i < options_.num_nodes; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1),
                              options_.placement_skew);
    }
    double u = placement_rng_.NextDouble() * total;
    int first = options_.num_nodes - 1;
    for (int i = 0; i < options_.num_nodes; ++i) {
      u -= 1.0 / std::pow(static_cast<double>(i + 1), options_.placement_skew);
      if (u <= 0.0) {
        first = i;
        break;
      }
    }
    nodes.push_back(first);
  }
  while (static_cast<int>(nodes.size()) < options_.replication) {
    const int n = static_cast<int>(placement_rng_.Uniform(options_.num_nodes));
    if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
      nodes.push_back(n);
    }
  }
  return nodes;
}

void Dfs::Publish(const std::string& name, std::vector<BlockInfo> blocks,
                  std::uint64_t total_bytes) {
  std::scoped_lock lock(mu_);
  namespace_[name] = std::move(blocks);
  file_bytes_[name] = total_bytes;
}

DfsFileWriter::DfsFileWriter(Dfs* dfs, std::string name)
    : dfs_(dfs), name_(std::move(name)) {}

DfsFileWriter::~DfsFileWriter() {
  // An abandoned writer (destroyed without Close()) must NOT publish: a
  // failed task attempt's partial output would become visible in the
  // namespace and collide with the re-execution's Create().  The physical
  // block bytes stay on disk until the workspace is cleaned up.
  if (closed_) return;
  closed_ = true;
  try {
    if (current_ != nullptr) current_->Close();
  } catch (...) {
    // Swallow: flushing a partial block may fail; the file is discarded
    // anyway.
  }
}

void DfsFileWriter::StartBlock() {
  BlockInfo block;
  {
    std::scoped_lock lock(dfs_->mu_);
    block.block_id = dfs_->next_block_id_++;
  }
  block.file = name_;
  block.offset = total_bytes_;
  block.replica_nodes = dfs_->PlaceBlock();
  block.path = dfs_->files_->NewFile("dfs_block");
  blocks_.push_back(block);
  current_ = std::make_unique<SequentialWriter>(
      block.path, dfs_->WriteChannel(), 1 << 16);
  current_bytes_ = 0;
}

void DfsFileWriter::FinishBlock() {
  if (current_ == nullptr) return;
  current_->Close();
  blocks_.back().length = current_bytes_;
  current_.reset();
}

void DfsFileWriter::Append(Slice record) {
  if (closed_) throw std::logic_error("DfsFileWriter: append after close");
  const std::uint64_t framed = 4ull + record.size();
  if (current_ == nullptr ||
      current_bytes_ + framed > dfs_->options_.block_bytes) {
    FinishBlock();
    StartBlock();
  }
  current_->AppendU32(static_cast<std::uint32_t>(record.size()));
  current_->Append(record);
  current_bytes_ += framed;
  total_bytes_ += framed;
}

std::uint64_t DfsFileWriter::Close() {
  if (closed_) return total_bytes_;
  FinishBlock();
  closed_ = true;
  dfs_->Publish(name_, std::move(blocks_), total_bytes_);
  return total_bytes_;
}

DfsBlockReader::DfsBlockReader(const BlockInfo& block, IoChannel channel)
    : reader_(block.path, channel, 1 << 16) {}

bool DfsBlockReader::Next(Slice* record) {
  std::uint32_t len = 0;
  if (!reader_.ReadU32(&len)) return false;
  buffer_.resize(len);
  if (len > 0 && !reader_.ReadExact(buffer_.data(), len)) {
    throw std::runtime_error("DfsBlockReader: truncated record");
  }
  *record = Slice(buffer_.data(), len);
  return true;
}

}  // namespace opmr
