// Job spool: the text format `opmr_cli serve` drains job submissions from.
//
// One job per file (or per blank-line-separated block on stdin), `key=value`
// lines with '#' comments:
//
//   # clickstream frequency count, socket shuffle
//   workload=page_frequency
//   runtime=checkpoint
//   transport=tcp
//   records=200000
//   reducers=4
//
// The spool layer is deliberately independent of src/workloads: it parses
// names and numbers only; the CLI maps workload/runtime names onto job
// specs and presets.  Unknown keys are rejected loudly — a typo in a spool
// file must not silently run a default job.
#pragma once

#include <cstdint>
#include <filesystem>
#include <istream>
#include <string>
#include <vector>

namespace opmr::sched {

struct SpoolSpec {
  std::string id;
  std::string workload = "per_user_count";  // any `opmr_cli run` workload
  std::string runtime = "checkpoint";    // CLI runtime preset name
  std::string transport = "direct";      // direct | loopback | tcp
  std::uint64_t records = 100000;
  int reducers = 4;
  std::size_t memory_bytes = 0;  // 0 = derive from the runtime options
  bool speculative_reduce = false;
  std::uint64_t checkpoint_interval = 4096;
  int checkpoint_retain = 2;
  std::string pool;  // fair-share pool name; "" charges the root
};

// Parses one spool block.  Throws std::invalid_argument on unknown keys or
// malformed values, naming the offending line.
SpoolSpec ParseSpoolSpec(const std::string& id, std::istream& in);

// Loads one `<id>.job` spool file (id = file stem).
SpoolSpec LoadSpoolFile(const std::filesystem::path& path);

// Drains every `*.job` file from `dir` in name order, renaming each to
// `*.job.done` so a long-running serve loop never re-admits a job.
std::vector<SpoolSpec> DrainSpoolDir(const std::filesystem::path& dir);

}  // namespace opmr::sched
