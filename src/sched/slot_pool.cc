#include "sched/slot_pool.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace opmr::sched {

SlotPool::SlotPool(int map_slots, int reduce_slots,
                   std::size_t memory_budget_bytes, SchedPolicy policy)
    : policy_(policy),
      capacity_{map_slots, reduce_slots},
      free_{map_slots, reduce_slots},
      memory_free_(memory_budget_bytes) {
  if (map_slots < 1 || reduce_slots < 1) {
    throw std::invalid_argument("SlotPool: need at least one slot per kind");
  }
}

SlotPool::JobState& SlotPool::StateLocked(int job) {
  auto [it, inserted] = jobs_.try_emplace(job);
  if (inserted) it->second.seq = next_seq_++;
  return it->second;
}

void SlotPool::SetPoolTree(placement::PoolTree* tree) {
  std::scoped_lock lock(mu_);
  tree_ = tree;
}

void SlotPool::RegisterJob(int job, std::int64_t remaining_ops) {
  std::scoped_lock lock(mu_);
  StateLocked(job).remaining_ops = remaining_ops;
}

void SlotPool::UnregisterJob(int job) {
  {
    std::scoped_lock lock(mu_);
    jobs_.erase(job);
  }
  cv_.notify_all();
}

void SlotPool::ReportProgress(int job, std::int64_t remaining_ops) {
  {
    std::scoped_lock lock(mu_);
    StateLocked(job).remaining_ops = remaining_ops;
  }
  // Remaining-work ranks changed; blocked kSrw waiters must re-evaluate.
  cv_.notify_all();
}

bool SlotPool::RanksBefore(const JobState& a,
                           const JobState& b) const noexcept {
  switch (policy_) {
    case SchedPolicy::kFifo:
      break;
    case SchedPolicy::kFair:
      if (a.held != b.held) return a.held < b.held;
      break;
    case SchedPolicy::kSrw:
      if (a.remaining_ops != b.remaining_ops) {
        return a.remaining_ops < b.remaining_ops;
      }
      break;
  }
  return a.seq < b.seq;
}

int SlotPool::BestWaiterLocked(SlotKind kind) const {
  const int k = static_cast<int>(kind);
  if (tree_ != nullptr) {
    std::vector<placement::PoolTree::Waiter> waiters;
    for (const auto& [id, state] : jobs_) {
      if (state.waiting[k] == 0) continue;
      waiters.push_back({id, state.seq});
    }
    return tree_->Pick(waiters);
  }
  int best = -1;
  const JobState* best_state = nullptr;
  for (const auto& [id, state] : jobs_) {
    if (state.waiting[k] == 0) continue;
    if (best_state == nullptr || RanksBefore(state, *best_state)) {
      best = id;
      best_state = &state;
    }
  }
  return best;
}

void SlotPool::Acquire(int job, SlotKind kind) {
  const int k = static_cast<int>(kind);
  std::unique_lock lock(mu_);
  StateLocked(job).waiting[k] += 1;
  const auto ready = [&] {
    return free_[k] > 0 && BestWaiterLocked(kind) == job;
  };
  if (!ready()) {
    ++stats_.waits;
    const auto begin = std::chrono::steady_clock::now();
    cv_.wait(lock, ready);
    stats_.wait_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
  }
  JobState& state = StateLocked(job);
  state.waiting[k] -= 1;
  state.held += 1;
  free_[k] -= 1;
  if (tree_ != nullptr) tree_->OnGrant(job);
  const int in_use = capacity_[k] - free_[k];
  if (kind == SlotKind::kMap) {
    ++stats_.map_grants;
    stats_.peak_map_in_use = std::max(stats_.peak_map_in_use, in_use);
  } else {
    ++stats_.reduce_grants;
    stats_.peak_reduce_in_use = std::max(stats_.peak_reduce_in_use, in_use);
  }
  lock.unlock();
  // A grant changes the kFair ranking (this job now holds one more slot),
  // so other waiters re-evaluate who is next.
  cv_.notify_all();
}

void SlotPool::Release(int job, SlotKind kind) {
  const int k = static_cast<int>(kind);
  {
    std::scoped_lock lock(mu_);
    free_[k] += 1;
    if (auto it = jobs_.find(job); it != jobs_.end()) it->second.held -= 1;
    if (tree_ != nullptr) tree_->OnRelease(job);
  }
  cv_.notify_all();
}

bool SlotPool::TryReserveMemory(std::size_t bytes) {
  std::scoped_lock lock(mu_);
  if (bytes > memory_free_) return false;
  memory_free_ -= bytes;
  return true;
}

void SlotPool::ReleaseMemory(std::size_t bytes) {
  {
    std::scoped_lock lock(mu_);
    memory_free_ += bytes;
  }
  cv_.notify_all();
}

SlotPool::Stats SlotPool::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace opmr::sched
