// JobScheduler: admits many MapReduce jobs concurrently onto one shared
// slot pool (map slots + reduce slots + a memory budget), leasing slots to
// per-job ClusterExecutors at operation granularity through SchedHooks.
//
// Admission is FIFO and gated twice: a queue cap (Submit past it throws
// AdmissionError) and the memory budget (a job waits in the queue until
// its reducer-memory estimate fits).  Once admitted, a job runs on its own
// thread with its own MetricRegistry — JobResult counters stay per-job
// even with N jobs interleaved — while the configured SchedPolicy decides
// which job's tasks win contended slots.  DFS device counters, by
// contrast, land in the platform registry the Dfs was built with and are
// not attributed per job.
//
// Jobs submitted here never install fault injectors: the chaos plane's
// I/O hook is process-global and concurrent jobs would race on it.  The
// scheduler-visible slow-node signal (FaultInjector::SlowNodeDelayMs) is
// consumed inside single-job runs instead.
//
// Per-job shuffle transports are built in-process: kLoopback wraps the
// run in a LoopbackTransport, kTcp binds a TcpTransport and self-dials it
// (real localhost sockets, no fork — forking a process with this many
// live threads is not survivable).
#pragma once

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "coord/registry.h"
#include "dfs/dfs.h"
#include "engine/cluster.h"
#include "engine/job.h"
#include "metrics/stopwatch.h"
#include "net/transport.h"
#include "placement/placement.h"
#include "placement/pool_tree.h"
#include "sched/policy.h"
#include "sched/slot_pool.h"
#include "storage/file_manager.h"

namespace opmr::sched {

class AdmissionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct SchedulerOptions {
  int map_slots = 8;
  int reduce_slots = 8;
  std::size_t memory_budget_bytes = 256ull << 20;
  SchedPolicy policy = SchedPolicy::kFifo;
  int max_queued = 64;     // Submit past this many waiting jobs is rejected
  int max_concurrent = 4;  // jobs running at once
  // Per-job cluster shape (every executor sees the same node count the
  // shared Dfs was built with).
  int num_nodes = 4;
  int map_slots_per_node = 2;
  // Registry-driven placement gate (src/coord; not owned, must outlive
  // the scheduler): when set, the queue head is dispatched only while the
  // registry holds at least one live map worker AND one live reduce
  // worker.  A membership gap holds jobs in the queue — counted in
  // SchedulerStats::placement_deferrals, with the missing role split out
  // in no_map_worker_deferrals / no_reduce_worker_deferrals — instead of
  // letting them fail at shuffle-connect time.  Frontend (serve-plane)
  // registrations are NOT slots: a registry of only frontends still
  // defers placement.
  coord::WorkerRegistry* registry = nullptr;
  // Operation-level placement plane (src/placement).  kEngine keeps the
  // seed behaviour (each executor's built-in local-first order, no plane);
  // the other modes build one shared PlacementPlane that plans every
  // admitted job's map operations against the registry's locality / load /
  // health view, seed-deterministically.
  placement::PlacementMode placement_mode = placement::PlacementMode::kEngine;
  std::uint64_t placement_seed = 42;
  // Hierarchical fair-share pools (src/placement).  Empty = no pool tree:
  // the SchedPolicy alone orders contended slots.  Non-empty builds a
  // PoolTree; jobs name their pool in JobRequest::pool, contended slots go
  // to the tree's usage/weight pick, and a pool at its max_running_jobs
  // quota holds its next job in the queue (quota_deferrals).
  std::vector<placement::PoolConfig> pools;
};

enum class JobTransport {
  kDirect,    // in-process shuffle calls (the seed's zero-overhead path)
  kLoopback,  // framed RPC over the in-process loopback transport
  kTcp,       // framed RPC over real localhost sockets (self-dialed)
};

struct JobRequest {
  std::string id;
  JobSpec spec;
  JobOptions options;
  JobTransport transport = JobTransport::kDirect;
  // Memory-budget admission charge; 0 derives reduce_buffer_bytes x
  // num_reducers from `options`/`spec`.
  std::size_t memory_bytes = 0;
  // Checkpoint-seeded speculative reduce attempts (see ClusterOptions).
  bool speculative_reduce = false;
  double reduce_speculation_threshold = 2.0;
  // Fair-share pool this job charges (SchedulerOptions::pools).  Empty
  // charges the root; a name that is not in the tree is rejected at
  // Submit.
  std::string pool;
};

struct JobReport {
  int handle = -1;
  std::string id;
  bool failed = false;
  std::string error;
  JobResult result;
  // All on the scheduler clock (seconds since construction).
  double submitted_s = 0.0;
  double started_s = 0.0;
  double finished_s = 0.0;

  [[nodiscard]] double queue_wait_s() const { return started_s - submitted_s; }
};

struct SchedulerStats {
  int submitted = 0;
  int completed = 0;
  int failed = 0;
  int peak_concurrent = 0;
  double makespan_s = 0.0;  // first submission -> last completion
  // Dispatch episodes where a ready job was held back, with the reason
  // split out below: placement_deferrals is the total of the three.
  std::int64_t placement_deferrals = 0;
  std::int64_t no_map_worker_deferrals = 0;     // registry: no live map group
  std::int64_t no_reduce_worker_deferrals = 0;  // registry: no live reducers
  std::int64_t quota_deferrals = 0;             // pool at max_running_jobs
  // Of the registry deferrals, episodes where the registry DID hold live
  // frontend replicas: serve-plane workers are read-only and hold no job
  // slots, so they never satisfy the placement gate — heavy read traffic
  // cannot perturb placement (the OS4M operation-level separation).
  std::int64_t frontend_only_deferrals = 0;
  // Placement-plane activity (all zero with placement_mode == kEngine).
  placement::PlacementPlane::Stats placement;
  // Per-pool usage, root first (empty without a pool tree).
  std::vector<placement::PoolTree::PoolStats> pools;
  SlotPool::Stats slots;
};

class JobScheduler {
 public:
  JobScheduler(Dfs* dfs, FileManager* files, SchedulerOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  // Enqueues a job and returns its handle.  Throws AdmissionError when the
  // queue is full or the job's memory charge exceeds the whole budget.
  int Submit(JobRequest request);

  // Blocks until the job finishes; the report carries the JobResult or the
  // failure.
  JobReport Wait(int handle);

  // Waits for every submitted job; reports in submission order.
  std::vector<JobReport> Drain();

  [[nodiscard]] SchedulerStats stats() const;

  // Cross-job timeline: every finished job's task intervals shifted onto
  // the scheduler clock, so concurrent jobs' map/reduce waves can be
  // plotted against each other.
  [[nodiscard]] std::vector<TaskInterval> Timeline() const;

  // The placement plane (nullptr with placement_mode == kEngine) — the
  // assignment log and per-node load probes live here.
  [[nodiscard]] placement::PlacementPlane* placement_plane() noexcept {
    return plane_.get();
  }
  // The fair-share tree (nullptr without pools).
  [[nodiscard]] placement::PoolTree* pool_tree() noexcept {
    return pool_tree_.get();
  }

 private:
  struct Job {
    int handle = -1;
    JobRequest request;
    std::size_t memory_bytes = 0;  // resolved admission charge
    std::int64_t total_ops = 0;    // map tasks + reducers (SRW estimate)
    std::atomic<int> maps_done{0};
    std::atomic<int> reduces_done{0};
    enum class State { kQueued, kRunning, kDone } state = State::kQueued;
    JobReport report;
    SchedHooks hooks;
    std::unique_ptr<MetricRegistry> metrics;
    std::unique_ptr<net::Transport> transport;
    std::unique_ptr<ClusterExecutor> executor;
    std::jthread runner;
  };

  void DispatchLoop(const std::stop_token& stop);
  void RunJob(Job* job);
  [[nodiscard]] std::int64_t EstimateOps(const JobRequest& request) const;

  Dfs* dfs_;
  FileManager* files_;
  SchedulerOptions options_;
  WallTimer clock_;
  // Declared before pool_ (which borrows the tree) and dispatcher_ (which
  // consults both), so they outlive every user.
  std::unique_ptr<placement::PoolTree> pool_tree_;
  std::unique_ptr<placement::PlacementPlane> plane_;
  SlotPool pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<Job>> jobs_;  // indexed by handle
  std::deque<int> queued_;
  int running_ = 0;
  int peak_concurrent_ = 0;
  std::int64_t placement_deferrals_ = 0;
  std::int64_t no_map_worker_deferrals_ = 0;
  std::int64_t no_reduce_worker_deferrals_ = 0;
  std::int64_t quota_deferrals_ = 0;
  std::int64_t frontend_only_deferrals_ = 0;
  bool head_deferred_ = false;  // current queue head already counted
  double first_submit_s_ = -1.0;
  double last_finish_s_ = 0.0;

  std::jthread dispatcher_;  // last member: stops before jobs_ unwinds
};

}  // namespace opmr::sched
