// SlotPool: the global resource pool the multi-job scheduler leases from —
// map slots, reduce slots, and a memory budget shared by every admitted
// job.  Executors acquire slots at operation granularity through their
// SchedHooks; a blocked Acquire parks on a condition variable until the
// pool has a free slot AND the policy ranks the caller's job best among
// the waiters of that slot kind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <map>
#include <mutex>

#include "placement/pool_tree.h"
#include "sched/policy.h"

namespace opmr::sched {

class SlotPool {
 public:
  enum class SlotKind { kMap = 0, kReduce = 1 };

  struct Stats {
    std::int64_t map_grants = 0;
    std::int64_t reduce_grants = 0;
    std::int64_t waits = 0;        // acquires that had to block
    double wait_seconds = 0.0;     // total time spent blocked
    int peak_map_in_use = 0;
    int peak_reduce_in_use = 0;
  };

  SlotPool(int map_slots, int reduce_slots, std::size_t memory_budget_bytes,
           SchedPolicy policy);

  // Hierarchical fair-share seam: with a pool tree installed (not owned;
  // must outlive the pool; install before any job acquires), contended
  // slots go to PoolTree::Pick's choice — the SchedPolicy then only orders
  // jobs the tree cannot tell apart (same pool, same admission seq can't
  // happen, so effectively the tree decides).  Job -> pool membership is
  // the tree's (JoinJob), not the slot pool's.
  void SetPoolTree(placement::PoolTree* tree);

  // Jobs register with an initial remaining-operations estimate (map tasks
  // + reducers); progress hooks keep it current so kSrw ranks on live
  // state.  Unknown jobs acquire under a fresh registration, so the pool
  // is usable standalone in tests.
  void RegisterJob(int job, std::int64_t remaining_ops);
  void UnregisterJob(int job);
  void ReportProgress(int job, std::int64_t remaining_ops);

  // Blocks until a slot of `kind` is granted to `job`.  Every Acquire must
  // be balanced by exactly one Release of the same kind.
  void Acquire(int job, SlotKind kind);
  void Release(int job, SlotKind kind);

  // Admission-side memory gate (non-blocking): false when the budget
  // cannot cover `bytes` right now.
  [[nodiscard]] bool TryReserveMemory(std::size_t bytes);
  void ReleaseMemory(std::size_t bytes);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] SchedPolicy policy() const noexcept { return policy_; }

 private:
  struct JobState {
    std::int64_t seq = 0;            // admission order (tie-break)
    std::int64_t remaining_ops = 0;  // kSrw rank
    int held = 0;                    // slots of both kinds held (kFair rank)
    int waiting[2] = {0, 0};         // per-kind blocked acquires
  };

  // mu_ held.  Registers `job` if unknown and returns its state.
  JobState& StateLocked(int job);
  // mu_ held.  The job id the policy ranks best among `kind` waiters, or
  // -1 when nobody waits.
  [[nodiscard]] int BestWaiterLocked(SlotKind kind) const;
  [[nodiscard]] bool RanksBefore(const JobState& a,
                                 const JobState& b) const noexcept;

  const SchedPolicy policy_;
  const int capacity_[2];
  placement::PoolTree* tree_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int free_[2];
  std::size_t memory_free_;
  std::int64_t next_seq_ = 0;
  std::map<int, JobState> jobs_;
  Stats stats_;
};

}  // namespace opmr::sched
