// Slot-grant policies for the multi-job scheduler: when a shared slot
// frees, which waiting job receives it.
//
//   * kFifo — strict admission order: the earliest-submitted waiter wins.
//     Small jobs queue behind large ones (the Hadoop default's weakness on
//     mixed workloads).
//   * kFair — fewest-slots-held first: every admitted job converges to an
//     equal share of the pool, so a short job finishes while a long one
//     keeps streaming (the paper's one-pass jobs are long-running by
//     design, which is exactly when fair sharing pays).
//   * kSrw  — shortest remaining work first: the job with the fewest
//     unfinished operations (map tasks + reducers, updated live from
//     executor progress hooks) wins, minimizing mean job latency.
//
// Ties always break by admission order, making every grant sequence
// deterministic for a fixed interleaving of requests.
#pragma once

#include <optional>
#include <string>

namespace opmr::sched {

enum class SchedPolicy {
  kFifo,
  kFair,
  kSrw,
};

[[nodiscard]] inline const char* SchedPolicyName(SchedPolicy policy) noexcept {
  switch (policy) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kFair: return "fair";
    case SchedPolicy::kSrw: return "srw";
  }
  return "?";
}

[[nodiscard]] inline std::optional<SchedPolicy> ParseSchedPolicy(
    const std::string& name) {
  if (name == "fifo") return SchedPolicy::kFifo;
  if (name == "fair") return SchedPolicy::kFair;
  if (name == "srw") return SchedPolicy::kSrw;
  return std::nullopt;
}

}  // namespace opmr::sched
