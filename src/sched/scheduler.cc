#include "sched/scheduler.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/loopback.h"
#include "net/tcp.h"

namespace opmr::sched {

JobScheduler::JobScheduler(Dfs* dfs, FileManager* files,
                           SchedulerOptions options)
    : dfs_(dfs),
      files_(files),
      options_(std::move(options)),
      pool_tree_(options_.pools.empty()
                     ? nullptr
                     : std::make_unique<placement::PoolTree>(options_.pools)),
      plane_(options_.placement_mode == placement::PlacementMode::kEngine
                 ? nullptr
                 : std::make_unique<placement::PlacementPlane>(
                       placement::PlacementPlane::Options{
                           options_.placement_mode, options_.placement_seed,
                           options_.num_nodes, options_.registry})),
      pool_(options_.map_slots, options_.reduce_slots,
            options_.memory_budget_bytes, options_.policy),
      dispatcher_([this](std::stop_token stop) { DispatchLoop(stop); }) {
  // No job can be submitted before construction returns, so installing the
  // tree after the dispatcher thread starts is race-free.
  if (pool_tree_ != nullptr) pool_.SetPoolTree(pool_tree_.get());
}

JobScheduler::~JobScheduler() {
  dispatcher_.request_stop();
  cv_.notify_all();
  // dispatcher_ (last member) joins first; jobs_ then unwinds, joining
  // every runner thread — admitted jobs always run to completion.
}

std::int64_t JobScheduler::EstimateOps(const JobRequest& request) const {
  std::int64_t ops = std::max(1, request.spec.num_reducers);
  try {
    ops += static_cast<std::int64_t>(
        dfs_->ListBlocks(request.spec.input_file).size());
    for (const auto& extra : request.spec.extra_inputs) {
      ops += static_cast<std::int64_t>(dfs_->ListBlocks(extra).size());
    }
  } catch (...) {
    // A missing input surfaces as a job failure at run time; the estimate
    // just degrades to the reducer count.
  }
  return ops;
}

int JobScheduler::Submit(JobRequest request) {
  std::size_t memory = request.memory_bytes;
  if (memory == 0) {
    memory = request.options.reduce_buffer_bytes *
             static_cast<std::size_t>(std::max(1, request.spec.num_reducers));
  }
  if (memory > options_.memory_budget_bytes) {
    throw AdmissionError(
        "job '" + request.id + "' charges " + std::to_string(memory) +
        " bytes of reducer memory but the scheduler's whole budget is " +
        std::to_string(options_.memory_budget_bytes) +
        " — it could never be admitted (shrink reduce_buffer_bytes or the "
        "reducer count, or raise the budget)");
  }
  if (!request.pool.empty() &&
      (pool_tree_ == nullptr || !pool_tree_->HasPool(request.pool))) {
    throw AdmissionError("job '" + request.id +
                         "' names unknown fair-share pool '" + request.pool +
                         "' (declare it in SchedulerOptions::pools)");
  }
  const std::int64_t ops = EstimateOps(request);
  std::unique_lock lock(mu_);
  if (static_cast<int>(queued_.size()) >= options_.max_queued) {
    throw AdmissionError("scheduler queue is full (" +
                         std::to_string(options_.max_queued) +
                         " jobs waiting): job '" + request.id + "' rejected");
  }
  const int handle = static_cast<int>(jobs_.size());
  auto job = std::make_unique<Job>();
  job->handle = handle;
  job->request = std::move(request);
  job->memory_bytes = memory;
  job->total_ops = ops;
  job->report.handle = handle;
  job->report.id = job->request.id;
  job->report.submitted_s = clock_.Seconds();
  if (first_submit_s_ < 0.0) first_submit_s_ = job->report.submitted_s;
  queued_.push_back(handle);
  jobs_.push_back(std::move(job));
  lock.unlock();
  cv_.notify_all();
  return handle;
}

void JobScheduler::DispatchLoop(const std::stop_token& stop) {
  std::stop_callback wake(stop, [this] { cv_.notify_all(); });
  std::unique_lock lock(mu_);
  while (true) {
    bool reserved = false;
    std::size_t reserved_bytes = 0;
    const auto dispatchable = [&] {
      if (stop.stop_requested()) return true;
      if (queued_.empty() || running_ >= options_.max_concurrent) return false;
      // Placement gate: with a worker registry installed, the head job
      // waits out membership gaps (no live map or reduce worker) in the
      // queue instead of failing at shuffle-connect time.  Frontend
      // registrations are read-only serve replicas, not job slots — they
      // never satisfy the gate.
      if (options_.registry != nullptr &&
          (options_.registry->LiveCount(net::WireRole::kMap) == 0 ||
           options_.registry->LiveCount(net::WireRole::kReduce) == 0)) {
        if (!head_deferred_) {
          head_deferred_ = true;
          ++placement_deferrals_;
          // Missing-map takes precedence when both groups are empty, so the
          // reason counters always sum to placement_deferrals.
          if (options_.registry->LiveCount(net::WireRole::kMap) == 0) {
            ++no_map_worker_deferrals_;
          } else {
            ++no_reduce_worker_deferrals_;
          }
          if (options_.registry->LiveCount(net::WireRole::kFrontend) > 0) {
            ++frontend_only_deferrals_;
          }
        }
        return false;
      }
      // Fair-share quota gate: a pool (or any ancestor) at its
      // max_running_jobs cap holds its next job in the queue.  Job
      // completions notify cv_, so this re-evaluates without polling.
      if (pool_tree_ != nullptr &&
          pool_tree_->AtJobQuota(jobs_[queued_.front()]->request.pool)) {
        if (!head_deferred_) {
          head_deferred_ = true;
          ++placement_deferrals_;
          ++quota_deferrals_;
        }
        return false;
      }
      // FIFO admission with a memory gate: the head job waits until its
      // charge fits the budget (predictable head-of-line ordering; the
      // slot policy, not admission, decides who wins contended slots).
      reserved_bytes = jobs_[queued_.front()]->memory_bytes;
      reserved = pool_.TryReserveMemory(reserved_bytes);
      return reserved;
    };
    if (options_.registry == nullptr) {
      cv_.wait(lock, dispatchable);
    } else {
      // Registry mutations come from coordinator threads that cannot
      // notify this cv; poll while gated.
      while (!dispatchable()) {
        cv_.wait_for(lock, std::chrono::milliseconds(20));
      }
    }
    if (stop.stop_requested()) {
      if (reserved) pool_.ReleaseMemory(reserved_bytes);
      return;
    }
    const int handle = queued_.front();
    queued_.pop_front();
    head_deferred_ = false;
    Job* job = jobs_[handle].get();
    job->state = Job::State::kRunning;
    job->report.started_s = clock_.Seconds();
    ++running_;
    peak_concurrent_ = std::max(peak_concurrent_, running_);
    pool_.RegisterJob(handle, job->total_ops);
    if (pool_tree_ != nullptr) {
      pool_tree_->JoinJob(handle, job->request.pool);
      pool_tree_->OnJobStart(job->request.pool);
    }
    if (plane_ != nullptr) {
      // Plan here, on the dispatcher thread: jobs are planned in dispatch
      // order, which is FIFO-deterministic — the property the seeded
      // assignment-log tests pin.  A missing input stays unplanned and
      // fails inside the executor as before.
      try {
        std::vector<BlockInfo> blocks =
            dfs_->ListBlocks(job->request.spec.input_file);
        for (const auto& extra : job->request.spec.extra_inputs) {
          const auto more = dfs_->ListBlocks(extra);
          blocks.insert(blocks.end(), more.begin(), more.end());
        }
        plane_->PlanJob(handle, blocks);
      } catch (...) {
      }
    }
    job->runner = std::jthread([this, job] { RunJob(job); });
  }
}

void JobScheduler::RunJob(Job* job) {
  const int handle = job->handle;
  // Per-job registry: JobResult counter deltas stay clean however many
  // jobs interleave.  Transports charge their wire metrics here too.
  job->metrics = std::make_unique<MetricRegistry>();

  job->hooks.acquire_map_slot = [this, handle](int node) {
    pool_.Acquire(handle, SlotPool::SlotKind::kMap);
    if (plane_ != nullptr) plane_->OnSlotAcquired(node);
  };
  job->hooks.release_map_slot = [this, handle](int node) {
    if (plane_ != nullptr) plane_->OnSlotReleased(node);
    pool_.Release(handle, SlotPool::SlotKind::kMap);
  };
  if (plane_ != nullptr) {
    job->hooks.place_map_block =
        [this, handle](int node, const std::vector<const BlockInfo*>& pending) {
          return plane_->PickPending(handle, node, pending);
        };
  }
  job->hooks.acquire_reduce_slot = [this, handle] {
    pool_.Acquire(handle, SlotPool::SlotKind::kReduce);
  };
  job->hooks.release_reduce_slot = [this, handle] {
    pool_.Release(handle, SlotPool::SlotKind::kReduce);
  };
  const auto report_remaining = [this, job, handle] {
    const std::int64_t remaining =
        job->total_ops - job->maps_done.load(std::memory_order_relaxed) -
        job->reduces_done.load(std::memory_order_relaxed);
    pool_.ReportProgress(handle, std::max<std::int64_t>(remaining, 0));
  };
  job->hooks.on_map_progress = [job, report_remaining](int done, int) {
    job->maps_done.store(done, std::memory_order_relaxed);
    report_remaining();
  };
  job->hooks.on_reduce_progress = [job, report_remaining](int done, int) {
    job->reduces_done.store(done, std::memory_order_relaxed);
    report_remaining();
  };

  bool failed = false;
  std::string error;
  JobResult result;
  try {
    ClusterOptions cluster;
    cluster.num_nodes = options_.num_nodes;
    cluster.map_slots_per_node = options_.map_slots_per_node;
    cluster.speculative_reduce = job->request.speculative_reduce;
    cluster.reduce_speculation_threshold =
        job->request.reduce_speculation_threshold;
    cluster.sched_hooks = &job->hooks;
    switch (job->request.transport) {
      case JobTransport::kDirect:
        break;
      case JobTransport::kLoopback:
        job->transport =
            std::make_unique<net::LoopbackTransport>(job->metrics.get());
        break;
      case JobTransport::kTcp: {
        // Self-dialing socket mode: bind an ephemeral localhost port and
        // let the map side connect to it from this same process.  No fork
        // — a scheduler process is far too threaded to survive one.
        auto tcp = std::make_unique<net::TcpTransport>(job->metrics.get());
        tcp->Bind();
        job->transport = std::move(tcp);
        break;
      }
    }
    cluster.shuffle_transport = job->transport.get();
    job->executor = std::make_unique<ClusterExecutor>(
        dfs_, files_, job->metrics.get(), cluster);
    result = job->executor->Run(job->request.spec, job->request.options);
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown error";
  }
  // All slot leases were released when Run() unwound its task threads.
  pool_.UnregisterJob(handle);
  pool_.ReleaseMemory(job->memory_bytes);
  if (plane_ != nullptr) plane_->JobDone(handle);
  if (pool_tree_ != nullptr) {
    pool_tree_->OnJobFinish(job->request.pool);
    pool_tree_->LeaveJob(handle);
  }
  {
    std::scoped_lock lock(mu_);
    job->report.result = std::move(result);
    job->report.failed = failed;
    job->report.error = std::move(error);
    job->report.finished_s = clock_.Seconds();
    last_finish_s_ = std::max(last_finish_s_, job->report.finished_s);
    job->state = Job::State::kDone;
    --running_;
  }
  cv_.notify_all();
}

JobReport JobScheduler::Wait(int handle) {
  std::unique_lock lock(mu_);
  if (handle < 0 || handle >= static_cast<int>(jobs_.size())) {
    throw std::invalid_argument("JobScheduler::Wait: unknown job handle " +
                                std::to_string(handle));
  }
  Job* job = jobs_[handle].get();
  cv_.wait(lock, [&] { return job->state == Job::State::kDone; });
  return job->report;
}

std::vector<JobReport> JobScheduler::Drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return queued_.empty() && running_ == 0; });
  std::vector<JobReport> reports;
  reports.reserve(jobs_.size());
  for (const auto& job : jobs_) reports.push_back(job->report);
  return reports;
}

SchedulerStats JobScheduler::stats() const {
  std::scoped_lock lock(mu_);
  SchedulerStats s;
  s.submitted = static_cast<int>(jobs_.size());
  for (const auto& job : jobs_) {
    if (job->state != Job::State::kDone) continue;
    if (job->report.failed) {
      ++s.failed;
    } else {
      ++s.completed;
    }
  }
  s.peak_concurrent = peak_concurrent_;
  s.placement_deferrals = placement_deferrals_;
  s.no_map_worker_deferrals = no_map_worker_deferrals_;
  s.no_reduce_worker_deferrals = no_reduce_worker_deferrals_;
  s.quota_deferrals = quota_deferrals_;
  s.frontend_only_deferrals = frontend_only_deferrals_;
  if (plane_ != nullptr) s.placement = plane_->stats();
  if (pool_tree_ != nullptr) s.pools = pool_tree_->Stats();
  s.makespan_s =
      first_submit_s_ >= 0.0 ? last_finish_s_ - first_submit_s_ : 0.0;
  s.slots = pool_.stats();
  return s;
}

std::vector<TaskInterval> JobScheduler::Timeline() const {
  std::scoped_lock lock(mu_);
  std::vector<TaskInterval> out;
  for (const auto& job : jobs_) {
    if (job->state != Job::State::kDone || job->report.failed) continue;
    for (TaskInterval iv : job->report.result.timeline) {
      iv.begin_s += job->report.started_s;
      iv.end_s += job->report.started_s;
      out.push_back(iv);
    }
  }
  return out;
}

}  // namespace opmr::sched
