#include "sched/spool.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace opmr::sched {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::uint64_t ParseCount(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::uint64_t n = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return n;
  } catch (...) {
    throw std::invalid_argument("spool: bad number for '" + key +
                                "': " + value);
  }
}

bool ParseBool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  throw std::invalid_argument("spool: bad boolean for '" + key +
                              "': " + value);
}

}  // namespace

SpoolSpec ParseSpoolSpec(const std::string& id, std::istream& in) {
  SpoolSpec spec;
  spec.id = id;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("spool job '" + id +
                                  "': expected key=value, got: " + trimmed);
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key == "workload") {
      spec.workload = value;
    } else if (key == "runtime") {
      spec.runtime = value;
    } else if (key == "transport") {
      if (value != "direct" && value != "loopback" && value != "tcp") {
        throw std::invalid_argument("spool job '" + id +
                                    "': unknown transport: " + value);
      }
      spec.transport = value;
    } else if (key == "records") {
      spec.records = ParseCount(key, value);
    } else if (key == "reducers") {
      spec.reducers = static_cast<int>(ParseCount(key, value));
    } else if (key == "memory_bytes") {
      spec.memory_bytes = static_cast<std::size_t>(ParseCount(key, value));
    } else if (key == "speculative_reduce") {
      spec.speculative_reduce = ParseBool(key, value);
    } else if (key == "checkpoint_interval") {
      spec.checkpoint_interval = ParseCount(key, value);
    } else if (key == "checkpoint_retain") {
      spec.checkpoint_retain = static_cast<int>(ParseCount(key, value));
    } else if (key == "pool") {
      spec.pool = value;
    } else {
      throw std::invalid_argument("spool job '" + id + "': unknown key '" +
                                  key + "'");
    }
  }
  if (spec.reducers < 1) {
    throw std::invalid_argument("spool job '" + id +
                                "': reducers must be at least 1");
  }
  return spec;
}

SpoolSpec LoadSpoolFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("spool: cannot open " + path.string());
  }
  return ParseSpoolSpec(path.stem().string(), in);
}

std::vector<SpoolSpec> DrainSpoolDir(const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".job") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<SpoolSpec> specs;
  specs.reserve(files.size());
  for (const auto& path : files) {
    specs.push_back(LoadSpoolFile(path));
    std::filesystem::path done = path;
    done += ".done";
    std::filesystem::rename(path, done);
  }
  return specs;
}

}  // namespace opmr::sched
