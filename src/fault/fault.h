// Fault plane: seeded, deterministic fault injection for chaos runs.
//
// A FaultPlan is a declarative list of scheduled fault points — I/O errors
// in the storage layer, DFS replica loss, map/reduce task crashes at record
// N, injected slow nodes, pull-shuffle fetch stalls.  A FaultInjector built
// from the plan is handed to the executor (ClusterOptions::fault_injector);
// every fault decision is a pure function of the plan's seed and the fault
// site's coordinates (task, attempt, record, file tag, byte offset, node),
// never of thread interleaving, so a chaos run replays identically however
// the scheduler interleaves tasks.
//
// Faults fire only while the current attempt number is <= the point's
// `attempts` budget (default 1): a plan that crashes map task 3 at record
// 500 kills the first attempt and lets the re-execution through, which is
// exactly the shape needed to prove the recovery machinery produces output
// byte-identical to a fault-free run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/counters.h"
#include "net/transport.h"
#include "storage/io.h"

namespace opmr {

enum class FaultPoint {
  kMapCrash,     // throw from inside a map task at record N / at rate
  kReduceCrash,  // throw from inside a reduce task at output record N / rate
  kIoWrite,      // throw from SequentialWriter::Flush (simulated EIO)
  kIoRead,       // throw from SequentialReader::ReadExact
  kReplicaLoss,  // drop replicas from block metadata (degrades locality)
  kSlowNode,     // per-record delay on one node (straggler injection)
  kFetchStall,   // delay a reducer's fetch of one map task's output
  kConnDrop,     // tear a transport connection down before frame N's send
  kNetStall,     // delay a transport frame send (slow network)
  kHeartbeatLoss,      // suppress a worker's coordinator heartbeats
  kRegistryPartition,  // drop a worker's Register before it reaches the wire
  kPeerCrash,    // discard a delivered-but-unapplied frame and kill the conn
};

[[nodiscard]] const char* FaultPointName(FaultPoint point) noexcept;

// One scheduled fault.  Unset filters (-1 / empty / 0) match anything; a
// point with neither `record`/`after_bytes` nor `rate` fires on the first
// eligible site.  For kFetchStall, `task` filters the map task whose output
// is being fetched and `node` filters the fetching reducer.  For
// kReplicaLoss, `node` selects the replica to drop (-1 drops all, or a
// `rate`-drawn subset).  For kConnDrop / kNetStall, `record` filters the
// 1-based frame send ordinal and `attempts` budgets the transmission
// attempt (default 1: the retransmit goes through).  For kHeartbeatLoss,
// `tag` filters the worker id, `record` is the first suppressed heartbeat
// ordinal, and `attempts` budgets the registration GENERATION (default 1:
// only the first generation is starved, so the post-eviction rejoin
// heartbeats flow).  For kRegistryPartition, `tag` filters the worker id
// and `attempts` budgets the Register attempt.  For kPeerCrash, `record`
// is the sequenced frame seq to discard after delivery and `attempts`
// budgets the receive attempt (default 1: the ack-replay copy applies).
struct FaultSpec {
  FaultPoint point = FaultPoint::kMapCrash;
  int task = -1;                 // map/reduce task id filter
  int node = -1;                 // node filter (slow_node, replica_loss)
  std::uint64_t record = 0;      // fire at this 1-based record ordinal
  double rate = 0.0;             // else: fire per site with this probability
  int attempts = 1;              // fire while attempt <= attempts
  std::string tag;               // io points: FileManager file tag filter
  std::uint64_t after_bytes = 0; // io points: fire at the op crossing this
  double delay_ms = 0.0;         // slow_node / fetch_stall delay
  std::uint64_t block = kAnyBlock;  // replica_loss: block id filter

  static constexpr std::uint64_t kAnyBlock = ~0ull;

  [[nodiscard]] std::string ToString() const;
};

// A seed plus the scheduled points.  Text grammar (one plan per string,
// points separated by ';'):
//
//   seed=7;map_crash:task=0,record=500;io_write:tag=map_out,after_bytes=64k;
//   slow_node:node=0,delay_ms=0.5;io_read:tag=dfs_block,rate=0.01,attempts=2
//
// Keys per point: task, node, record, rate, attempts, tag, after_bytes
// (k/m/g suffixes), delay_ms, block.  Load() accepts either a spec string
// or the path of a file holding one point per line ('#' comments).
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;

  static FaultPlan Parse(const std::string& spec);
  static FaultPlan Load(const std::string& file_or_spec);

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  [[nodiscard]] std::string ToString() const;
};

// Thrown at every fired crash/IO fault point; derives runtime_error so a
// fault surfaces exactly where (and as what) a real device error would.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : runtime_error(what) {}
};

// RAII thread-local task coordinates.  The executor opens a scope around
// every task attempt so deep fault sites (storage-layer I/O hooks, the
// ReducerOutput emit path) know which task/attempt/node they run under
// without threading parameters through every layer.
class FaultScope {
 public:
  enum class Kind { kNone, kMap, kReduce };

  struct Frame {
    Kind kind = Kind::kNone;
    int task = -1;
    int attempt = 1;
    int node = -1;
  };

  FaultScope(Kind kind, int task, int attempt, int node = -1);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

  [[nodiscard]] static const Frame& Current() noexcept;

 private:
  Frame saved_;
};

// Evaluates a FaultPlan at the engine's fault sites.  Thread-safe and
// stateless between calls: decisions depend only on (seed, coordinates),
// so concurrent tasks cannot perturb each other's faults.  Counts every
// fired fault into the metric registry ("faults.injected", "faults.<point>",
// "faults.slowed_records") so chaos activity lands in JobResult::counters.
class FaultInjector final : public IoFaultHook, public net::NetFaultHook {
 public:
  FaultInjector(FaultPlan plan, MetricRegistry* metrics);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  // --- engine-side fault sites (record is 1-based within the attempt) ------
  void OnMapRecord(int task, std::uint64_t record);
  void OnReduceRecord(std::uint64_t record);
  // Per folded shuffle record on the reduce side: kSlowNode delays apply
  // here (filtered by the reduce attempt's FaultScope node), so an injected
  // straggler node slows its reducers too, not just its map slots.
  void OnReduceFold(std::uint64_t record);
  void OnShuffleFetch(int reducer, int map_task);
  void FilterReplicas(std::vector<int>* replica_nodes, std::uint64_t block_id);

  // Scheduler-visible slow-node signal: the largest slow_node delay the
  // plan schedules for `node` (0 = the node is not designated slow).  The
  // executor's reduce-speculation watchdog and the multi-job scheduler
  // treat injected stragglers as a first-class signal instead of
  // rediscovering them from task timings.
  [[nodiscard]] double SlowNodeDelayMs(int node) const noexcept;

  // --- storage-layer fault sites (IoFaultHook) -----------------------------
  void BeforeWrite(const std::filesystem::path& path, std::uint64_t offset,
                   std::size_t bytes) override;
  void BeforeRead(const std::filesystem::path& path, std::uint64_t offset,
                  std::size_t bytes) override;

  // --- wire fault sites (net::NetFaultHook) --------------------------------
  // Consulted by the TCP client before each frame send.  kNetStall sleeps;
  // kConnDrop returns true, which makes the transport tear the connection
  // down (before any byte is written) and retransmit.
  bool OnFrameSend(std::uint64_t frame_seq, int attempt) override;
  // Consulted by CoordClient: kHeartbeatLoss starves the lease (true =
  // suppress this heartbeat), kRegistryPartition swallows a Register.
  bool OnHeartbeatSend(const std::string& worker, std::uint64_t ordinal,
                       int generation) override;
  bool OnRegisterSend(const std::string& worker, int attempt) override;
  // Consulted by the shuffle server before applying a sequenced frame:
  // kPeerCrash discards the delivered frame and kills the connection, so
  // only the client's ack-window replay can recover it.
  bool OnServerFrameApply(std::uint64_t seq, int receive_attempt) override;

  [[nodiscard]] std::int64_t injected() const noexcept {
    return injected_->value();
  }

 private:
  void IoFault(FaultPoint point, const std::filesystem::path& path,
               std::uint64_t offset, std::size_t bytes);
  // Deterministic uniform [0,1) draw for site coordinates (a, b).
  [[nodiscard]] double Draw(std::size_t spec_index, std::uint64_t a,
                            std::uint64_t b) const noexcept;
  [[noreturn]] void Fire(std::size_t spec_index, const std::string& site);
  void CountOnly(std::size_t spec_index);

  FaultPlan plan_;
  MetricRegistry* metrics_;
  Counter* injected_;
  Counter* slowed_records_;
  std::vector<Counter*> per_spec_;
  bool has_point_[12] = {};
};

}  // namespace opmr
