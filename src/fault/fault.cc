#include "fault/fault.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/hash.h"

namespace opmr {

namespace {

thread_local FaultScope::Frame t_frame;

void SleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

// "64k" / "4m" / "1g" byte sizes (same suffixes the bench flags accept).
std::uint64_t ParseBytes(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("FaultPlan: empty byte size");
  std::uint64_t mult = 1;
  std::string digits = text;
  switch (std::tolower(static_cast<unsigned char>(text.back()))) {
    case 'k': mult = 1ull << 10; digits.pop_back(); break;
    case 'm': mult = 1ull << 20; digits.pop_back(); break;
    case 'g': mult = 1ull << 30; digits.pop_back(); break;
    default: break;
  }
  return static_cast<std::uint64_t>(std::stoull(digits)) * mult;
}

FaultPoint PointByName(const std::string& name) {
  if (name == "map_crash") return FaultPoint::kMapCrash;
  if (name == "reduce_crash") return FaultPoint::kReduceCrash;
  if (name == "io_write") return FaultPoint::kIoWrite;
  if (name == "io_read") return FaultPoint::kIoRead;
  if (name == "replica_loss") return FaultPoint::kReplicaLoss;
  if (name == "slow_node") return FaultPoint::kSlowNode;
  if (name == "fetch_stall") return FaultPoint::kFetchStall;
  if (name == "conn_drop") return FaultPoint::kConnDrop;
  if (name == "net_stall") return FaultPoint::kNetStall;
  if (name == "heartbeat_loss") return FaultPoint::kHeartbeatLoss;
  if (name == "registry_partition") return FaultPoint::kRegistryPartition;
  if (name == "peer_crash") return FaultPoint::kPeerCrash;
  throw std::invalid_argument("FaultPlan: unknown fault point '" + name + "'");
}

FaultSpec ParsePoint(const std::string& token) {
  FaultSpec spec;
  const auto colon = token.find(':');
  spec.point = PointByName(Trim(token.substr(0, colon)));
  if (colon == std::string::npos) return spec;
  for (const auto& kv : Split(token.substr(colon + 1), ',')) {
    const auto trimmed = Trim(kv);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  trimmed + "'");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key == "task") spec.task = std::stoi(value);
    else if (key == "node") spec.node = std::stoi(value);
    else if (key == "record") spec.record = std::stoull(value);
    else if (key == "rate") spec.rate = std::stod(value);
    else if (key == "attempts") spec.attempts = std::stoi(value);
    else if (key == "tag") spec.tag = value;
    else if (key == "after_bytes") spec.after_bytes = ParseBytes(value);
    else if (key == "delay_ms") spec.delay_ms = std::stod(value);
    else if (key == "block") spec.block = std::stoull(value);
    else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  if (spec.rate < 0.0 || spec.rate > 1.0) {
    throw std::invalid_argument("FaultPlan: rate must be in [0, 1]");
  }
  if (spec.attempts < 1) {
    throw std::invalid_argument("FaultPlan: attempts must be >= 1");
  }
  return spec;
}

}  // namespace

const char* FaultPointName(FaultPoint point) noexcept {
  switch (point) {
    case FaultPoint::kMapCrash: return "map_crash";
    case FaultPoint::kReduceCrash: return "reduce_crash";
    case FaultPoint::kIoWrite: return "io_write";
    case FaultPoint::kIoRead: return "io_read";
    case FaultPoint::kReplicaLoss: return "replica_loss";
    case FaultPoint::kSlowNode: return "slow_node";
    case FaultPoint::kFetchStall: return "fetch_stall";
    case FaultPoint::kConnDrop: return "conn_drop";
    case FaultPoint::kNetStall: return "net_stall";
    case FaultPoint::kHeartbeatLoss: return "heartbeat_loss";
    case FaultPoint::kRegistryPartition: return "registry_partition";
    case FaultPoint::kPeerCrash: return "peer_crash";
  }
  return "unknown";
}

std::string FaultSpec::ToString() const {
  std::ostringstream out;
  out << FaultPointName(point);
  std::string sep = ":";
  auto add = [&](const std::string& key, const std::string& value) {
    out << sep << key << "=" << value;
    sep = ",";
  };
  if (task >= 0) add("task", std::to_string(task));
  if (node >= 0) add("node", std::to_string(node));
  if (record > 0) add("record", std::to_string(record));
  if (rate > 0.0) add("rate", std::to_string(rate));
  if (attempts != 1) add("attempts", std::to_string(attempts));
  if (!tag.empty()) add("tag", tag);
  if (after_bytes > 0) add("after_bytes", std::to_string(after_bytes));
  if (delay_ms > 0.0) add("delay_ms", std::to_string(delay_ms));
  if (block != kAnyBlock) add("block", std::to_string(block));
  return out.str();
}

FaultPlan FaultPlan::Parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& raw : Split(spec, ';')) {
    const auto token = Trim(raw);
    if (token.empty()) continue;
    if (token.rfind("seed=", 0) == 0) {
      plan.seed = std::stoull(token.substr(5));
      continue;
    }
    plan.faults.push_back(ParsePoint(token));
  }
  return plan;
}

FaultPlan FaultPlan::Load(const std::string& file_or_spec) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(file_or_spec, ec)) {
    return Parse(file_or_spec);
  }
  std::ifstream in(file_or_spec);
  if (!in) {
    throw std::runtime_error("FaultPlan: cannot read " + file_or_spec);
  }
  std::string joined, line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = Trim(line);
    if (line.empty()) continue;
    if (!joined.empty()) joined += ';';
    joined += line;
  }
  return Parse(joined);
}

std::string FaultPlan::ToString() const {
  std::string out = "seed=" + std::to_string(seed);
  for (const auto& f : faults) out += ";" + f.ToString();
  return out;
}

// --- FaultScope --------------------------------------------------------------

FaultScope::FaultScope(Kind kind, int task, int attempt, int node)
    : saved_(t_frame) {
  t_frame = Frame{kind, task, attempt, node};
}

FaultScope::~FaultScope() { t_frame = saved_; }

const FaultScope::Frame& FaultScope::Current() noexcept { return t_frame; }

// --- FaultInjector -----------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan, MetricRegistry* metrics)
    : plan_(std::move(plan)), metrics_(metrics) {
  injected_ = metrics_->Get("faults.injected");
  slowed_records_ = metrics_->Get("faults.slowed_records");
  per_spec_.reserve(plan_.faults.size());
  for (const auto& spec : plan_.faults) {
    per_spec_.push_back(
        metrics_->Get(std::string("faults.") + FaultPointName(spec.point)));
    has_point_[static_cast<int>(spec.point)] = true;
  }
}

double FaultInjector::Draw(std::size_t spec_index, std::uint64_t a,
                           std::uint64_t b) const noexcept {
  // Pure function of (seed, spec, site coordinates): the same site draws the
  // same number in every run and on every thread.
  std::uint64_t h = plan_.seed + 0x9e3779b97f4a7c15ULL * (spec_index + 1);
  h = detail::Mix64(h ^ detail::Mix64(a + 0x2545f4914f6cdd1dULL));
  h = detail::Mix64(h ^ detail::Mix64(b + 0xd1342543de82ef95ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void FaultInjector::Fire(std::size_t spec_index, const std::string& site) {
  injected_->Increment();
  per_spec_[spec_index]->Increment();
  throw InjectedFault("injected " + std::string(FaultPointName(
                          plan_.faults[spec_index].point)) +
                      " at " + site + " [" +
                      plan_.faults[spec_index].ToString() + "]");
}

void FaultInjector::CountOnly(std::size_t spec_index) {
  injected_->Increment();
  per_spec_[spec_index]->Increment();
}

void FaultInjector::OnMapRecord(int task, std::uint64_t record) {
  const bool crash = has_point_[static_cast<int>(FaultPoint::kMapCrash)];
  const bool slow = has_point_[static_cast<int>(FaultPoint::kSlowNode)];
  if (!crash && !slow) return;
  const auto& frame = FaultScope::Current();
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (frame.attempt > s.attempts) continue;
    if (s.point == FaultPoint::kSlowNode) {
      if (s.node >= 0 && frame.node != s.node) continue;
      if (s.rate > 0.0 &&
          Draw(i, static_cast<std::uint64_t>(task), record) >= s.rate) {
        continue;
      }
      slowed_records_->Increment();
      SleepMs(s.delay_ms);
    } else if (s.point == FaultPoint::kMapCrash) {
      if (s.task >= 0 && task != s.task) continue;
      if (s.record > 0) {
        if (record != s.record) continue;
      } else if (s.rate > 0.0) {
        if (Draw(i, static_cast<std::uint64_t>(task), record) >= s.rate) {
          continue;
        }
      }
      Fire(i, "map task " + std::to_string(task) + " record " +
                 std::to_string(record) + " attempt " +
                 std::to_string(frame.attempt));
    }
  }
}

void FaultInjector::OnReduceRecord(std::uint64_t record) {
  if (!has_point_[static_cast<int>(FaultPoint::kReduceCrash)]) return;
  const auto& frame = FaultScope::Current();
  if (frame.kind != FaultScope::Kind::kReduce) return;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kReduceCrash) continue;
    if (frame.attempt > s.attempts) continue;
    if (s.task >= 0 && frame.task != s.task) continue;
    if (s.record > 0) {
      if (record != s.record) continue;
    } else if (s.rate > 0.0) {
      if (Draw(i, static_cast<std::uint64_t>(frame.task), record) >= s.rate) {
        continue;
      }
    }
    Fire(i, "reduce task " + std::to_string(frame.task) + " output record " +
               std::to_string(record) + " attempt " +
               std::to_string(frame.attempt));
  }
}

void FaultInjector::OnReduceFold(std::uint64_t record) {
  if (!has_point_[static_cast<int>(FaultPoint::kSlowNode)]) return;
  const auto& frame = FaultScope::Current();
  if (frame.kind != FaultScope::Kind::kReduce) return;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kSlowNode) continue;
    if (frame.attempt > s.attempts) continue;
    if (s.node >= 0 && frame.node != s.node) continue;
    if (s.rate > 0.0 &&
        Draw(i, static_cast<std::uint64_t>(frame.task), record) >= s.rate) {
      continue;
    }
    slowed_records_->Increment();
    SleepMs(s.delay_ms);
  }
}

double FaultInjector::SlowNodeDelayMs(int node) const noexcept {
  double delay = 0.0;
  for (const FaultSpec& s : plan_.faults) {
    if (s.point != FaultPoint::kSlowNode) continue;
    if (s.node >= 0 && s.node != node) continue;
    delay = std::max(delay, s.delay_ms);
  }
  return delay;
}

void FaultInjector::OnShuffleFetch(int reducer, int map_task) {
  if (!has_point_[static_cast<int>(FaultPoint::kFetchStall)]) return;
  const auto& frame = FaultScope::Current();
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kFetchStall) continue;
    if (frame.attempt > s.attempts) continue;
    if (s.task >= 0 && map_task != s.task) continue;
    if (s.node >= 0 && reducer != s.node) continue;
    if (s.rate > 0.0 &&
        Draw(i, static_cast<std::uint64_t>(reducer),
             static_cast<std::uint64_t>(map_task)) >= s.rate) {
      continue;
    }
    CountOnly(i);
    SleepMs(s.delay_ms);
  }
}

void FaultInjector::FilterReplicas(std::vector<int>* replica_nodes,
                                   std::uint64_t block_id) {
  if (!has_point_[static_cast<int>(FaultPoint::kReplicaLoss)]) return;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kReplicaLoss) continue;
    if (s.block != FaultSpec::kAnyBlock && s.block != block_id) continue;
    auto drop = [&](int node) {
      if (s.node >= 0 && node != s.node) return false;
      if (s.rate > 0.0 &&
          Draw(i, block_id, static_cast<std::uint64_t>(node)) >= s.rate) {
        return false;
      }
      CountOnly(i);
      return true;
    };
    replica_nodes->erase(
        std::remove_if(replica_nodes->begin(), replica_nodes->end(), drop),
        replica_nodes->end());
  }
}

void FaultInjector::IoFault(FaultPoint point,
                            const std::filesystem::path& path,
                            std::uint64_t offset, std::size_t bytes) {
  // Never fire while unwinding: the cleanup I/O of an already-failed
  // attempt (e.g. a writer destructor flushing its abandoned buffer) is the
  // same logical fault and must not be counted or thrown twice.
  if (std::uncaught_exceptions() > 0) return;
  const std::string filename = path.filename().string();
  const auto& frame = FaultScope::Current();
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != point) continue;
    if (frame.attempt > s.attempts) continue;
    if (s.task >= 0 && frame.task != s.task) continue;
    if (s.node >= 0 && frame.node != s.node) continue;
    if (!s.tag.empty() && filename.find(s.tag) == std::string::npos) continue;
    if (s.after_bytes > 0) {
      // Fire on the op that crosses the byte threshold.
      if (!(offset < s.after_bytes && offset + bytes >= s.after_bytes)) {
        continue;
      }
    } else if (s.rate > 0.0) {
      // Rate is per physical I/O operation, keyed by (file, offset).
      if (Draw(i, BytesHash(Slice(filename.data(), filename.size()), 0x10f5),
               offset) >= s.rate) {
        continue;
      }
    }
    Fire(i, filename + " offset " + std::to_string(offset) + " (" +
               std::to_string(bytes) + " bytes)");
  }
}

bool FaultInjector::OnFrameSend(std::uint64_t frame_seq, int attempt) {
  const bool drop = has_point_[static_cast<int>(FaultPoint::kConnDrop)];
  const bool stall = has_point_[static_cast<int>(FaultPoint::kNetStall)];
  if (!drop && !stall) return false;
  bool dropped = false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kConnDrop && s.point != FaultPoint::kNetStall) {
      continue;
    }
    if (attempt > s.attempts) continue;
    if (s.record > 0) {
      if (frame_seq != s.record) continue;
    } else if (s.rate > 0.0) {
      if (Draw(i, frame_seq, static_cast<std::uint64_t>(attempt)) >= s.rate) {
        continue;
      }
    }
    CountOnly(i);
    if (s.point == FaultPoint::kNetStall) {
      SleepMs(s.delay_ms);
    } else {
      dropped = true;
    }
  }
  return dropped;
}

bool FaultInjector::OnHeartbeatSend(const std::string& worker,
                                    std::uint64_t ordinal, int generation) {
  if (!has_point_[static_cast<int>(FaultPoint::kHeartbeatLoss)]) return false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kHeartbeatLoss) continue;
    // `attempts` budgets the registration generation: the default of 1
    // starves only the first generation, so once the worker is evicted and
    // rejoins, its generation-2 heartbeats flow and the lease holds.
    if (generation > s.attempts) continue;
    if (!s.tag.empty() && worker != s.tag) continue;
    if (s.record > 0) {
      if (ordinal < s.record) continue;  // suppress from ordinal N onward
    } else if (s.rate > 0.0) {
      if (Draw(i, BytesHash(Slice(worker.data(), worker.size()), 0x48b),
               ordinal) >= s.rate) {
        continue;
      }
    }
    CountOnly(i);
    return true;
  }
  return false;
}

bool FaultInjector::OnRegisterSend(const std::string& worker, int attempt) {
  if (!has_point_[static_cast<int>(FaultPoint::kRegistryPartition)]) {
    return false;
  }
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kRegistryPartition) continue;
    if (attempt > s.attempts) continue;
    if (!s.tag.empty() && worker != s.tag) continue;
    CountOnly(i);
    return true;
  }
  return false;
}

bool FaultInjector::OnServerFrameApply(std::uint64_t seq,
                                       int receive_attempt) {
  if (!has_point_[static_cast<int>(FaultPoint::kPeerCrash)]) return false;
  for (std::size_t i = 0; i < plan_.faults.size(); ++i) {
    const FaultSpec& s = plan_.faults[i];
    if (s.point != FaultPoint::kPeerCrash) continue;
    if (receive_attempt > s.attempts) continue;
    if (s.record > 0) {
      if (seq != s.record) continue;
    } else if (s.rate > 0.0) {
      if (Draw(i, seq, static_cast<std::uint64_t>(receive_attempt)) >=
          s.rate) {
        continue;
      }
    }
    CountOnly(i);
    return true;
  }
  return false;
}

void FaultInjector::BeforeWrite(const std::filesystem::path& path,
                                std::uint64_t offset, std::size_t bytes) {
  if (!has_point_[static_cast<int>(FaultPoint::kIoWrite)]) return;
  IoFault(FaultPoint::kIoWrite, path, offset, bytes);
}

void FaultInjector::BeforeRead(const std::filesystem::path& path,
                               std::uint64_t offset, std::size_t bytes) {
  if (!has_point_[static_cast<int>(FaultPoint::kIoRead)]) return;
  IoFault(FaultPoint::kIoRead, path, offset, bytes);
}

}  // namespace opmr
