#include "replica/replica.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/crc32.h"
#include "common/slice.h"
#include "net/wire.h"

namespace opmr::replica {

namespace {

// True wall time, NOT the steady clock: these timestamps are written into
// replicated records and compared against a *different host's* clock after
// failover (SweepNow on the new leader).  steady_clock's epoch is per-host
// boot time, so cross-host comparison of steady stamps would either mass-
// expire every worker or never expire dead ones.
double NowWallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Registry snapshots are checkpoints of this pseudo-job; the worker slot
// carries the replica id.  Distinct from any real job's namespace the same
// way the serve plane's "<job>.serve" suffix is.
constexpr const char* kReplicaSnapshotJob = "coord.replica";

std::string EncodeWorkerState(const coord::WorkerInfo& w) {
  std::string out;
  AppendU32(out, static_cast<std::uint32_t>(w.endpoint.size()));
  out.append(w.endpoint);
  out.push_back(static_cast<char>(w.role));
  AppendU64(out, w.generation);
  std::uint64_t hb_bits = 0;
  static_assert(sizeof(hb_bits) == sizeof(w.last_heartbeat_s));
  std::memcpy(&hb_bits, &w.last_heartbeat_s, sizeof(hb_bits));
  AppendU64(out, hb_bits);
  out.push_back(w.alive ? 1 : 0);
  return out;
}

coord::WorkerInfo DecodeWorkerState(const std::string& id,
                                    const std::string& state) {
  coord::WorkerInfo w;
  w.id = id;
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (state.size() - pos < n) {
      throw std::runtime_error("replica: truncated worker state for '" + id +
                               "'");
    }
  };
  need(4);
  const std::uint32_t ep_len = DecodeU32(state.data() + pos);
  pos += 4;
  need(ep_len);
  w.endpoint.assign(state.data() + pos, ep_len);
  pos += ep_len;
  need(1 + 8 + 8 + 1);
  const auto role = static_cast<std::uint8_t>(state[pos++]);
  if (role > static_cast<std::uint8_t>(net::WireRole::kFrontend)) {
    throw std::runtime_error("replica: unknown role in worker state");
  }
  w.role = static_cast<net::WireRole>(role);
  w.generation = DecodeU64(state.data() + pos);
  pos += 8;
  std::uint64_t hb_bits = DecodeU64(state.data() + pos);
  pos += 8;
  std::memcpy(&w.last_heartbeat_s, &hb_bits, sizeof(hb_bits));
  w.alive = state[pos++] != 0;
  if (pos != state.size()) {
    throw std::runtime_error("replica: trailing bytes in worker state");
  }
  return w;
}

}  // namespace

std::vector<std::string> ApplyRecord(coord::WorkerRegistry* registry,
                                     const LogRecord& record) {
  switch (record.type) {
    case LogRecordType::kRegister:
      registry->Register(record.worker, record.endpoint,
                         static_cast<net::WireRole>(record.role),
                         record.now_s);
      return {};
    case LogRecordType::kHeartbeat:
      registry->Heartbeat(record.worker, record.generation, record.now_s);
      return {};
    case LogRecordType::kExpire:
      return registry->ExpireLeases(record.now_s, record.lease_s);
    case LogRecordType::kLost:
      return {};  // observability marker; no registry effect
  }
  return {};
}

CheckpointImage ImageFromRegistry(const coord::WorkerRegistry& registry,
                                  std::uint64_t applied_index,
                                  std::uint64_t leader_epoch) {
  CheckpointImage image;
  image.watermark = applied_index;
  image.feeds.emplace_back(0u, registry.epoch());
  image.feeds.emplace_back(1u, leader_epoch);
  for (const coord::WorkerInfo& w : registry.Dump()) {
    CheckpointImage::TableEntry e;
    e.key = w.id;
    e.state = EncodeWorkerState(w);
    image.entries.push_back(std::move(e));
  }
  return image;
}

void RestoreRegistryFromImage(const CheckpointImage& image,
                              coord::WorkerRegistry* registry,
                              std::uint64_t* leader_epoch) {
  std::uint64_t registry_epoch = 0;
  for (const auto& [feed, value] : image.feeds) {
    if (feed == 0) registry_epoch = value;
    if (feed == 1 && leader_epoch != nullptr) {
      *leader_epoch = std::max(*leader_epoch, value);
    }
  }
  std::vector<coord::WorkerInfo> workers;
  workers.reserve(image.entries.size());
  for (const CheckpointImage::TableEntry& e : image.entries) {
    workers.push_back(DecodeWorkerState(e.key, e.state));
  }
  registry->Restore(std::move(workers), registry_epoch);
}

CoordinatorReplica::CoordinatorReplica(net::Transport* transport,
                                       MetricRegistry* metrics,
                                       Options options)
    : transport_(transport),
      metrics_(metrics),
      options_(std::move(options)),
      elections_(metrics->Get("replica.elections")),
      stepdowns_(metrics->Get("replica.stepdowns")),
      log_appends_(metrics->Get("replica.log_appends")),
      records_applied_(metrics->Get("replica.records_applied")),
      snapshots_written_(metrics->Get("replica.snapshots_written")),
      snapshots_installed_(metrics->Get("replica.snapshots_installed")),
      stale_frames_(metrics->Get("replica.stale_frames")),
      redirects_(metrics->Get("replica.redirects")),
      registers_(metrics->Get("coord.registers")),
      heartbeats_(metrics->Get("coord.heartbeats")),
      stale_heartbeats_(metrics->Get("coord.stale_heartbeats")),
      auth_failures_(metrics->Get("coord.auth_failures")),
      workers_lost_(metrics->Get("coord.workers_lost")),
      workers_returned_(metrics->Get("coord.workers_returned")) {
  on_worker_lost_ = options_.on_worker_lost;
  on_worker_returned_ = options_.on_worker_returned;
  on_leadership_ = options_.on_leadership;

  changelog_ =
      std::make_unique<Changelog>(options_.changelog_dir, options_.replica_id);
  CheckpointOptions ckpt_options;
  ckpt_options.dir = options_.changelog_dir.string();
  snapshots_ = std::make_unique<CheckpointManager>(
      options_.changelog_dir, kReplicaSnapshotJob,
      static_cast<int>(options_.replica_id), ckpt_options, metrics_);
  Recover();

  for (const Peer& p : options_.peers) {
    PeerLink link;
    link.peer = p;
    // Dead peers must fail fast: one dial attempt per tick, not the
    // data-path's patient 20 — election latency rides on this.
    net::TcpTransport::Options topt;
    topt.connect_attempts = 1;
    topt.connect_backoff_ms = 5;
    topt.send_attempts = 1;
    link.transport =
        std::make_unique<net::TcpTransport>(metrics_, p.endpoint, topt);
    links_.emplace(p.id, std::move(link));
  }

  start_steady_s_ = NowSteady();
  last_sweep_steady_s_ = start_steady_s_;
  transport_->Listen([this](net::Connection* from, net::Frame frame) {
    HandleFrame(from, std::move(frame));
  });
  ticker_ = std::thread([this] { TickerLoop(); });
}

CoordinatorReplica::~CoordinatorReplica() { Stop(); }

void CoordinatorReplica::Stop() {
  {
    std::scoped_lock lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  for (auto& [id, link] : links_) {
    if (link.conn) link.conn->Close();
    if (link.transport) link.transport->Shutdown();
  }
}

double CoordinatorReplica::NowSteady() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CoordinatorReplica::Recover() {
  // Newest valid snapshot first, then the changelog suffix past its
  // watermark.  Both are local artifacts; if the group moved on while we
  // were down, the leader's SnapshotOffer supersedes all of this.
  if (auto image = snapshots_->LoadLatest()) {
    RestoreRegistryFromImage(*image, &registry_, &epoch_);
    applied_index_ = image->watermark;
    last_snapshot_index_ = image->watermark;
  }
  changelog_->Replay([this](std::uint64_t index, const LogRecord& rec) {
    if (index <= applied_index_) return;  // covered by the snapshot
    ApplyRecord(&registry_, rec);
    applied_index_ = index;
  });
}

bool CoordinatorReplica::is_leader() const {
  std::scoped_lock lock(mu_);
  return is_leader_;
}

std::uint64_t CoordinatorReplica::leader_epoch() const {
  std::scoped_lock lock(mu_);
  return epoch_;
}

std::uint32_t CoordinatorReplica::known_leader() const {
  std::scoped_lock lock(mu_);
  return leader_id_;
}

std::uint64_t CoordinatorReplica::applied_index() const {
  std::scoped_lock lock(mu_);
  return applied_index_;
}

std::uint64_t CoordinatorReplica::elections() const {
  std::scoped_lock lock(mu_);
  return election_count_;
}

bool CoordinatorReplica::WaitForLeadership(double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  return cv_.wait_until(lock, deadline, [this] { return is_leader_; });
}

bool CoordinatorReplica::WaitForLeader(double timeout_s,
                                       std::uint64_t min_epoch) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  return cv_.wait_until(lock, deadline, [this, min_epoch] {
    return leader_id_ != 0 && epoch_ >= min_epoch;
  });
}

bool CoordinatorReplica::WaitForWorkers(net::WireRole role, std::size_t n,
                                        double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  std::unique_lock lock(mu_);
  for (;;) {
    if (registry_.LiveCount(role) >= n) return true;
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return registry_.LiveCount(role) >= n;
    }
  }
}

void CoordinatorReplica::SetOnWorkerLost(
    std::function<void(const std::string&)> cb) {
  std::scoped_lock lock(cb_mu_);
  on_worker_lost_ = std::move(cb);
}

// --- Frame dispatch ----------------------------------------------------------

void CoordinatorReplica::HandleFrame(net::Connection* from, net::Frame frame) {
  try {
    switch (frame.type) {
      case net::FrameType::kRegister:
        HandleRegister(from, frame);
        return;
      case net::FrameType::kHeartbeat:
        HandleHeartbeat(from, frame);
        return;
      case net::FrameType::kVote:
      case net::FrameType::kLeaderClaim:
      case net::FrameType::kLogAppend:
      case net::FrameType::kSnapshotOffer:
      case net::FrameType::kLogAck:
        HandlePeerFrame(0, from, frame);
        return;
      default:
        return;  // not a coordination frame; ignore
    }
  } catch (const std::exception&) {
    // Drop the frame, never the process: this runs on the transport's
    // reader thread, where an escaped exception is std::terminate.  That
    // covers WireError (semantically corrupt payload on a CRC-clean
    // frame) and runtime_errors from the changelog/snapshot disk paths —
    // the sender retries, the next broadcast supersedes, or the leader's
    // lag detector re-seeds us.
  }
}

void CoordinatorReplica::AdoptEpochLocked(std::uint64_t epoch) {
  if (epoch <= epoch_) return;
  epoch_ = epoch;
  if (is_leader_ && epoch_ > claim_epoch_) {
    // Someone claimed a newer term while we thought we led: fence
    // ourselves immediately; the election tick re-evaluates from scratch.
    StepDownLocked();
  }
}

void CoordinatorReplica::HandlePeerFrame(std::uint32_t from_id_hint,
                                         net::Connection* from,
                                         const net::Frame& frame) {
  (void)from_id_hint;
  switch (frame.type) {
    case net::FrameType::kVote: {
      const auto msg = net::VoteMsg::Parse(frame);
      if (!PeerAuthOk(msg.auth)) {
        auth_failures_->Increment();
        return;
      }
      std::function<void(bool, std::uint64_t)> cb;
      std::uint64_t cb_epoch = 0;
      {
        std::scoped_lock lock(mu_);
        auto it = links_.find(msg.replica);
        if (it != links_.end()) it->second.last_heard_s = NowSteady();
        const bool was_leader = is_leader_;
        AdoptEpochLocked(msg.epoch);
        if (was_leader && !is_leader_) {
          std::scoped_lock cb_lock(cb_mu_);
          cb = on_leadership_;
          cb_epoch = epoch_;
        }
      }
      cv_.notify_all();
      if (cb) cb(false, cb_epoch);
      return;
    }
    case net::FrameType::kLeaderClaim: {
      const auto msg = net::LeaderClaimMsg::Parse(frame);
      if (!PeerAuthOk(msg.auth)) {
        auth_failures_->Increment();
        return;
      }
      std::function<void(bool, std::uint64_t)> cb;
      std::uint64_t cb_epoch = 0;
      {
        std::scoped_lock lock(mu_);
        if (msg.epoch < epoch_) {
          stale_frames_->Increment();
          return;
        }
        auto it = links_.find(msg.replica);
        if (it != links_.end()) it->second.last_heard_s = NowSteady();
        const bool was_leader = is_leader_;
        AdoptEpochLocked(msg.epoch);
        if (msg.epoch == epoch_) {
          leader_id_ = msg.replica;
          leader_endpoint_ = msg.endpoint;
          if (is_leader_ && msg.replica != options_.replica_id) {
            StepDownLocked();
          }
        }
        if (was_leader && !is_leader_) {
          std::scoped_lock cb_lock(cb_mu_);
          cb = on_leadership_;
          cb_epoch = epoch_;
        }
      }
      cv_.notify_all();
      if (cb) cb(false, cb_epoch);
      return;
    }
    case net::FrameType::kLogAppend: {
      const auto msg = net::LogAppendMsg::Parse(frame);
      if (!PeerAuthOk(msg.auth)) {
        auth_failures_->Increment();
        return;
      }
      net::LogAckMsg ack;
      ack.replica = options_.replica_id;
      ack.auth = options_.secret;
      {
        std::scoped_lock lock(mu_);
        if (msg.epoch < epoch_) {
          stale_frames_->Increment();
        } else {
          AdoptEpochLocked(msg.epoch);
          if (!is_leader_ && msg.index == applied_index_ + 1) {
            // A record that cannot be decoded (truncated payload, unknown
            // type — a CRC-clean lie) or persisted is dropped like a gap,
            // not allowed to escape the reader thread: the ack below
            // reports the unchanged applied index and the leader's lag
            // detector re-seeds us with a snapshot.
            try {
              LogRecord rec = LogRecord::DecodePayload(
                  static_cast<LogRecordType>(msg.record_type), msg.record);
              changelog_->Append(msg.index, rec);
              ApplyRecord(&registry_, rec);
              applied_index_ = msg.index;
              records_applied_->Increment();
              MaybeSnapshotLocked();
            } catch (const std::exception&) {
              stale_frames_->Increment();
            }
          }
          // A gap (or a duplicate) falls through: the cumulative ack below
          // tells the leader where we really are.
        }
        ack.epoch = epoch_;
        ack.index = applied_index_;
      }
      cv_.notify_all();
      try {
        from->Send(ack.ToFrame());
      } catch (const net::TransportError&) {
      }
      return;
    }
    case net::FrameType::kSnapshotOffer: {
      const auto msg = net::SnapshotOfferMsg::Parse(frame);
      if (!PeerAuthOk(msg.auth)) {
        auth_failures_->Increment();
        return;
      }
      net::LogAckMsg ack;
      ack.replica = options_.replica_id;
      ack.auth = options_.secret;
      {
        std::scoped_lock lock(mu_);
        if (msg.epoch < epoch_) {
          stale_frames_->Increment();
        } else if (Crc32(msg.bytes.data(), msg.bytes.size()) != msg.crc) {
          stale_frames_->Increment();  // corrupt in flight; leader retries
        } else if (!is_leader_ && msg.index >= applied_index_) {
          CheckpointImage image;
          try {
            image = ParseCheckpointImage(msg.bytes);
          } catch (const std::runtime_error&) {
            image.watermark = ~0ull;  // poison: skip install below
          }
          if (image.watermark == msg.index) {
            // Persist the image BEFORE touching any state, mirroring
            // MaybeSnapshotLocked's order.  Committing the rotation first
            // and then failing the write would leave the disk holding an
            // OLD snapshot plus a log whose first index jumps past it —
            // a restart would silently replay that gapped suffix onto the
            // stale base and could later elect a divergent leader.  If
            // the disk can't take the image, decline the whole install:
            // the ack reports the old applied index and the leader keeps
            // re-offering.
            bool durable = true;
            try {
              CheckpointImage to_write = image;
              snapshots_->Write(&to_write);
            } catch (const std::runtime_error&) {
              durable = false;
            }
            if (durable) {
              changelog_->Reset();  // the image covers everything so far
              AdoptEpochLocked(msg.epoch);
              RestoreRegistryFromImage(image, &registry_, &epoch_);
              applied_index_ = msg.index;
              last_snapshot_index_ = msg.index;
              snapshots_installed_->Increment();
            }
          }
        }
        ack.epoch = epoch_;
        ack.index = applied_index_;
      }
      cv_.notify_all();
      try {
        from->Send(ack.ToFrame());
      } catch (const net::TransportError&) {
      }
      return;
    }
    case net::FrameType::kLogAck: {
      const auto msg = net::LogAckMsg::Parse(frame);
      if (!PeerAuthOk(msg.auth)) {
        auth_failures_->Increment();
        return;
      }
      std::function<void(bool, std::uint64_t)> cb;
      std::uint64_t cb_epoch = 0;
      {
        std::scoped_lock lock(mu_);
        auto it = links_.find(msg.replica);
        if (it != links_.end()) {
          it->second.last_heard_s = NowSteady();
          it->second.acked = std::max(it->second.acked, msg.index);
        }
        const bool was_leader = is_leader_;
        AdoptEpochLocked(msg.epoch);
        if (was_leader && !is_leader_) {
          std::scoped_lock cb_lock(cb_mu_);
          cb = on_leadership_;
          cb_epoch = epoch_;
        }
      }
      if (cb) cb(false, cb_epoch);
      return;
    }
    default:
      return;
  }
}

// --- Worker-facing paths -----------------------------------------------------

void CoordinatorReplica::HandleRegister(net::Connection* from,
                                        const net::Frame& frame) {
  const auto msg = net::RegisterMsg::Parse(frame);
  if (!options_.secret.empty() &&
      !net::ConstantTimeEquals(options_.secret, msg.auth)) {
    auth_failures_->Increment();
    net::AbortMsg abort;
    abort.reason = "coordinator: authentication failed for worker '" +
                   msg.worker + "'";
    try {
      from->Send(abort.ToFrame());
    } catch (const net::TransportError&) {
    }
    return;
  }

  std::uint64_t index = 0;
  LogRecord rec;
  bool returned = false;
  bool redirect = false;
  net::LeaderClaimMsg claim;
  {
    // replicate_mu_ spans index assignment through the peer sends so two
    // concurrent handlers can't deliver their appends out of index order.
    std::scoped_lock order(replicate_mu_);
    {
      std::scoped_lock lock(mu_);
      if (!is_leader_) {
        // Redirect to the leader we last heard from — but only if we can
        // still hear it ourselves.  Bouncing a worker to a dead leader
        // costs it a full dial backoff on a closed port; silence is
        // better, because the worker retries here and lands the moment
        // the next claim settles.
        if (leader_id_ != 0 && leader_id_ != options_.replica_id &&
            !leader_endpoint_.empty()) {
          const auto it = links_.find(leader_id_);
          const bool leader_live =
              it != links_.end() && it->second.last_heard_s > 0.0 &&
              (NowSteady() - it->second.last_heard_s) * 1000.0 <
                  options_.election_timeout_ms;
          if (leader_live) {
            redirect = true;
            claim.replica = leader_id_;
            claim.epoch = epoch_;
            claim.endpoint = leader_endpoint_;
            claim.auth = options_.secret;  // the registrant already authed
          }
        }
      } else {
        rec.type = LogRecordType::kRegister;
        rec.worker = msg.worker;
        rec.endpoint = msg.endpoint;
        rec.role = static_cast<std::uint8_t>(msg.role);
        rec.now_s = NowWallSeconds();
        MutateLocked(rec, &index);
        member_conns_[msg.worker] = from;
        returned = suspects_.erase(msg.worker) > 0;
      }
    }
    if (index != 0) ReplicateRecord(index, rec);
  }
  cv_.notify_all();

  if (redirect) {
    redirects_->Increment();
    try {
      from->Send(claim.ToFrame());
    } catch (const net::TransportError&) {
    }
    return;
  }
  if (index == 0) return;  // not leader, no known leader: stay silent

  registers_->Increment();
  if (returned) {
    workers_returned_->Increment();
    std::function<void(const std::string&)> cb;
    {
      std::scoped_lock cb_lock(cb_mu_);
      cb = on_worker_returned_;
    }
    if (cb) cb(msg.worker);
  }
  BroadcastMembership();
}

void CoordinatorReplica::HandleHeartbeat(net::Connection* from,
                                         const net::Frame& frame) {
  const auto msg = net::HeartbeatMsg::Parse(frame);
  std::uint64_t index = 0;
  LogRecord rec;
  bool stale = false;
  net::Frame stale_reply;
  {
    // Same ordering fence as HandleRegister: index assignment and the
    // peer sends must not interleave across handler threads.
    std::scoped_lock order(replicate_mu_);
    {
      std::scoped_lock lock(mu_);
      if (!is_leader_) return;  // the worker's failover logic finds the leader
      coord::WorkerInfo info;
      const bool renewable = registry_.Lookup(msg.worker, &info) &&
                             info.alive && info.generation == msg.generation;
      if (renewable) {
        rec.type = LogRecordType::kHeartbeat;
        rec.worker = msg.worker;
        rec.generation = msg.generation;
        rec.now_s = NowWallSeconds();
        MutateLocked(rec, &index);
      } else {
        stale = true;
        stale_reply = MembershipFrameLocked();
      }
    }
    if (index != 0) ReplicateRecord(index, rec);
  }
  if (index != 0) heartbeats_->Increment();
  if (stale) {
    // Answer with the current view so the sender learns its fate without
    // waiting for the next broadcast.
    stale_heartbeats_->Increment();
    try {
      from->Send(stale_reply);
    } catch (const net::TransportError&) {
    }
  }
}

// --- Leader mutation / replication -------------------------------------------

std::vector<std::string> CoordinatorReplica::MutateLocked(
    const LogRecord& record, std::uint64_t* index_out) {
  const std::uint64_t index = applied_index_ + 1;
  changelog_->Append(index, record);
  std::vector<std::string> expired = ApplyRecord(&registry_, record);
  applied_index_ = index;
  log_appends_->Increment();
  records_applied_->Increment();
  MaybeSnapshotLocked();
  if (index_out != nullptr) *index_out = index;
  return expired;
}

bool CoordinatorReplica::PeerAuthOk(const std::string& auth) const {
  return options_.secret.empty() ||
         net::ConstantTimeEquals(options_.secret, auth);
}

void CoordinatorReplica::ReplicateRecord(std::uint64_t index,
                                         const LogRecord& record) {
  net::LogAppendMsg msg;
  msg.index = index;
  msg.record_type = static_cast<std::uint8_t>(record.type);
  msg.record = record.EncodePayload();
  msg.auth = options_.secret;
  std::vector<std::pair<std::uint32_t, std::shared_ptr<net::Connection>>> out;
  {
    std::scoped_lock lock(mu_);
    if (!is_leader_) return;
    msg.epoch = claim_epoch_;
    for (auto& [id, link] : links_) {
      if (link.conn && link.synced) out.emplace_back(id, link.conn);
    }
  }
  const net::Frame frame = msg.ToFrame();
  for (auto& [id, conn] : out) {
    try {
      conn->Send(frame);
    } catch (const net::TransportError&) {
      std::scoped_lock lock(mu_);
      auto it = links_.find(id);
      if (it != links_.end()) {
        it->second.synced = false;  // resync via snapshot on reconnect
        it->second.conn.reset();
      }
    }
  }
}

void CoordinatorReplica::OfferSnapshot(PeerLink* link) {
  net::SnapshotOfferMsg msg;
  msg.auth = options_.secret;
  std::shared_ptr<net::Connection> conn;
  {
    std::scoped_lock lock(mu_);
    if (!is_leader_ || !link->conn) return;
    msg.epoch = claim_epoch_;
    msg.index = applied_index_;
    msg.bytes = SerializeCheckpointImage(
        ImageFromRegistry(registry_, applied_index_, epoch_));
    msg.crc = Crc32(msg.bytes.data(), msg.bytes.size());
    conn = link->conn;
  }
  try {
    conn->Send(msg.ToFrame());
    std::scoped_lock lock(mu_);
    link->synced = true;
    link->lag_ticks = 0;
  } catch (const net::TransportError&) {
    std::scoped_lock lock(mu_);
    link->synced = false;
    link->conn.reset();
  }
}

void CoordinatorReplica::MaybeSnapshotLocked() {
  if (options_.snapshot_interval_records == 0) return;
  if (applied_index_ - last_snapshot_index_ <
      options_.snapshot_interval_records) {
    return;
  }
  CheckpointImage image = ImageFromRegistry(registry_, applied_index_, epoch_);
  try {
    snapshots_->Write(&image);
  } catch (const std::runtime_error&) {
    return;  // keep the log; retry at the next interval crossing
  }
  changelog_->Reset();  // rotation: the image covers everything so far
  last_snapshot_index_ = applied_index_;
  snapshots_written_->Increment();
}

// --- Election ----------------------------------------------------------------

void CoordinatorReplica::BecomeLeaderLocked() {
  ++epoch_;
  claim_epoch_ = epoch_;
  is_leader_ = true;
  leader_id_ = options_.replica_id;
  leader_endpoint_ = options_.endpoint;
  ++election_count_;
  elections_->Increment();
  // Standbys catch up by snapshot: their logs may hold a divergent or
  // stale suffix from the previous term.
  for (auto& [id, link] : links_) {
    link.synced = false;
    link.lag_ticks = 0;
  }
  // The inherited lease stamps were written by the PREVIOUS leader's wall
  // clock.  Re-stamp every live worker with ours — as replicated heartbeat
  // records, so standbys and a post-crash recovery replay the same view —
  // before the first sweep can compare them against a skewed local clock.
  // A worker that died with the old leader gets one fresh lease and then
  // expires on schedule; a membership gap stays bounded either way.
  const double now_s = NowWallSeconds();
  for (const coord::WorkerInfo& w : registry_.Dump()) {
    if (!w.alive) continue;
    LogRecord rec;
    rec.type = LogRecordType::kHeartbeat;
    rec.worker = w.id;
    rec.generation = w.generation;
    rec.now_s = now_s;
    MutateLocked(rec, nullptr);
  }
}

void CoordinatorReplica::StepDownLocked() {
  if (!is_leader_) return;
  is_leader_ = false;
  stepdowns_->Increment();
}

void CoordinatorReplica::EvaluateElection(double now_steady_s) {
  const double timeout_s = options_.election_timeout_ms / 1000.0;
  bool claimed = false;
  bool stepped_down = false;
  std::uint64_t cb_epoch = 0;
  {
    std::scoped_lock lock(mu_);
    std::uint32_t lowest_live = options_.replica_id;
    for (const auto& [id, link] : links_) {
      if (link.last_heard_s > 0.0 &&
          now_steady_s - link.last_heard_s <= timeout_s) {
        lowest_live = std::min(lowest_live, id);
      }
    }
    if (lowest_live == options_.replica_id) {
      // Startup grace: wait one election timeout before the first claim so
      // simultaneously-started replicas hear each other's votes and only
      // the true lowest id claims.
      if (!is_leader_ && now_steady_s - start_steady_s_ >= timeout_s) {
        BecomeLeaderLocked();
        claimed = true;
        cb_epoch = epoch_;
      }
    } else if (is_leader_) {
      // A lower live id is back; it will claim the next term.  Stop
      // serving now rather than race it.
      StepDownLocked();
      stepped_down = true;
      cb_epoch = epoch_;
    }
  }
  if (!claimed && !stepped_down) return;
  cv_.notify_all();
  std::function<void(bool, std::uint64_t)> cb;
  {
    std::scoped_lock cb_lock(cb_mu_);
    cb = on_leadership_;
  }
  if (cb) cb(claimed, cb_epoch);
  if (claimed) {
    // Announce the new term to the peers and push the (fenced) view to
    // every worker that registered with us.
    net::LeaderClaimMsg claim;
    std::vector<std::shared_ptr<net::Connection>> peers;
    {
      std::scoped_lock lock(mu_);
      claim.replica = options_.replica_id;
      claim.epoch = claim_epoch_;
      claim.endpoint = options_.endpoint;
      claim.auth = options_.secret;
      for (auto& [id, link] : links_) {
        if (link.conn) peers.push_back(link.conn);
      }
    }
    const net::Frame frame = claim.ToFrame();
    for (auto& conn : peers) {
      try {
        conn->Send(frame);
      } catch (const net::TransportError&) {
      }
    }
    BroadcastMembership();
  }
}

void CoordinatorReplica::TickerLoop() {
  std::unique_lock lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.vote_interval_ms));
    if (stopping_) return;
    lock.unlock();

    // 1. Liveness pings to every peer (dial lazily, drop on error).
    net::VoteMsg vote;
    std::vector<std::uint32_t> to_dial;
    std::vector<std::pair<std::uint32_t, std::shared_ptr<net::Connection>>>
        to_ping;
    {
      std::scoped_lock relock(mu_);
      vote.replica = options_.replica_id;
      vote.epoch = epoch_;
      vote.index = applied_index_;
      vote.auth = options_.secret;
      for (auto& [id, link] : links_) {
        if (link.conn) {
          to_ping.emplace_back(id, link.conn);
        } else {
          to_dial.push_back(id);
        }
      }
    }
    for (std::uint32_t id : to_dial) {
      std::shared_ptr<net::Connection> conn;
      try {
        conn = links_[id].transport->Connect(
            [this](net::Connection* from, net::Frame frame) {
              try {
                HandlePeerFrame(0, from, frame);
              } catch (const std::exception&) {
                // Reader-thread boundary, same as HandleFrame: a corrupt
                // payload or a changelog/snapshot disk error is a dropped
                // frame, never std::terminate.
              }
            });
      } catch (const net::TransportError&) {
        continue;  // peer down; retry next tick
      }
      std::scoped_lock relock(mu_);
      links_[id].conn = conn;
      to_ping.emplace_back(id, conn);
    }
    const net::Frame vote_frame = vote.ToFrame();
    for (auto& [id, conn] : to_ping) {
      try {
        conn->Send(vote_frame);
      } catch (const net::TransportError&) {
        std::scoped_lock relock(mu_);
        auto it = links_.find(id);
        if (it != links_.end() && it->second.conn == conn) {
          it->second.conn.reset();
          it->second.synced = false;
        }
      }
    }

    // 2. Election evaluation (may claim or step down).  Claiming appends
    // re-stamp records, and the sweep below appends expiries — both hit
    // the changelog, whose I/O errors must not escape this thread.  A
    // failed tick is retried at the next interval; the disk trouble shows
    // up in the snapshot/append counters, not as a dead coordinator.
    const double now_steady = NowSteady();
    try {
      EvaluateElection(now_steady);
    } catch (const std::exception&) {
    }

    // 3. Leader housekeeping: catch lagging peers up, sweep leases.
    std::vector<PeerLink*> to_offer;
    bool sweep_due = false;
    {
      std::scoped_lock relock(mu_);
      if (is_leader_) {
        for (auto& [id, link] : links_) {
          if (!link.conn) continue;
          if (!link.synced) {
            to_offer.push_back(&link);
          } else if (link.acked < applied_index_) {
            // Ack stagnation across several ticks means the peer dropped a
            // record (reconnect race): re-seed it with a snapshot.
            if (++link.lag_ticks >= 3) {
              link.synced = false;
              to_offer.push_back(&link);
            }
          } else {
            link.lag_ticks = 0;
          }
        }
        sweep_due = now_steady - last_sweep_steady_s_ >=
                    options_.sweep_interval_ms / 1000.0;
        if (sweep_due) last_sweep_steady_s_ = now_steady;
      }
    }
    for (PeerLink* link : to_offer) OfferSnapshot(link);
    if (sweep_due) {
      try {
        SweepNow();
      } catch (const std::exception&) {
      }
    }

    lock.lock();
  }
}

// --- Failure detector (leader only) ------------------------------------------

std::size_t CoordinatorReplica::SweepNow() { return SweepNow(NowWallSeconds()); }

std::size_t CoordinatorReplica::SweepNow(double now_s) {
  std::vector<std::string> expired;
  std::vector<std::string> lost;
  std::uint64_t expire_index = 0;
  LogRecord expire_rec;
  std::vector<std::pair<std::uint64_t, LogRecord>> lost_records;
  // Same ordering fence as the worker handlers: the expire/lost appends
  // must reach peers in index order relative to concurrent registers and
  // heartbeat renewals.  Released before the callbacks fire.
  std::unique_lock order(replicate_mu_);
  {
    std::scoped_lock lock(mu_);
    if (!is_leader_) return 0;
    // Only log a sweep that actually expires something — the log carries
    // mutations, not clock ticks.
    bool any = false;
    for (const coord::WorkerInfo& w : registry_.Dump()) {
      if (w.alive && now_s - w.last_heartbeat_s > options_.lease_s) {
        any = true;
        break;
      }
    }
    if (any) {
      expire_rec.type = LogRecordType::kExpire;
      expire_rec.now_s = now_s;
      expire_rec.lease_s = options_.lease_s;
      expired = MutateLocked(expire_rec, &expire_index);
    }
    for (const std::string& id : expired) {
      coord::WorkerInfo info;
      if (!registry_.Lookup(id, &info)) continue;
      suspects_[id] = Suspect{info.generation, now_s + options_.rejoin_grace_s};
    }
    for (auto it = suspects_.begin(); it != suspects_.end();) {
      coord::WorkerInfo info;
      const bool known = registry_.Lookup(it->first, &info);
      if (known && info.alive) {
        it = suspects_.erase(it);  // rejoined before the grace ran out
      } else if (now_s >= it->second.deadline_s) {
        lost.push_back(it->first);
        LogRecord lost_rec;
        lost_rec.type = LogRecordType::kLost;
        lost_rec.worker = it->first;
        std::uint64_t idx = 0;
        MutateLocked(lost_rec, &idx);
        lost_records.emplace_back(idx, std::move(lost_rec));
        it = suspects_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (expire_index != 0) ReplicateRecord(expire_index, expire_rec);
  for (const auto& [idx, rec] : lost_records) ReplicateRecord(idx, rec);
  order.unlock();
  if (!expired.empty()) BroadcastMembership();
  if (!lost.empty()) {
    std::function<void(const std::string&)> cb;
    {
      std::scoped_lock cb_lock(cb_mu_);
      cb = on_worker_lost_;
    }
    for (const std::string& id : lost) {
      workers_lost_->Increment();
      if (cb) cb(id);
    }
  }
  return expired.size();
}

// --- Membership fan-out ------------------------------------------------------

net::Frame CoordinatorReplica::MembershipFrameLocked() {
  net::MembershipMsg msg = registry_.Snapshot();
  msg.leader_epoch = claim_epoch_;
  msg.leader = options_.replica_id;
  return msg.ToFrame();
}

void CoordinatorReplica::BroadcastMembership() {
  net::Frame frame;
  std::vector<net::Connection*> conns;
  {
    std::scoped_lock lock(mu_);
    if (!is_leader_) return;
    frame = MembershipFrameLocked();
    conns.reserve(member_conns_.size());
    for (const auto& [id, conn] : member_conns_) conns.push_back(conn);
  }
  for (net::Connection* conn : conns) {
    try {
      conn->Send(frame);
    } catch (const net::TransportError&) {
      // Dead connection: the lease sweeper is the authority on worker
      // death, not a broadcast failure.
    }
  }
}

}  // namespace opmr::replica
