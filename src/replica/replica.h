// CoordinatorReplica: one member of a replicated coordinator group — the
// HA control plane.
//
// The replicated state machine is the WorkerRegistry.  Every mutation the
// leader performs (register, heartbeat renewal, lease expiry) is first
// appended to the local Changelog as a typed record, applied, and streamed
// to the standbys as kLogAppend frames; a standby applies records in index
// order into an identical registry.  Because the registry is caller-clocked
// and deterministic, leader and standbys agree byte-for-byte on the
// membership view at every applied index.
//
// Periodically (every `snapshot_interval_records` applied records) the
// registry is serialized through the checkpoint plane's image codec and
// committed with its atomic tmp+rename protocol; the changelog is then
// rotated.  A standby whose applied index falls behind (fresh start,
// reconnect, missed records) is caught up with a kSnapshotOffer carrying
// the full image, after which appends resume streaming.
//
// Election is deterministic: the lowest live replica id leads.  Replicas
// ping each other with kVote frames every `vote_interval_ms`; a peer
// silent for `election_timeout_ms` is presumed dead.  A replica that finds
// itself the lowest live id — after an initial startup grace of one
// election timeout, so simultaneous starts converge on exactly one claim —
// bumps the epoch (max seen + 1) and broadcasts kLeaderClaim.  Every
// leader-originated frame (appends, snapshot offers, membership
// broadcasts) carries the epoch, and receivers drop anything older: a
// deposed leader that keeps talking is fenced, not obeyed.
//
// Workers talk to whichever replica they can reach.  Only the leader
// serves Register/Heartbeat; a standby answers a worker's Register with a
// kLeaderClaim redirect naming the leader it last heard.  Suspect/lost
// bookkeeping (the two-stage failure detector) is leader-local and derived
// state: a new leader restarts the grace timers from its own clock, which
// only ever delays a `lost` signal, never fabricates one.
//
// Clocks: record timestamps (and the lease sweep that compares against
// them) use wall time, because they cross host boundaries on failover.
// Even so, a new leader re-stamps every live worker's lease with its own
// clock — as replicated heartbeat records — the moment it claims, so the
// first sweep never judges the previous leader's stamps against a skewed
// local clock.  Peer-silence detection and sweep cadence stay on the
// steady clock: they never leave this host.
//
// When `secret` is set, peer replication frames (Vote / LeaderClaim /
// LogAppend / SnapshotOffer / LogAck) must carry it; unauthenticated
// frames are dropped (constant-time compare, `coord.auth_failures`).
// Epoch fencing alone cannot stop a hostile process from deposing the
// leader with a high-epoch claim.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "coord/registry.h"
#include "metrics/counters.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "replica/changelog.h"

namespace opmr::replica {

// Applies one replicated record to `registry`.  Returns the expired worker
// ids for kExpire records (empty otherwise).  Exposed so tests can prove
// determinism by replaying a log into a fresh registry.
std::vector<std::string> ApplyRecord(coord::WorkerRegistry* registry,
                                     const LogRecord& record);

// Registry state <-> checkpoint-plane image (watermark = applied log
// index; feed 0 carries the registry epoch, feed 1 the leadership epoch).
[[nodiscard]] CheckpointImage ImageFromRegistry(
    const coord::WorkerRegistry& registry, std::uint64_t applied_index,
    std::uint64_t leader_epoch);
// Throws std::runtime_error on malformed entry state bytes.
void RestoreRegistryFromImage(const CheckpointImage& image,
                              coord::WorkerRegistry* registry,
                              std::uint64_t* leader_epoch);

class CoordinatorReplica {
 public:
  struct Peer {
    std::uint32_t id = 0;
    std::string endpoint;  // host:port the peer replica listens on
  };

  struct Options {
    std::uint32_t replica_id = 1;  // unique, >= 1; lowest live id leads
    std::vector<Peer> peers;       // the OTHER replicas of the group
    std::string endpoint;          // this replica's advertised endpoint
    std::filesystem::path changelog_dir;  // changelog + snapshot images
    std::string secret;            // worker Register auth (empty = off)
    double lease_s = 2.0;
    double rejoin_grace_s = 2.0;
    double sweep_interval_ms = 50;
    double vote_interval_ms = 50;       // peer liveness ping cadence
    double election_timeout_ms = 500;   // peer silence -> presumed dead;
                                        // also the startup claim grace
    std::uint64_t snapshot_interval_records = 256;  // log rotation period
    // Fired outside every lock.  on_leadership reports (leading, epoch) on
    // every transition of THIS replica.
    std::function<void(const std::string&)> on_worker_lost;
    std::function<void(const std::string&)> on_worker_returned;
    std::function<void(bool, std::uint64_t)> on_leadership;
  };

  // `transport` must already be bound (server mode); both worker traffic
  // and peer replication arrive on it.  Does not take ownership.
  CoordinatorReplica(net::Transport* transport, MetricRegistry* metrics,
                     Options options);
  ~CoordinatorReplica();

  CoordinatorReplica(const CoordinatorReplica&) = delete;
  CoordinatorReplica& operator=(const CoordinatorReplica&) = delete;

  // Stops the ticker and peer links.  The server transport is the
  // caller's to shut down (kill the process = kill -9 the coordinator).
  void Stop();

  [[nodiscard]] coord::WorkerRegistry& registry() { return registry_; }
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] std::uint64_t leader_epoch() const;
  [[nodiscard]] std::uint32_t known_leader() const;  // 0 = unknown
  [[nodiscard]] std::uint64_t applied_index() const;
  [[nodiscard]] std::uint64_t elections() const;

  // Blocks until this replica claims (or observes) leadership.
  bool WaitForLeadership(double timeout_s);
  // Blocks until SOME replica is known to lead at epoch >= `min_epoch`.
  bool WaitForLeader(double timeout_s, std::uint64_t min_epoch = 1);
  // Leader-side: blocks until >= n live workers of `role` are registered.
  bool WaitForWorkers(net::WireRole role, std::size_t n, double timeout_s);

  // One failure-detector pass at `now_s` (leader only; standbys return 0).
  std::size_t SweepNow();
  std::size_t SweepNow(double now_s);

  void SetOnWorkerLost(std::function<void(const std::string&)> cb);

 private:
  struct PeerLink {
    Peer peer;
    std::unique_ptr<net::TcpTransport> transport;
    std::shared_ptr<net::Connection> conn;
    double last_heard_s = 0.0;  // steady clock; 0 = never
    bool synced = false;        // appends may stream (snapshot landed)
    std::uint64_t acked = 0;    // cumulative applied index the peer acked
    int lag_ticks = 0;          // consecutive ticks acked < applied
  };

  void HandleFrame(net::Connection* from, net::Frame frame);
  void HandlePeerFrame(std::uint32_t from_id_hint, net::Connection* from,
                       const net::Frame& frame);
  void HandleRegister(net::Connection* from, const net::Frame& frame);
  void HandleHeartbeat(net::Connection* from, const net::Frame& frame);

  // Leader mutation path: append to the changelog, apply, and stream to
  // synced peers.  Requires mu_; sends happen after unlock via the
  // returned closure idiom (see .cc).
  std::vector<std::string> MutateLocked(const LogRecord& record,
                                        std::uint64_t* index_out);
  void ReplicateRecord(std::uint64_t index, const LogRecord& record);
  // True iff `auth` matches the configured secret (or auth is off).
  [[nodiscard]] bool PeerAuthOk(const std::string& auth) const;
  void OfferSnapshot(PeerLink* link);
  void MaybeSnapshotLocked();

  void TickerLoop();
  void EvaluateElection(double now_steady_s);
  void BecomeLeaderLocked();   // requires mu_
  void StepDownLocked();       // requires mu_
  void BroadcastMembership();
  [[nodiscard]] net::Frame MembershipFrameLocked();  // requires mu_

  void AdoptEpochLocked(std::uint64_t epoch);  // requires mu_
  void Recover();

  [[nodiscard]] double NowSteady() const;

  net::Transport* transport_;
  MetricRegistry* metrics_;
  Options options_;
  coord::WorkerRegistry registry_;

  Counter* elections_ = nullptr;
  Counter* stepdowns_ = nullptr;
  Counter* log_appends_ = nullptr;
  Counter* records_applied_ = nullptr;
  Counter* snapshots_written_ = nullptr;
  Counter* snapshots_installed_ = nullptr;
  Counter* stale_frames_ = nullptr;
  Counter* redirects_ = nullptr;
  Counter* registers_ = nullptr;
  Counter* heartbeats_ = nullptr;
  Counter* stale_heartbeats_ = nullptr;
  Counter* auth_failures_ = nullptr;
  Counter* workers_lost_ = nullptr;
  Counter* workers_returned_ = nullptr;

  std::mutex cb_mu_;
  std::function<void(const std::string&)> on_worker_lost_;
  std::function<void(const std::string&)> on_worker_returned_;
  std::function<void(bool, std::uint64_t)> on_leadership_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;

  // Serializes the leader's mutate-then-replicate sequences so appends
  // reach each peer link in index order: index assignment happens under
  // mu_ but the sends happen after unlocking it, and two concurrent
  // worker handlers could otherwise deliver n+1 before n — the standby
  // drops the gap and the leader pays a full snapshot resync.  Ordered
  // BEFORE mu_: acquire it only while mu_ is NOT held.
  std::mutex replicate_mu_;

  // Replication state.
  std::unique_ptr<Changelog> changelog_;
  std::unique_ptr<CheckpointManager> snapshots_;
  std::uint64_t applied_index_ = 0;
  std::uint64_t last_snapshot_index_ = 0;

  // Election state.
  std::uint64_t epoch_ = 0;          // highest leadership epoch seen
  std::uint64_t claim_epoch_ = 0;    // epoch of OUR claim while leading
  std::uint32_t leader_id_ = 0;      // 0 = unknown
  std::string leader_endpoint_;
  bool is_leader_ = false;
  double start_steady_s_ = 0.0;
  std::uint64_t election_count_ = 0;
  std::map<std::uint32_t, PeerLink> links_;

  // Leader-local worker bookkeeping (mirrors Coordinator).
  std::map<std::string, net::Connection*> member_conns_;
  struct Suspect {
    std::uint64_t generation = 0;
    double deadline_s = 0.0;
  };
  std::map<std::string, Suspect> suspects_;
  double last_sweep_steady_s_ = 0.0;

  std::thread ticker_;
};

}  // namespace opmr::replica
