// Changelog: the replicated coordinator's durable mutation log.
//
// Every WorkerRegistry mutation the leader performs is first serialized as
// one typed LogRecord and appended here, then applied to the in-memory
// registry, then streamed to the standbys as a kLogAppend frame.  Replaying
// the same record sequence into a fresh WorkerRegistry reproduces the
// leader's state byte-for-byte — the registry is caller-clocked (every
// mutation carries its timestamp inside the record), so replay is a pure
// function of the log.
//
// On-disk entry layout (little-endian), one entry per record:
//
//   [u32 magic 'OPLG'] [u8 type] [u64 index] [u32 payload_len]
//   [u32 crc] [payload]
//
// `crc` is CRC-32 over type, index, and the payload.  A torn or corrupt
// tail entry (crash mid-append) fails the magic/CRC check and replay stops
// there, truncating the file back to the last clean entry — the same
// "valid prefix wins" contract the checkpoint plane uses.
//
// The log is rotated, not compacted: after a registry snapshot covering
// applied index W is committed (checkpoint-plane image, watermark == W)
// the file is reset and subsequent entries carry indices > W.  Recovery
// loads the newest snapshot and replays only entries with index > W.
#pragma once

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <string>

namespace opmr::replica {

inline constexpr std::uint32_t kLogMagic = 0x474C504Fu;  // "OPLG"

enum class LogRecordType : std::uint8_t {
  kRegister = 1,   // worker (re)joined: endpoint, role, timestamp
  kHeartbeat = 2,  // lease renewal: generation, timestamp
  kExpire = 3,     // failure-detector sweep: timestamp, lease duration
  kLost = 4,       // suspect -> lost transition (observability marker)
};

[[nodiscard]] const char* LogRecordTypeName(LogRecordType type) noexcept;

// One registry mutation.  Field use per type:
//   kRegister:  worker, endpoint, role, now_s
//   kHeartbeat: worker, generation, now_s
//   kExpire:    now_s, lease_s
//   kLost:      worker
// Timestamps travel as the double's IEEE-754 bit pattern so a replayed
// mutation sees the EXACT value the leader clocked, not a re-rounded one.
struct LogRecord {
  LogRecordType type = LogRecordType::kRegister;
  std::string worker;
  std::string endpoint;
  std::uint8_t role = 0;  // net::WireRole as a raw byte
  std::uint64_t generation = 0;
  double now_s = 0.0;
  double lease_s = 0.0;

  // Payload codec (the bytes carried in kLogAppend frames and on disk).
  [[nodiscard]] std::string EncodePayload() const;
  // Throws std::runtime_error on truncated / trailing / unknown-type bytes.
  static LogRecord DecodePayload(LogRecordType type, const std::string& body);
};

class Changelog {
 public:
  // Opens (creating if missing) `<dir>/replica_<id>.oplog`, scans the
  // existing entries to find the last clean index, and truncates any torn
  // tail.  Throws std::runtime_error on I/O failure.
  Changelog(const std::filesystem::path& dir, std::uint32_t replica_id);
  ~Changelog();

  Changelog(const Changelog&) = delete;
  Changelog& operator=(const Changelog&) = delete;

  // Appends `record` at `index` (must be last_index() + 1 after a Reset-
  // aware recovery; the caller owns index assignment).  Flushes to the OS
  // but does not fsync — durability comes from the replica set, not the
  // disk; the log exists so a restarting replica catches up locally.
  void Append(std::uint64_t index, const LogRecord& record);

  // Replays every clean entry in file order.  Stops at (and truncates) the
  // first torn or corrupt entry.  Returns the number of entries visited.
  std::size_t Replay(
      const std::function<void(std::uint64_t, const LogRecord&)>& fn);

  // Truncates the log to empty — called right after a snapshot commit
  // (rotation) or a snapshot install (the local suffix is obsolete).
  void Reset();

  [[nodiscard]] std::uint64_t last_index() const noexcept {
    return last_index_;
  }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }

 private:
  std::filesystem::path path_;
  std::FILE* file_ = nullptr;
  std::uint64_t last_index_ = 0;  // highest clean index seen/appended
};

}  // namespace opmr::replica
