#include "replica/changelog.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/crc32.h"
#include "common/slice.h"

namespace opmr::replica {

namespace {

constexpr std::size_t kEntryHeaderBytes = 4 + 1 + 8 + 4 + 4;

std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void AppendBytes(std::string* out, const std::string& bytes) {
  AppendU32(*out, static_cast<std::uint32_t>(bytes.size()));
  out->append(bytes);
}

// Minimal bounds-checked cursor (the wire layer's WireReader is frame-
// typed; records travel both inside frames and inside the log file).
class Cursor {
 public:
  explicit Cursor(const std::string& body) : body_(body) {}

  std::uint8_t U8() { return static_cast<std::uint8_t>(*Take(1)); }
  std::uint32_t U32() { return DecodeU32(Take(4)); }
  std::uint64_t U64() { return DecodeU64(Take(8)); }
  std::string Bytes() {
    const std::uint32_t n = U32();
    return std::string(Take(n), n);
  }
  void ExpectExhausted(const char* what) const {
    if (pos_ != body_.size()) {
      throw std::runtime_error(std::string("changelog: trailing bytes in ") +
                               what);
    }
  }

 private:
  const char* Take(std::size_t n) {
    if (body_.size() - pos_ < n) {
      throw std::runtime_error("changelog: truncated record payload");
    }
    const char* p = body_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::string& body_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* LogRecordTypeName(LogRecordType type) noexcept {
  switch (type) {
    case LogRecordType::kRegister: return "register";
    case LogRecordType::kHeartbeat: return "heartbeat";
    case LogRecordType::kExpire: return "expire";
    case LogRecordType::kLost: return "lost";
  }
  return "unknown";
}

std::string LogRecord::EncodePayload() const {
  std::string out;
  switch (type) {
    case LogRecordType::kRegister:
      AppendBytes(&out, worker);
      AppendBytes(&out, endpoint);
      out.push_back(static_cast<char>(role));
      AppendU64(out, DoubleBits(now_s));
      break;
    case LogRecordType::kHeartbeat:
      AppendBytes(&out, worker);
      AppendU64(out, generation);
      AppendU64(out, DoubleBits(now_s));
      break;
    case LogRecordType::kExpire:
      AppendU64(out, DoubleBits(now_s));
      AppendU64(out, DoubleBits(lease_s));
      break;
    case LogRecordType::kLost:
      AppendBytes(&out, worker);
      break;
  }
  return out;
}

LogRecord LogRecord::DecodePayload(LogRecordType type,
                                   const std::string& body) {
  LogRecord rec;
  rec.type = type;
  Cursor in(body);
  switch (type) {
    case LogRecordType::kRegister:
      rec.worker = in.Bytes();
      rec.endpoint = in.Bytes();
      rec.role = in.U8();
      rec.now_s = BitsDouble(in.U64());
      break;
    case LogRecordType::kHeartbeat:
      rec.worker = in.Bytes();
      rec.generation = in.U64();
      rec.now_s = BitsDouble(in.U64());
      break;
    case LogRecordType::kExpire:
      rec.now_s = BitsDouble(in.U64());
      rec.lease_s = BitsDouble(in.U64());
      break;
    case LogRecordType::kLost:
      rec.worker = in.Bytes();
      break;
    default:
      throw std::runtime_error("changelog: unknown record type " +
                               std::to_string(static_cast<int>(type)));
  }
  in.ExpectExhausted(LogRecordTypeName(type));
  return rec;
}

Changelog::Changelog(const std::filesystem::path& dir,
                     std::uint32_t replica_id) {
  std::filesystem::create_directories(dir);
  path_ = dir / ("replica_" + std::to_string(replica_id) + ".oplog");
  // a+b: create if missing, never truncate what a previous run left.
  file_ = std::fopen(path_.c_str(), "a+b");
  if (file_ == nullptr) {
    throw std::runtime_error("changelog: cannot open " + path_.string());
  }
  // A pure scan pass establishes last_index_ and trims any torn tail;
  // recovery proper re-Replays with the caller's apply function.
  Replay([](std::uint64_t, const LogRecord&) {});
}

Changelog::~Changelog() {
  if (file_ != nullptr) std::fclose(file_);
}

void Changelog::Append(std::uint64_t index, const LogRecord& record) {
  const std::string payload = record.EncodePayload();
  std::string entry;
  entry.reserve(kEntryHeaderBytes + payload.size());
  AppendU32(entry, kLogMagic);
  entry.push_back(static_cast<char>(record.type));
  AppendU64(entry, index);
  AppendU32(entry, static_cast<std::uint32_t>(payload.size()));
  // CRC over type + index + payload: everything after the magic except the
  // length and the checksum itself, mirroring the frame layer.
  std::uint32_t crc = Crc32Update(kCrc32Init, entry.data() + 4, 9);
  crc = Crc32Final(Crc32Update(crc, payload.data(), payload.size()));
  AppendU32(entry, crc);
  entry.append(payload);
  if (::fseeko(file_, 0, SEEK_END) != 0 ||
      std::fwrite(entry.data(), 1, entry.size(), file_) != entry.size() ||
      std::fflush(file_) != 0) {
    throw std::runtime_error("changelog: append failed on " + path_.string());
  }
  last_index_ = index;
}

std::size_t Changelog::Replay(
    const std::function<void(std::uint64_t, const LogRecord&)>& fn) {
  if (::fseeko(file_, 0, SEEK_END) != 0) {
    throw std::runtime_error("changelog: seek failed on " + path_.string());
  }
  const auto file_size = static_cast<std::uint64_t>(::ftello(file_));
  std::string bytes(file_size, '\0');
  if (::fseeko(file_, 0, SEEK_SET) != 0 ||
      std::fread(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    throw std::runtime_error("changelog: read failed on " + path_.string());
  }

  std::size_t visited = 0;
  std::size_t clean = 0;  // byte offset past the last valid entry
  std::size_t pos = 0;
  last_index_ = 0;
  while (bytes.size() - pos >= kEntryHeaderBytes) {
    const char* base = bytes.data() + pos;
    if (DecodeU32(base) != kLogMagic) break;
    const auto type = static_cast<std::uint8_t>(base[4]);
    const std::uint64_t index = DecodeU64(base + 5);
    const std::uint32_t payload_len = DecodeU32(base + 13);
    const std::uint32_t stored_crc = DecodeU32(base + 17);
    if (bytes.size() - pos - kEntryHeaderBytes < payload_len) break;
    std::uint32_t crc = Crc32Update(kCrc32Init, base + 4, 9);
    crc = Crc32Final(Crc32Update(crc, base + kEntryHeaderBytes, payload_len));
    if (crc != stored_crc) break;
    LogRecord rec;
    try {
      rec = LogRecord::DecodePayload(
          static_cast<LogRecordType>(type),
          std::string(base + kEntryHeaderBytes, payload_len));
    } catch (const std::runtime_error&) {
      break;  // CRC collision or unknown type: treat as torn tail
    }
    pos += kEntryHeaderBytes + payload_len;
    clean = pos;
    last_index_ = index;
    ++visited;
    fn(index, rec);
  }

  if (clean < bytes.size()) {
    // Torn tail from a crash mid-append: truncate back to the clean prefix
    // so the next Append never interleaves with garbage.
    std::fclose(file_);
    file_ = nullptr;
    std::filesystem::resize_file(path_, clean);
    file_ = std::fopen(path_.c_str(), "a+b");
    if (file_ == nullptr) {
      throw std::runtime_error("changelog: reopen failed on " +
                               path_.string());
    }
  }
  return visited;
}

void Changelog::Reset() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");  // truncate
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = std::fopen(path_.c_str(), "a+b");
  }
  if (file_ == nullptr) {
    throw std::runtime_error("changelog: reset failed on " + path_.string());
  }
}

}  // namespace opmr::replica
