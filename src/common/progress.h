// Progress reporter (paper Fig. 5, "progress reporter").
//
// Tasks publish fractional progress; the cluster executor aggregates it into
// job-level map/reduce progress exactly the way Hadoop's JobTracker reports
// "map 57% reduce 12%".  Lock-free publication, snapshot reads.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace opmr {

class ProgressReporter {
 public:
  explicit ProgressReporter(std::size_t num_tasks)
      : cells_(num_tasks) {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

  // progress in [0,1]; stored in parts-per-million to stay lock-free.
  void Report(std::size_t task, double progress) noexcept {
    auto ppm = static_cast<std::uint32_t>(progress * 1e6);
    if (ppm > 1000000u) ppm = 1000000u;
    cells_[task].store(ppm, std::memory_order_relaxed);
  }

  [[nodiscard]] double TaskProgress(std::size_t task) const noexcept {
    return cells_[task].load(std::memory_order_relaxed) / 1e6;
  }

  // Mean progress across all tasks — the JobTracker-style percentage.
  [[nodiscard]] double OverallProgress() const noexcept {
    if (cells_.empty()) return 1.0;
    double sum = 0.0;
    for (const auto& c : cells_) sum += c.load(std::memory_order_relaxed);
    return sum / (1e6 * static_cast<double>(cells_.size()));
  }

  [[nodiscard]] std::size_t num_tasks() const noexcept { return cells_.size(); }

 private:
  std::vector<std::atomic<std::uint32_t>> cells_;
};

}  // namespace opmr
