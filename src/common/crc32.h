// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), shared by the
// checkpoint commit protocol and the network frame layer.
//
// Two forms are provided: the one-shot Crc32() over a contiguous buffer,
// and a streaming (Init/Update/Final) triple so callers can checksum a
// frame header and its payload without concatenating them first.  The two
// compose: Crc32(buf) == Crc32Final(Crc32Update(kCrc32Init, buf, n)).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace opmr {

inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;

namespace detail {
inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

// Advances an in-progress CRC state (seeded with kCrc32Init) over `size`
// more bytes.  The state is the raw register, NOT a finished checksum.
[[nodiscard]] inline std::uint32_t Crc32Update(std::uint32_t state,
                                               const char* data,
                                               std::size_t size) noexcept {
  const auto& table = detail::Crc32Table();
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

[[nodiscard]] inline std::uint32_t Crc32Final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

// One-shot checksum of a contiguous buffer.
[[nodiscard]] inline std::uint32_t Crc32(const char* data,
                                         std::size_t size) noexcept {
  return Crc32Final(Crc32Update(kCrc32Init, data, size));
}

}  // namespace opmr
