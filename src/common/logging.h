// Minimal leveled logger (paper Fig. 5, "system log manager").
//
// Thread-safe, printf-free: messages are formatted with ostream insertion
// into a per-call buffer and emitted atomically.  Benchmarks run with level
// kWarn so logging never perturbs measured CPU time.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace opmr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  void Emit(LogLevel level, std::string_view msg) {
    if (level < level_) return;
    std::scoped_lock lock(mu_);
    std::clog << "[" << Name(level) << "] " << msg << '\n';
  }

 private:
  static std::string_view Name(LogLevel level) noexcept {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
    }
    return "?";
  }

  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

// Streams a log record; the whole expression builds the message locally so
// concurrent LOG calls never interleave bytes.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Emit(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace opmr

#define OPMR_LOG(level) ::opmr::LogMessage(::opmr::LogLevel::level)
