// Human-readable formatting helpers shared by benches and reports.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace opmr {

// "269 GB", "1.8 GB", "64 MB", "412 B" — mirrors the units the paper's
// Table I uses.
inline std::string HumanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  while (bytes >= 1000.0 && unit < 5) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (bytes >= 100 || unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", bytes, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, kUnits[unit]);
  }
  return buf;
}

// "76 min.", "4.2 s" — matches the paper's completion-time column.
inline std::string HumanSeconds(double seconds) {
  char buf[32];
  if (seconds >= 90.0) {
    std::snprintf(buf, sizeof(buf), "%.0f min.", seconds / 60.0);
  } else if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  }
  return buf;
}

inline std::string Percent(double fraction) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

// Fixed-width ASCII table used by every bench binary to print paper-style
// tables.  Column widths auto-fit the content.
class TextTable {
 public:
  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  [[nodiscard]] std::string ToString() const {
    std::vector<std::size_t> widths;
    for (const auto& row : rows_) {
      if (widths.size() < row.size()) widths.resize(row.size(), 0);
      for (std::size_t c = 0; c < row.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    std::string out;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        out += rows_[r][c];
        if (c + 1 < rows_[r].size()) {
          out.append(widths[c] - rows_[r][c].size() + 2, ' ');
        }
      }
      out += '\n';
      if (r == 0) {  // underline header
        std::size_t total = 0;
        for (std::size_t c = 0; c < widths.size(); ++c) {
          total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
        }
        out.append(total, '-');
        out += '\n';
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace opmr
