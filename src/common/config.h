// Typed key-value configuration used by examples and bench binaries to
// accept Hadoop-style "-Dkey=value" overrides on the command line.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

namespace opmr {

class Config {
 public:
  Config() = default;

  void Set(std::string key, std::string value) {
    values_[std::move(key)] = std::move(value);
  }

  // Parses argv, consuming "key=value" and "--key=value" tokens.  Unknown
  // positional arguments raise: bench binaries have no positional inputs.
  static Config FromArgs(int argc, char** argv) {
    Config cfg;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      while (!arg.empty() && arg.front() == '-') arg.erase(arg.begin());
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        cfg.Set(arg, "true");  // boolean flag form: --verbose
      } else {
        cfg.Set(arg.substr(0, eq), arg.substr(eq + 1));
      }
    }
    return cfg;
  }

  [[nodiscard]] std::optional<std::string> Get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::string GetString(const std::string& key,
                                      std::string def) const {
    auto v = Get(key);
    return v ? *v : std::move(def);
  }

  [[nodiscard]] std::int64_t GetInt(const std::string& key,
                                    std::int64_t def) const {
    auto v = Get(key);
    return v ? std::stoll(*v) : def;
  }

  [[nodiscard]] double GetDouble(const std::string& key, double def) const {
    auto v = Get(key);
    return v ? std::stod(*v) : def;
  }

  [[nodiscard]] bool GetBool(const std::string& key, bool def) const {
    auto v = Get(key);
    if (!v) return def;
    return *v == "true" || *v == "1" || *v == "yes";
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace opmr
