// Hash-function library (paper Fig. 5).
//
// The hash-based runtimes need families of pair-wise independent hash
// functions: the hybrid-hash reducer must re-hash recursively with fresh
// functions per level, and the frequent-items sketches assume independence
// between the partitioning hash and the sketch hash.  We provide:
//
//   * BytesHash     — fast 64-bit mixing hash for raw byte strings
//                     (xxHash-style avalanche; the workhorse partitioner).
//   * MultiplyShift — the classic 2-universal multiply-shift family over
//                     64-bit words, seeded per instance.
//   * TabulationHash— 3-independent simple tabulation over bytes.
//   * HashFamily    — indexed generator of independent functions so each
//                     recursion level / component draws its own member.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

#include "common/slice.h"

namespace opmr {

namespace detail {
constexpr std::uint64_t kMix1 = 0xff51afd7ed558ccdULL;
constexpr std::uint64_t kMix2 = 0xc4ceb9fe1a85ec53ULL;

inline std::uint64_t Mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= kMix1;
  x ^= x >> 33;
  x *= kMix2;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t Load64(const char* p, std::size_t n) noexcept {
  std::uint64_t v = 0;
  std::memcpy(&v, p, n);
  return v;
}
}  // namespace detail

// Seeded byte-string hash with full 64-bit avalanche.  Distinct seeds give
// (empirically) independent functions; we verify low collision correlation
// in the property tests.
inline std::uint64_t BytesHash(Slice s, std::uint64_t seed = 0) noexcept {
  std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ULL + s.size());
  const char* p = s.data();
  std::size_t n = s.size();
  while (n >= 8) {
    h = detail::Mix64(h ^ detail::Load64(p, 8));
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    h = detail::Mix64(h ^ detail::Load64(p, n));
  }
  return detail::Mix64(h);
}

// 2-universal multiply-shift family over 64-bit inputs:
//   h_{a,b}(x) = ((a*x + b) >> (64 - out_bits)) for odd a.
class MultiplyShift {
 public:
  MultiplyShift(std::uint64_t a, std::uint64_t b, unsigned out_bits) noexcept
      : a_(a | 1), b_(b), shift_(64u - out_bits) {}

  [[nodiscard]] std::uint64_t operator()(std::uint64_t x) const noexcept {
    return (a_ * x + b_) >> shift_;
  }

 private:
  std::uint64_t a_;
  std::uint64_t b_;
  unsigned shift_;
};

// 3-independent simple tabulation hashing over byte strings.  Tables are
// filled from a seeded SplitMix64 stream.  Strings longer than kMaxLanes
// bytes are first compressed with BytesHash and then tabulated, preserving
// the independence of the outer family.
class TabulationHash {
 public:
  static constexpr std::size_t kMaxLanes = 8;

  explicit TabulationHash(std::uint64_t seed) noexcept {
    std::uint64_t state = seed;
    auto next = [&state]() noexcept {
      state += 0x9e3779b97f4a7c15ULL;
      return detail::Mix64(state);
    };
    for (auto& lane : tables_) {
      for (auto& entry : lane) entry = next();
    }
  }

  [[nodiscard]] std::uint64_t operator()(Slice s) const noexcept {
    std::uint64_t word;
    if (s.size() <= kMaxLanes) {
      word = detail::Load64(s.data(), s.size()) ^
             (static_cast<std::uint64_t>(s.size()) << 56);
    } else {
      word = BytesHash(s);
    }
    std::uint64_t h = 0;
    for (std::size_t i = 0; i < kMaxLanes; ++i) {
      h ^= tables_[i][(word >> (8 * i)) & 0xff];
    }
    return h;
  }

 private:
  std::array<std::array<std::uint64_t, 256>, kMaxLanes> tables_;
};

// Draws independent hash functions by index: member i applies BytesHash with
// a seed derived from (family_seed, i) through a full mix.  Used by the
// hybrid-hash reducer (one member per recursion level) and by sketches.
class HashFamily {
 public:
  explicit HashFamily(std::uint64_t family_seed) noexcept
      : family_seed_(family_seed) {}

  [[nodiscard]] std::uint64_t Hash(std::size_t member, Slice s) const noexcept {
    return BytesHash(s, detail::Mix64(family_seed_ ^ (member * detail::kMix1)));
  }

 private:
  std::uint64_t family_seed_;
};

// Transparent hashing so byte-keyed std::unordered_map containers can be
// probed with a string_view and never allocate per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view sv) const noexcept {
    return std::hash<std::string_view>{}(sv);
  }
  [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace opmr
