// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78), used by the
// network frame layer (protocol v5+).
//
// Same streaming API shape as crc32.h — Crc32c(buf) ==
// Crc32cFinal(Crc32cUpdate(kCrc32cInit, buf, n)) — but a different
// polynomial: Castagnoli is the one modern CPUs accelerate.  On x86-64
// the SSE4.2 `crc32` instruction is used when the CPU reports it, on
// AArch64 the ARMv8 CRC32 extension; otherwise a table-driven software
// path computes the identical value.  Dispatch is decided once at first
// use, so the per-call cost is a single indirect branch.
//
// The checkpoint/changelog planes keep the IEEE polynomial in crc32.h:
// their checksums are persisted on disk and must not change meaning.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#if defined(__aarch64__)
#include <arm_acle.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

namespace opmr {

inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;

namespace detail {

inline const std::array<std::uint32_t, 256>& Crc32cTable() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0x82F63B78u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("sse4.2"))) inline std::uint32_t Crc32cUpdateHw(
    std::uint32_t state, const char* data, std::size_t size) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
#if defined(__x86_64__)
  std::uint64_t s64 = state;
  while (size >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    s64 = __builtin_ia32_crc32di(s64, word);
    p += 8;
    size -= 8;
  }
  state = static_cast<std::uint32_t>(s64);
#endif
  while (size > 0) {
    state = __builtin_ia32_crc32qi(state, *p);
    ++p;
    --size;
  }
  return state;
}

inline bool Crc32cHwProbe() noexcept {
  return __builtin_cpu_supports("sse4.2") != 0;
}
#elif defined(__aarch64__)
__attribute__((target("+crc"))) inline std::uint32_t Crc32cUpdateHw(
    std::uint32_t state, const char* data, std::size_t size) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  while (size >= 8) {
    std::uint64_t word;
    __builtin_memcpy(&word, p, 8);
    state = __crc32cd(state, word);
    p += 8;
    size -= 8;
  }
  while (size > 0) {
    state = __crc32cb(state, *p);
    ++p;
    --size;
  }
  return state;
}

inline bool Crc32cHwProbe() noexcept {
#if defined(__linux__) && defined(HWCAP_CRC32)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
  return false;
#endif
}
#else
inline std::uint32_t Crc32cUpdateHw(std::uint32_t state, const char*,
                                    std::size_t) noexcept {
  return state;  // unreachable: Crc32cHwProbe() is false on this target
}

inline bool Crc32cHwProbe() noexcept { return false; }
#endif

}  // namespace detail

// Portable table-driven path; exposed so the equivalence test can compare
// it against the hardware path on machines that have one.
[[nodiscard]] inline std::uint32_t Crc32cUpdateSoftware(
    std::uint32_t state, const char* data, std::size_t size) noexcept {
  const auto& table = detail::Crc32cTable();
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ static_cast<std::uint8_t>(data[i])) & 0xFFu] ^
            (state >> 8);
  }
  return state;
}

// True when the running CPU accelerates CRC-32C (decided once).
[[nodiscard]] inline bool Crc32cHardwareAvailable() noexcept {
  static const bool available = detail::Crc32cHwProbe();
  return available;
}

// Hardware path without the dispatch; callers must check
// Crc32cHardwareAvailable() first (the test does).
[[nodiscard]] inline std::uint32_t Crc32cUpdateHardware(
    std::uint32_t state, const char* data, std::size_t size) noexcept {
  return detail::Crc32cUpdateHw(state, data, size);
}

// Advances an in-progress CRC-32C state (seeded with kCrc32cInit) over
// `size` more bytes.  The state is the raw register, NOT a finished
// checksum.
[[nodiscard]] inline std::uint32_t Crc32cUpdate(std::uint32_t state,
                                                const char* data,
                                                std::size_t size) noexcept {
  return Crc32cHardwareAvailable() ? detail::Crc32cUpdateHw(state, data, size)
                                   : Crc32cUpdateSoftware(state, data, size);
}

[[nodiscard]] inline std::uint32_t Crc32cFinal(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

// One-shot checksum of a contiguous buffer.
[[nodiscard]] inline std::uint32_t Crc32c(const char* data,
                                          std::size_t size) noexcept {
  return Crc32cFinal(Crc32cUpdate(kCrc32cInit, data, size));
}

}  // namespace opmr
