// Byte-slice primitives for the OPMR dataflow.
//
// The paper's system (Fig. 5, "byte array based memory management library")
// keeps all key/value data in flat byte arrays to avoid per-record object
// overhead.  `Slice` is the non-owning view type every map/combine/reduce
// function operates on; records never exist as individual heap objects.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace opmr {

// A non-owning view of a contiguous byte range.  Comparable lexicographically
// (byte order), which is the order Hadoop's sort-merge path uses for raw keys.
class Slice {
 public:
  constexpr Slice() noexcept : data_(nullptr), size_(0) {}
  constexpr Slice(const char* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors string_view ergonomics.
  Slice(const std::string& s) noexcept : data_(s.data()), size_(s.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  constexpr Slice(std::string_view sv) noexcept
      : data_(sv.data()), size_(sv.size()) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Slice(const char* cstr) noexcept : data_(cstr), size_(std::strlen(cstr)) {}

  [[nodiscard]] constexpr const char* data() const noexcept { return data_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] constexpr char operator[](std::size_t i) const noexcept {
    return data_[i];
  }

  [[nodiscard]] std::string ToString() const { return {data_, size_}; }
  [[nodiscard]] constexpr std::string_view view() const noexcept {
    return {data_, size_};
  }

  // Drops the first `n` bytes (n must be <= size()).
  constexpr void RemovePrefix(std::size_t n) noexcept {
    data_ += n;
    size_ -= n;
  }

  [[nodiscard]] int compare(const Slice& other) const noexcept {
    const std::size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : std::memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = 1;
    }
    return r;
  }

  friend bool operator==(const Slice& a, const Slice& b) noexcept {
    return a.size_ == b.size_ &&
           (a.size_ == 0 || std::memcmp(a.data_, b.data_, a.size_) == 0);
  }
  friend bool operator!=(const Slice& a, const Slice& b) noexcept {
    return !(a == b);
  }
  friend bool operator<(const Slice& a, const Slice& b) noexcept {
    return a.compare(b) < 0;
  }

 private:
  const char* data_;
  std::size_t size_;
};

// Little-endian fixed-width encode/decode helpers used by every on-disk and
// in-memory record format in the repository.
inline void EncodeU32(char* dst, std::uint32_t v) noexcept {
  std::memcpy(dst, &v, sizeof(v));
}
inline std::uint32_t DecodeU32(const char* src) noexcept {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
inline void EncodeU64(char* dst, std::uint64_t v) noexcept {
  std::memcpy(dst, &v, sizeof(v));
}
inline std::uint64_t DecodeU64(const char* src) noexcept {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

inline void AppendU32(std::string& dst, std::uint32_t v) {
  dst.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void AppendU64(std::string& dst, std::uint64_t v) {
  dst.append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace opmr
