// Arena allocator: the core of the paper's byte-array memory-management
// library.  Map-output buffers, hash-table states and spill staging all
// allocate from arenas so that a whole buffer is released in O(1) and no
// per-record allocation ever reaches the general-purpose heap.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <vector>

#include "common/slice.h"

namespace opmr {

// Bump allocator over a chain of fixed-size chunks.  Not thread-safe by
// design: each task thread owns its arenas (CP.2 — avoid sharing).
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1 << 20;  // 1 MiB

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  // Allocates `n` bytes (unaligned; byte data only).  Returns a stable
  // pointer: chunks are never reallocated, so slices into the arena remain
  // valid until Reset()/destruction.
  char* Allocate(std::size_t n) {
    if (n > chunk_bytes_) {
      // Oversized allocation gets a dedicated chunk so we never waste more
      // than one partial chunk of slack.
      auto& chunk = *chunks_.emplace(chunks_.end() - (chunks_.empty() ? 0 : 1),
                                     std::make_unique<char[]>(n));
      allocated_ += n;
      return chunk.get();
    }
    if (pos_ + n > cap_) {
      chunks_.push_back(std::make_unique<char[]>(chunk_bytes_));
      pos_ = 0;
      cap_ = chunk_bytes_;
      allocated_ += chunk_bytes_;
    }
    char* out = chunks_.back().get() + pos_;
    pos_ += n;
    return out;
  }

  // Copies `src` into the arena and returns a stable view of the copy.
  Slice Copy(Slice src) {
    if (src.empty()) return {};
    char* dst = Allocate(src.size());
    std::memcpy(dst, src.data(), src.size());
    return {dst, src.size()};
  }

  // Bytes reserved from the OS (an upper bound on bytes handed out).
  [[nodiscard]] std::size_t allocated_bytes() const noexcept {
    return allocated_;
  }
  // Bytes actually handed out to callers in the current chunk chain.
  [[nodiscard]] std::size_t used_bytes() const noexcept {
    return allocated_ - (cap_ - pos_);
  }

  // Releases everything allocated so far.  All Slices into the arena are
  // invalidated.
  void Reset() {
    chunks_.clear();
    pos_ = cap_ = 0;
    allocated_ = 0;
  }

 private:
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t pos_ = 0;
  std::size_t cap_ = 0;
  std::size_t allocated_ = 0;
};

}  // namespace opmr
