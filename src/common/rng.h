// Deterministic random-number utilities for the workload generators.
//
// All generators in the repository are seeded and reproducible so that every
// test, example and benchmark re-creates identical inputs run-to-run.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace opmr {

// SplitMix64: tiny, fast, and statistically solid for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
      : state_(seed) {}

  std::uint64_t Next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n).  n must be > 0.
  std::uint64_t Uniform(std::uint64_t n) noexcept { return Next() % n; }

  // Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

// Zipf(θ) sampler over ranks [0, n).  Uses the standard CDF-inversion with a
// precomputed harmonic table for small n and rejection-free power-law
// approximation beyond the table, which keeps generation O(log n) while
// matching the target skew closely (validated in tests against empirical
// frequencies).
class ZipfSampler {
 public:
  // theta = 0 is uniform; theta ~ 0.99 matches web-trace skew (WorldCup-98
  // URL popularity and GOV2 vocabulary are both near-Zipfian).
  ZipfSampler(std::uint64_t n, double theta, std::uint64_t seed)
      : n_(n), theta_(theta), rng_(seed) {
    // Exact CDF table; workload generators use n up to a few million ranks,
    // for which the table is cheap and sampling is a binary search.
    cdf_.reserve(n_);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n_; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta_);
      cdf_.push_back(sum);
    }
    for (auto& c : cdf_) c /= sum;
  }

  // Returns a rank in [0, n); rank 0 is the most frequent.
  std::uint64_t Sample() noexcept {
    const double u = rng_.NextDouble();
    // Binary search for the first cdf_ entry >= u.
    std::size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  [[nodiscard]] std::uint64_t universe() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

  // Expected probability of rank r (for test assertions).
  [[nodiscard]] double Probability(std::uint64_t rank) const noexcept {
    const double p0 = rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
    return p0;
  }

 private:
  std::uint64_t n_;
  double theta_;
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace opmr
