// Simulated workload descriptors, calibrated to the paper's Table I / II.
//
// The simulator replays the runtimes' phase structure at the paper's data
// scale (hundreds of GB over 10 nodes); per-byte CPU costs are derived from
// the paper's own measurements:
//   * Table II gives map-function vs sort CPU seconds per node in the map
//     phase of the 256 GB WorldCup dataset (25.6 GB/node):
//     sessionization 566 s map / 369 s sort → 22.1 / 14.4 ns per input byte;
//     per-user count  440 s map / 406 s sort → 17.2 / 15.9 ns per byte.
//   * Table I gives the data-volume ratios every workload must honour.
#pragma once

#include <cstdint>
#include <string>

namespace opmr::sim {

struct SimWorkload {
  std::string name;

  double input_bytes = 0;
  // Map output bytes / input bytes, after the combiner if any (Table I).
  double map_output_ratio = 0;
  // Final output bytes / input bytes (Table I).
  double output_ratio = 0;

  // CPU costs, seconds of one core per input byte.
  double map_cpu_s_per_byte = 0;     // the user map function incl. parsing
  double sort_cpu_s_per_byte = 0;    // Hadoop's (partition, key) buffer sort
  double hash_cpu_s_per_byte = 0;    // hash group-by replacement cost
  // CPU costs per *intermediate* byte.
  double merge_cpu_s_per_byte = 0;   // k-way merge comparisons/copies
  double reduce_cpu_s_per_byte = 0;  // the user reduce function

  int num_reduce_tasks = 60;
};

inline SimWorkload Sessionization256() {
  SimWorkload w;
  w.name = "sessionization";
  w.input_bytes = 256e9;
  w.map_output_ratio = 269.0 / 256.0;  // Table I: 269 GB map output
  w.output_ratio = 1.0;                // 256 GB output
  w.map_cpu_s_per_byte = 22.1e-9;      // Table II: 566 s per 25.6 GB/node
  w.sort_cpu_s_per_byte = 14.4e-9;     // Table II: 369 s
  w.hash_cpu_s_per_byte = 3.0e-9;      // partition-only scan (§V)
  w.merge_cpu_s_per_byte = 1.5e-9;
  w.reduce_cpu_s_per_byte = 28.0e-9;   // per-user sort + session split
  return w;
}

inline SimWorkload PageFrequency508() {
  SimWorkload w;
  w.name = "page_frequency";
  w.input_bytes = 508e9;
  w.map_output_ratio = 1.8 / 508.0;  // combiner collapses to 1.8 GB
  w.output_ratio = 0.02 / 508.0;
  w.map_cpu_s_per_byte = 18.0e-9;
  w.sort_cpu_s_per_byte = 15.0e-9;  // sorting pairs dominates ~48 % (T-II)
  w.hash_cpu_s_per_byte = 5.0e-9;
  w.merge_cpu_s_per_byte = 1.5e-9;
  w.reduce_cpu_s_per_byte = 2.0e-9;
  return w;
}

inline SimWorkload PerUserCount256() {
  SimWorkload w;
  w.name = "per_user_count";
  w.input_bytes = 256e9;
  w.map_output_ratio = 2.6 / 256.0;  // Table I: 2.6 GB
  w.output_ratio = 0.6 / 256.0;
  w.map_cpu_s_per_byte = 17.2e-9;  // Table II: 440 s per 25.6 GB/node
  w.sort_cpu_s_per_byte = 15.9e-9; // Table II: 406 s (48 % of map phase)
  w.hash_cpu_s_per_byte = 5.0e-9;
  w.merge_cpu_s_per_byte = 1.5e-9;
  w.reduce_cpu_s_per_byte = 2.0e-9;
  return w;
}

inline SimWorkload InvertedIndex427() {
  SimWorkload w;
  w.name = "inverted_index";
  w.input_bytes = 427e9;
  w.map_output_ratio = 150.0 / 427.0;  // Table I: 150 GB
  w.output_ratio = 103.0 / 427.0;
  w.map_cpu_s_per_byte = 190.0e-9;  // parsing + tokenizing raw documents
  w.sort_cpu_s_per_byte = 60.0e-9;  // postings are wide compound records
  w.hash_cpu_s_per_byte = 20.0e-9;
  w.merge_cpu_s_per_byte = 3.0e-9;
  w.reduce_cpu_s_per_byte = 40.0e-9;
  return w;
}

}  // namespace opmr::sim
