// Discrete-time cluster simulator.
//
// Replays the phase structure of the three runtimes (Hadoop sort-merge,
// MapReduce Online, hash one-pass) over modelled devices at the paper's
// data scale.  Time advances in fixed steps; within a step every device
// (per-node CPU cores, HDD, SSD, NIC) is max-min shared among the tasks
// demanding it, which reproduces the contention behaviour the paper
// observes ("the disk is often maxed out and subject to random I/Os").
//
// Outputs are exactly the measurements of Figs. 2-4: the per-operation task
// timeline, CPU utilization, CPU iowait, and bytes-read-per-second series,
// plus the Table I data-volume/completion-time aggregates.
#pragma once

#include <string>
#include <vector>

#include "metrics/timeline.h"
#include "metrics/timeseries.h"
#include "sim/config.h"
#include "sim/workload.h"

namespace opmr::sim {

struct SimResult {
  std::string workload;
  std::string runtime;

  double completion_s = 0;
  double map_phase_end_s = 0;  // time the last map task finished

  int num_map_tasks = 0;
  int num_reduce_tasks = 0;
  int merge_operations = 0;
  int snapshots = 0;
  int stragglers = 0;           // map tasks placed on degraded slots
  int speculative_launched = 0; // duplicate tasks started
  int speculative_wins = 0;     // duplicates that beat the original

  // Byte totals (whole cluster).
  double input_read_bytes = 0;
  double map_output_write_bytes = 0;
  double spill_write_bytes = 0;  // reduce-side runs + merge rewrites
  double spill_read_bytes = 0;   // merge + final-merge reads
  double output_write_bytes = 0;

  // Sampled series (one sample per simulation step).
  std::vector<opmr::Sample> cpu_util;     // fraction of cluster cores busy
  std::vector<opmr::Sample> cpu_iowait;   // fraction idle with I/O pending
  std::vector<opmr::Sample> read_rate;    // cluster disk read bytes/s
  std::vector<opmr::TaskInterval> timeline;

  // Mean CPU utilization over [t0, t1) — bench assertions use this to
  // check the merge-phase "valley".
  [[nodiscard]] double MeanCpuUtil(double t0, double t1) const;
  [[nodiscard]] double MeanIowait(double t0, double t1) const;

  // Minimum mean CPU utilization over any `window_s`-long window within
  // [t0, t1): locates the blocking-merge "valley" regardless of where the
  // reduce tail begins.
  [[nodiscard]] double MinWindowCpuUtil(double t0, double t1,
                                        double window_s = 120) const;
};

// Runs one simulated job to completion.
SimResult SimulateJob(const SimWorkload& workload, const SimConfig& config);

}  // namespace opmr::sim
