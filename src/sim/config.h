// Simulated cluster configuration: the paper's testbed and its §III-C
// architectural variants.
#pragma once

#include <cstdint>

namespace opmr::sim {

// §III-C storage architectures.
enum class StorageArch {
  kSingleDisk,   // baseline: one HDD serves DFS + intermediate data
  kHddPlusSsd,   // per-node SSD dedicated to intermediate data
  kSeparate,     // 5 storage + 5 compute nodes; DFS I/O crosses the network
};

// Which system's phase structure to replay.
enum class SimRuntime {
  kHadoop,       // sort-merge, pull shuffle (§III-B)
  kHop,          // MapReduce Online: pipelined push + snapshots (§III-D)
  kHashOnePass,  // the proposed runtime: no sort, incremental reduce (§V)
};

struct SimConfig {
  int num_nodes = 10;  // paper: 10 compute nodes (+ head node)
  int map_slots_per_node = 6;
  double cores_per_node = 4;

  std::uint64_t block_bytes = 64ull << 20;  // HDFS block size

  // Device service rates (sequential; contention is modelled by fair
  // sharing).  ~2004-2010 era hardware to match the paper's testbed.
  double hdd_bytes_per_sec = 90e6;
  double ssd_bytes_per_sec = 170e6;
  double nic_bytes_per_sec = 110e6;  // ~1 GbE

  // Sequential-bandwidth loss per additional concurrent stream on the HDD:
  // effective rate = base / (1 + penalty * (streams - 1)).  Models the
  // paper's observation that the shared disk is "maxed out and subject to
  // random I/Os" when map reads, map-output writes and reduce spills mix.
  double hdd_seek_penalty = 0.12;

  // Per-byte framework CPU outside the user map/sort code: input record
  // deserialization, buffer/stream management, task overhead.  Derived by
  // closing the gap between Table II's measured map-function+sort cycles
  // (~37 ns/byte) and the ~60 % map-phase CPU utilization of Fig. 2(b).
  double framework_map_cpu_s_per_byte = 110e-9;
  double framework_reduce_cpu_s_per_byte = 50e-9;

  StorageArch storage = StorageArch::kSingleDisk;
  SimRuntime runtime = SimRuntime::kHadoop;

  // Reducer merge memory (the in-memory segment buffer before a spill).
  double reduce_memory_bytes = 250e6;
  int merge_factor = 10;  // Hadoop's F (io.sort.factor)

  // HOP: snapshot every `snapshot_interval` fraction of map completion
  // (0 disables), and the network overhead factor of fine-grained chunk
  // transfers (paper: eager transmission "increases network cost").
  double snapshot_interval = 0.0;
  double push_overhead = 1.0;

  // Fraction of intermediate data the hash one-pass runtime spills (cold
  // keys); ~0 when states fit or hot keys are pinned.
  double hash_spill_fraction = 0.0;

  // Stragglers: this fraction of map tasks land on degraded slots that
  // progress at `straggler_factor` of normal speed (flaky disk / busy
  // neighbour), the failure mode speculative execution targets.
  double straggler_fraction = 0.0;
  double straggler_factor = 0.25;

  // Speculative execution (the paper's related-work [35]): once the
  // original task queue is empty ("the final wave"), duplicate any map
  // task that has been running longer than `speculation_threshold` times
  // the mean completed-task duration on a free slot; first copy to finish
  // wins, the other is killed.
  bool speculative_execution = false;
  double speculation_threshold = 1.8;

  double dt = 1.0;            // simulation step, seconds
  double max_sim_seconds = 50'000;
};

}  // namespace opmr::sim
