#include "sim/simulator.h"

#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>

namespace opmr::sim {

namespace {

// Physical resources a task can demand during one activity.
enum class Phys : int { kCpu = 0, kHdd = 1, kSsd = 2, kNic = 3 };

struct Activity {
  Phys phys = Phys::kCpu;
  int node = 0;
  double remaining = 0;  // cpu-seconds or bytes
  bool active = false;
};

struct ResourceKey {
  int node;
  Phys phys;
  bool operator<(const ResourceKey& o) const {
    return node != o.node ? node < o.node
                          : static_cast<int>(phys) < static_cast<int>(o.phys);
  }
};

// --- Entity state machines ---------------------------------------------------

struct MapTask {
  int node = -1;
  int phase = -1;  // -1 queued, 0 read, 1 map cpu, 2 sort/hash cpu, 3 write
  double start_t = 0;
  Activity act;
  double out_bytes = 0;  // map output this task will produce
  bool done = false;
  bool slow = false;      // straggler slot: progresses at straggler_factor
  int twin = -1;          // index of the original/speculative counterpart
  bool has_duplicate = false;
};

enum class RedState {
  kIdle,
  kNetXfer,
  kSpillWrite,
  kMergeRead,
  kMergeCpu,
  kMergeWrite,
  kSnapshotRead,
  kSnapshotCpu,
  kHashCpu,
  kFinalRead,
  kFinalCpu,
  kFinalWrite,
  kDone,
};

struct ReduceTask {
  int node = -1;
  RedState state = RedState::kIdle;
  Activity act;

  double pending = 0;      // shuffled bytes available but not yet fetched
  double received = 0;     // bytes fetched so far
  double mem_fill = 0;     // in-memory segment buffer
  std::deque<double> runs; // on-disk run sizes

  double chunk = 0;        // bytes in the transfer/merge currently running
  double merge_total = 0;

  double shuffle_begin = -1;
  double merge_begin = -1;
  double final_begin = -1;

  double next_snapshot = 2.0;  // fraction of maps done; 2.0 = disabled
};

}  // namespace

double SimResult::MeanCpuUtil(double t0, double t1) const {
  double sum = 0;
  int n = 0;
  for (const auto& s : cpu_util) {
    if (s.time_s >= t0 && s.time_s < t1) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SimResult::MeanIowait(double t0, double t1) const {
  double sum = 0;
  int n = 0;
  for (const auto& s : cpu_iowait) {
    if (s.time_s >= t0 && s.time_s < t1) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

double SimResult::MinWindowCpuUtil(double t0, double t1,
                                   double window_s) const {
  double best = 1.0;
  for (double w0 = t0; w0 + window_s <= t1; w0 += window_s / 2) {
    best = std::min(best, MeanCpuUtil(w0, w0 + window_s));
  }
  return best;
}

SimResult SimulateJob(const SimWorkload& w, const SimConfig& c) {
  SimResult result;
  result.workload = w.name;
  result.runtime = c.runtime == SimRuntime::kHadoop ? "hadoop"
                   : c.runtime == SimRuntime::kHop  ? "mapreduce_online"
                                                    : "hash_one_pass";

  // --- Topology --------------------------------------------------------------
  // kSeparate: half the nodes hold storage, half compute; DFS traffic
  // crosses the network (the paper correspondingly reduced the input size
  // to keep runtimes comparable — the caller passes the reduced workload).
  const bool separate = c.storage == StorageArch::kSeparate;
  const int compute_nodes = separate ? c.num_nodes / 2 : c.num_nodes;
  const bool has_ssd = c.storage == StorageArch::kHddPlusSsd;

  const Phys inter_phys = has_ssd ? Phys::kSsd : Phys::kHdd;
  const Phys dfs_phys = separate ? Phys::kNic : Phys::kHdd;

  auto capacity = [&](Phys phys) {
    switch (phys) {
      case Phys::kCpu: return c.cores_per_node;
      case Phys::kHdd: return c.hdd_bytes_per_sec;
      case Phys::kSsd: return c.ssd_bytes_per_sec;
      case Phys::kNic: return c.nic_bytes_per_sec;
    }
    return 0.0;
  };

  // --- Job layout --------------------------------------------------------------
  const int num_maps = static_cast<int>(
      std::ceil(w.input_bytes / static_cast<double>(c.block_bytes)));
  const int num_reducers = w.num_reduce_tasks;
  result.num_map_tasks = num_maps;
  result.num_reduce_tasks = num_reducers;

  const double block = static_cast<double>(c.block_bytes);
  const bool hash_runtime = c.runtime == SimRuntime::kHashOnePass;
  const bool hop = c.runtime == SimRuntime::kHop;
  const double push_factor = hop ? c.push_overhead : 1.0;

  std::vector<MapTask> maps(num_maps);
  int next_map = 0;
  int maps_done = 0;
  std::vector<int> slots_in_use(compute_nodes, 0);
  Rng straggler_rng(0xbadd15c);
  double completed_map_seconds = 0;  // for the speculation threshold
  int completed_map_count = 0;

  std::vector<ReduceTask> reducers(num_reducers);
  for (int r = 0; r < num_reducers; ++r) {
    reducers[r].node = r % compute_nodes;
    if (hop && c.snapshot_interval > 0) {
      reducers[r].next_snapshot = c.snapshot_interval;
    }
  }

  TimelineRecorder timeline;
  std::vector<opmr::Sample> cpu_util, cpu_iowait, read_rate;

  const double shuffle_chunk = 64e6;  // fetch granularity
  double t = 0;

  auto give_to_reducers = [&](double bytes) {
    const double share = bytes / num_reducers;
    for (auto& r : reducers) r.pending += share;
  };

  // --- Main loop ---------------------------------------------------------------
  int reducers_done = 0;
  while (reducers_done < num_reducers) {
    if (t > c.max_sim_seconds) {
      throw std::runtime_error("simulation exceeded max_sim_seconds");
    }

    // (1) Schedule queued map tasks onto free slots.
    for (int n = 0; n < compute_nodes && next_map < num_maps; ++n) {
      while (slots_in_use[n] < c.map_slots_per_node && next_map < num_maps) {
        MapTask& m = maps[next_map++];
        m.node = n;
        m.phase = 0;
        m.start_t = t;
        m.out_bytes = block * w.map_output_ratio;
        m.act = {dfs_phys, n, block, true};
        if (c.straggler_fraction > 0 &&
            straggler_rng.NextDouble() < c.straggler_fraction) {
          m.slow = true;
          ++result.stragglers;
        }
        ++slots_in_use[n];
      }
    }

    // (1b) Speculative execution: once the original queue is drained (the
    // final wave), duplicate over-long running tasks onto free slots.
    if (c.speculative_execution && next_map >= num_maps &&
        completed_map_count > 0) {
      const double mean =
          completed_map_seconds / completed_map_count;
      std::vector<std::size_t> to_duplicate;
      for (std::size_t i = 0; i < maps.size(); ++i) {
        const MapTask& m = maps[i];
        if (m.phase >= 0 && !m.done && m.twin < 0 && !m.has_duplicate &&
            t - m.start_t > c.speculation_threshold * mean) {
          to_duplicate.push_back(i);
        }
      }
      for (const std::size_t i : to_duplicate) {
        // Find a free slot anywhere.
        int target = -1;
        for (int n = 0; n < compute_nodes; ++n) {
          if (slots_in_use[n] < c.map_slots_per_node) {
            target = n;
            break;
          }
        }
        if (target < 0) break;
        MapTask dup;
        dup.node = target;
        dup.phase = 0;
        dup.start_t = t;
        dup.out_bytes = maps[i].out_bytes;
        dup.act = {dfs_phys, target, block, true};
        dup.twin = static_cast<int>(i);
        maps[i].has_duplicate = true;
        ++slots_in_use[target];
        ++result.speculative_launched;
        maps.push_back(dup);
      }
    }

    // (2) Reducer state transitions for idle reducers.
    const double maps_fraction =
        num_maps == 0 ? 1.0 : static_cast<double>(maps_done) / num_maps;
    for (auto& r : reducers) {
      if (r.state != RedState::kIdle) continue;

      // Snapshot point reached? (HOP only.)
      if (maps_fraction >= r.next_snapshot && r.next_snapshot < 1.0) {
        const double on_disk =
            std::accumulate(r.runs.begin(), r.runs.end(), 0.0);
        r.next_snapshot += c.snapshot_interval;
        if (on_disk > 0) {
          r.merge_begin = t;
          r.chunk = on_disk;
          r.state = RedState::kSnapshotRead;
          r.act = {inter_phys, r.node, on_disk, true};
          continue;
        }
      }

      // Background merge when F runs accumulated.
      if (!hash_runtime &&
          r.runs.size() >= static_cast<std::size_t>(c.merge_factor)) {
        double total = 0;
        for (int i = 0; i < c.merge_factor; ++i) total += r.runs[i];
        r.merge_total = total;
        r.merge_begin = t;
        r.state = RedState::kMergeRead;
        r.act = {inter_phys, r.node, total, true};
        continue;
      }

      // Fetch the next shuffle chunk.  Wait for a worthwhile batch while
      // maps are still producing (Hadoop throttles parallel copies the
      // same way); drain everything once maps are done.
      const double fetch_threshold = maps_done == num_maps ? 1.0 : 8e6;
      if (r.pending > fetch_threshold) {
        if (r.shuffle_begin < 0) r.shuffle_begin = t;
        r.chunk = std::min(r.pending, shuffle_chunk);
        r.pending -= r.chunk;
        r.state = RedState::kNetXfer;
        r.act = {Phys::kNic, r.node, r.chunk * push_factor, true};
        continue;
      }

      // All input consumed → final phase.
      if (maps_done == num_maps && r.pending <= 1.0) {
        if (r.shuffle_begin >= 0) {
          timeline.Record(opmr::TaskKind::kShuffle, r.shuffle_begin, t);
          r.shuffle_begin = -2;  // recorded
        }
        if (!hash_runtime &&
            r.runs.size() > static_cast<std::size_t>(c.merge_factor)) {
          // Multi-pass merge down to F before the final merge.
          double total = 0;
          for (int i = 0; i < c.merge_factor; ++i) total += r.runs[i];
          r.merge_total = total;
          r.merge_begin = t;
          r.state = RedState::kMergeRead;
          r.act = {inter_phys, r.node, total, true};
          continue;
        }
        r.final_begin = t;
        const double on_disk =
            std::accumulate(r.runs.begin(), r.runs.end(), 0.0);
        if (!hash_runtime && on_disk > 0) {
          r.state = RedState::kFinalRead;
          r.act = {inter_phys, r.node, on_disk, true};
        } else {
          // Hash runtime (or all data in memory): only the reduce / final
          // scan remains.
          const double cpu_bytes = hash_runtime ? r.received : r.mem_fill;
          r.state = RedState::kFinalCpu;
          r.act = {Phys::kCpu, r.node,
                   std::max(1e-3, cpu_bytes *
                                      (w.reduce_cpu_s_per_byte +
                                       c.framework_reduce_cpu_s_per_byte)),
                   true};
        }
        continue;
      }
      // Nothing to do: stay idle this step.
    }

    // (3) Count demand per (node, phys).
    std::map<ResourceKey, int> demand;
    for (auto& m : maps) {
      if (m.phase >= 0 && !m.done) ++demand[{m.act.node, m.act.phys}];
    }
    for (auto& r : reducers) {
      if (r.state != RedState::kIdle && r.state != RedState::kDone) {
        ++demand[{r.act.node, r.act.phys}];
      }
    }

    auto share_of = [&](const Activity& act) {
      const int n = std::max(1, demand[{act.node, act.phys}]);
      double cap = capacity(act.phys);
      if (act.phys == Phys::kHdd) {
        // Concurrent streams cost seeks: the whole disk slows down.
        cap /= 1.0 + c.hdd_seek_penalty * (n - 1);
      }
      double share = cap / n;
      if (act.phys == Phys::kCpu) share = std::min(share, 1.0);  // 1 core/task
      return share * c.dt;
    };

    // (4) Sampling (before progress, using current demand).
    {
      double busy_cores = 0;
      std::vector<double> node_busy(compute_nodes, 0.0);
      std::vector<int> node_io(compute_nodes, 0);
      auto tally = [&](const Activity& act) {
        if (act.phys == Phys::kCpu) {
          const double cores = std::min(
              capacity(Phys::kCpu) / std::max(1, demand[{act.node, act.phys}]),
              1.0);
          busy_cores += cores;
          node_busy[act.node] += cores;
        } else {
          ++node_io[act.node];
        }
      };
      for (auto& m : maps) {
        if (m.phase >= 0 && !m.done) tally(m.act);
      }
      for (auto& r : reducers) {
        if (r.state != RedState::kIdle && r.state != RedState::kDone) {
          tally(r.act);
        }
      }
      const double total_cores = compute_nodes * c.cores_per_node;
      double iowait_cores = 0;
      for (int n = 0; n < compute_nodes; ++n) {
        const double idle = c.cores_per_node - node_busy[n];
        iowait_cores += std::min(idle, static_cast<double>(node_io[n]));
      }
      cpu_util.push_back({t, busy_cores / total_cores});
      cpu_iowait.push_back({t, iowait_cores / total_cores});
    }

    double read_bytes_this_step = 0;

    // (5) Progress map tasks.
    for (std::size_t mi = 0; mi < maps.size(); ++mi) {
      MapTask& m = maps[mi];
      if (m.phase < 0 || m.done) continue;
      double amount = share_of(m.act);
      if (m.slow) amount *= c.straggler_factor;
      if (m.act.phys != Phys::kCpu && m.act.phys != Phys::kNic &&
          (m.phase == 0)) {
        read_bytes_this_step += std::min(amount, m.act.remaining);
      }
      m.act.remaining -= amount;
      if (m.act.remaining > 1e-9) continue;

      // Phase transition.
      switch (m.phase) {
        case 0:
          result.input_read_bytes += block;
          m.phase = 1;
          m.act = {Phys::kCpu, m.node,
                   block * (w.map_cpu_s_per_byte +
                            c.framework_map_cpu_s_per_byte),
                   true};
          break;
        case 1: {
          const double group_cpu = hash_runtime
                                       ? block * w.hash_cpu_s_per_byte
                                       : block * w.sort_cpu_s_per_byte;
          m.phase = 2;
          m.act = {Phys::kCpu, m.node, std::max(group_cpu, 1e-3), true};
          break;
        }
        case 2:
          // Eager push after the sort; duplicates never re-push (their
          // original already did, or will — speculation is disabled for
          // HOP-style pushes in practice, matching the retry restriction).
          if (hop && m.twin < 0) give_to_reducers(m.out_bytes);
          m.phase = 3;
          m.act = {inter_phys, m.node, std::max(m.out_bytes, 1e-3), true};
          break;
        case 3: {
          result.map_output_write_bytes += m.out_bytes;
          m.done = true;
          --slots_in_use[m.node];
          timeline.Record(opmr::TaskKind::kMap, m.start_t, t + c.dt);
          // Kill the losing twin (speculative execution: first copy wins).
          bool counts = true;
          if (m.twin >= 0) {
            // This is a duplicate finishing; kill the original if alive.
            MapTask& original = maps[m.twin];
            if (original.done) {
              counts = false;  // original already won
            } else {
              original.done = true;
              --slots_in_use[original.node];
              ++result.speculative_wins;
            }
          } else if (m.has_duplicate) {
            for (auto& other : maps) {
              if (other.twin == static_cast<int>(mi) && !other.done) {
                other.done = true;
                --slots_in_use[other.node];
              }
            }
          }
          if (counts) {
            if (!hop) give_to_reducers(m.out_bytes);
            ++maps_done;
            completed_map_seconds += t + c.dt - m.start_t;
            ++completed_map_count;
            if (maps_done == num_maps) result.map_phase_end_s = t + c.dt;
          }
          break;
        }
      }
    }

    // (6) Progress reducers.
    for (auto& r : reducers) {
      if (r.state == RedState::kIdle || r.state == RedState::kDone) continue;
      const double amount = share_of(r.act);
      if (r.act.phys == Phys::kHdd || r.act.phys == Phys::kSsd) {
        if (r.state == RedState::kMergeRead ||
            r.state == RedState::kSnapshotRead ||
            r.state == RedState::kFinalRead) {
          read_bytes_this_step += std::min(amount, r.act.remaining);
        }
      }
      r.act.remaining -= amount;
      if (r.act.remaining > 1e-9) continue;

      switch (r.state) {
        case RedState::kNetXfer:
          r.received += r.chunk;
          if (hash_runtime) {
            // Incremental hash: fold the chunk into per-key states.
            r.state = RedState::kHashCpu;
            r.act = {Phys::kCpu, r.node,
                     std::max(r.chunk * w.reduce_cpu_s_per_byte, 1e-3), true};
          } else {
            r.mem_fill += r.chunk;
            if (r.mem_fill >= c.reduce_memory_bytes) {
              // Buffer full: merge the in-memory segments into a disk run.
              r.chunk = r.mem_fill;
              r.state = RedState::kSpillWrite;
              r.act = {inter_phys, r.node, r.mem_fill, true};
            } else {
              r.state = RedState::kIdle;
            }
          }
          break;
        case RedState::kHashCpu: {
          const double spill = r.chunk * c.hash_spill_fraction;
          if (spill > 1.0) {
            r.chunk = spill;
            r.state = RedState::kSpillWrite;
            r.act = {inter_phys, r.node, spill, true};
          } else {
            r.state = RedState::kIdle;
          }
          break;
        }
        case RedState::kSpillWrite:
          result.spill_write_bytes += r.chunk;
          if (!hash_runtime) {
            r.runs.push_back(r.chunk);
            r.mem_fill = 0;
          }
          r.state = RedState::kIdle;
          break;
        case RedState::kMergeRead:
          result.spill_read_bytes += r.merge_total;
          r.state = RedState::kMergeCpu;
          r.act = {Phys::kCpu, r.node,
                   std::max(r.merge_total * w.merge_cpu_s_per_byte, 1e-3),
                   true};
          break;
        case RedState::kMergeCpu:
          r.state = RedState::kMergeWrite;
          r.act = {inter_phys, r.node, r.merge_total, true};
          break;
        case RedState::kMergeWrite:
          result.spill_write_bytes += r.merge_total;
          for (int i = 0; i < c.merge_factor && !r.runs.empty(); ++i) {
            r.runs.pop_front();
          }
          r.runs.push_back(r.merge_total);
          ++result.merge_operations;
          timeline.Record(opmr::TaskKind::kMerge, r.merge_begin, t + c.dt);
          r.state = RedState::kIdle;
          break;
        case RedState::kSnapshotRead:
          result.spill_read_bytes += r.chunk;
          r.state = RedState::kSnapshotCpu;
          r.act = {Phys::kCpu, r.node,
                   std::max(r.chunk * (w.merge_cpu_s_per_byte +
                                       w.reduce_cpu_s_per_byte),
                            1e-3),
                   true};
          break;
        case RedState::kSnapshotCpu:
          ++result.snapshots;
          timeline.Record(opmr::TaskKind::kMerge, r.merge_begin, t + c.dt);
          r.state = RedState::kIdle;
          break;
        case RedState::kFinalRead: {
          const double on_disk =
              std::accumulate(r.runs.begin(), r.runs.end(), 0.0);
          result.spill_read_bytes += on_disk;
          r.state = RedState::kFinalCpu;
          r.act = {Phys::kCpu, r.node,
                   std::max(r.received * (w.reduce_cpu_s_per_byte +
                                          c.framework_reduce_cpu_s_per_byte),
                            1e-3),
                   true};
          break;
        }
        case RedState::kFinalCpu: {
          const double out =
              w.input_bytes * w.output_ratio / num_reducers;
          r.state = RedState::kFinalWrite;
          r.act = {dfs_phys, r.node, std::max(out, 1e-3), true};
          break;
        }
        case RedState::kFinalWrite:
          result.output_write_bytes +=
              w.input_bytes * w.output_ratio / num_reducers;
          timeline.Record(opmr::TaskKind::kReduce, r.final_begin, t + c.dt);
          r.state = RedState::kDone;
          ++reducers_done;
          break;
        case RedState::kIdle:
        case RedState::kDone:
          break;
      }
    }

    read_rate.push_back({t, read_bytes_this_step / c.dt});
    t += c.dt;
  }

  result.completion_s = t;
  result.cpu_util = std::move(cpu_util);
  result.cpu_iowait = std::move(cpu_iowait);
  result.read_rate = std::move(read_rate);
  result.timeline = timeline.Snapshot();
  return result;
}

}  // namespace opmr::sim
