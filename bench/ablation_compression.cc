// Ablation A5 — spill compression.
//
// The multi-pass merge's I/O volume is the paper's central bottleneck;
// compressing spill runs (Hadoop's mapred.compress.* analogue) trades CPU
// for that volume.  Measured across the sort-merge and incremental
// reducers under a tight memory budget.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A5: spill compression (OZ codec) "
                "(real engine, per-user count, tight reducer memory)");

  Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 40'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  struct Case {
    const char* system;
    JobOptions base;
  };
  std::vector<Case> cases = {
      {"sort-merge", HadoopOptions()},
      {"incremental hash", HashOnePassOptions()},
  };

  TextTable table;
  table.AddRow({"System", "Compress", "Spill write", "Spill read",
                "Wall time", "Total CPU"});
  CsvWriter csv(bench::OutDir() / "ablation_compression.csv");
  csv.WriteRow({"system", "compress", "spill_write", "spill_read", "wall_s",
                "cpu_s"});

  int i = 0;
  for (const auto& c : cases) {
    for (bool compress : {false, true}) {
      JobOptions options = c.base;
      options.map_side_combine = false;
      options.reduce_buffer_bytes = 512u << 10;
      options.merge_factor = 4;
      options.compress_spills = compress;
      const auto spec =
          PerUserCountJob("clicks", "a5_" + std::to_string(i++), 4);
      const auto r = platform.Run(spec, options);
      table.AddRow({c.system, compress ? "yes" : "no",
                    HumanBytes(double(r.Bytes(device::kSpillWrite))),
                    HumanBytes(double(r.Bytes(device::kSpillRead))),
                    HumanSeconds(r.wall_seconds),
                    HumanSeconds(r.total_cpu_seconds)});
      csv.WriteRow({c.system, compress ? "1" : "0",
                    std::to_string(r.Bytes(device::kSpillWrite)),
                    std::to_string(r.Bytes(device::kSpillRead)),
                    std::to_string(r.wall_seconds),
                    std::to_string(r.total_cpu_seconds)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: compression cuts spill volume severalfold "
              "for structured keys\nat a modest CPU cost — the same trade "
              "Hadoop deployments make.\n");
  return 0;
}
