// Microbench M2 — §III-B.2 "Cost of Map Output".
//
// Measures the wall time map tasks spend persisting their output (the
// synchronous flush Hadoop requires before a mapper may report complete)
// as a share of total map-task lifetime.  Paper finding: 1.3 s of a 21.6 s
// average map task (~6 %) — real but not dominant.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "metrics/timeline.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Microbench M2: map-output persistence cost "
                "(real engine, sessionization — large map output)");

  Platform platform({.num_nodes = 2, .block_bytes = 8u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 100'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  const auto r = platform.Run(SessionizationJob("clicks", "m2", 4),
                              HadoopOptions());

  double map_task_seconds = 0;
  int map_tasks = 0;
  for (const auto& iv : r.timeline) {
    if (iv.kind == TaskKind::kMap) {
      map_task_seconds += iv.end_s - iv.begin_s;
      ++map_tasks;
    }
  }
  const double write_seconds =
      double(r.Bytes(device::kMapOutputWriteNanos)) * 1e-9;

  TextTable table;
  table.AddRow({"Metric", "Value"});
  table.AddRow({"map tasks", std::to_string(map_tasks)});
  table.AddRow({"avg map task time",
                HumanSeconds(map_task_seconds / std::max(1, map_tasks))});
  table.AddRow({"avg output-persist time",
                HumanSeconds(write_seconds / std::max(1, map_tasks))});
  table.AddRow({"persist share of map lifetime",
                Percent(write_seconds / map_task_seconds)});
  std::printf("%s", table.ToString().c_str());
  std::printf("\nPaper: 1.3 s of 21.6 s per map task (~6%%) — a real cost "
              "but not the bottleneck.\n");

  CsvWriter csv(bench::OutDir() / "micro_map_output_write.csv");
  csv.WriteRow({"map_tasks", "map_task_seconds", "write_seconds"});
  csv.WriteRow({std::to_string(map_tasks), std::to_string(map_task_seconds),
                std::to_string(write_seconds)});
  return 0;
}
