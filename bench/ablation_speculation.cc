// Ablation A6 — stragglers and speculative execution.
//
// The paper's related work (§VI, citing Zaharia et al. [35]) argues that an
// improved speculative-execution strategy "will only have a significant
// impact on the running time of short jobs because only the final wave of
// tasks is affected."  We verify exactly that: with 3 % straggler slots,
// speculation recovers a much larger fraction of the lost time for a short
// (single-wave-dominated) job than for a long many-wave job.
#include <cstdio>

#include "bench_util.h"
#include "metrics/report.h"
#include "sim/simulator.h"

namespace {

struct Row {
  const char* label;
  double clean_s;
  double straggled_s;
  double speculative_s;
  int launched;
  int wins;
};

Row Measure(const char* label, opmr::sim::SimWorkload w,
            opmr::sim::SimConfig base) {
  using namespace opmr::sim;
  Row row{label, 0, 0, 0, 0, 0};
  row.clean_s = SimulateJob(w, base).completion_s;

  SimConfig straggled = base;
  straggled.straggler_fraction = 0.03;
  straggled.straggler_factor = 0.125;  // an 8x-degraded slot: failing disk
  straggled.speculation_threshold = 1.3;
  row.straggled_s = SimulateJob(w, straggled).completion_s;

  SimConfig speculative = straggled;
  speculative.speculative_execution = true;
  const auto r = SimulateJob(w, speculative);
  row.speculative_s = r.completion_s;
  row.launched = r.speculative_launched;
  row.wins = r.speculative_wins;
  return row;
}

}  // namespace

int main() {
  using namespace opmr;
  using namespace opmr::sim;

  bench::Banner("Ablation A6: stragglers + speculative execution "
                "(simulated; paper §VI on [35])");

  SimConfig config;
  config.num_nodes = 4;
  config.reduce_memory_bytes = 30e6;

  // Long job: many waves of map tasks; stragglers mid-job are hidden by
  // the wave structure, only the final wave's tail is exposed.
  SimWorkload long_job = Sessionization256();
  long_job.input_bytes = 16e9;
  long_job.num_reduce_tasks = 8;

  // Short job: roughly two waves; a straggler directly extends the job.
  SimWorkload short_job = PerUserCount256();
  short_job.input_bytes = 3e9;
  short_job.num_reduce_tasks = 8;

  const Row rows[] = {
      Measure("long (sessionization, many waves)", long_job, config),
      Measure("short (counting, ~2 waves)", short_job, config),
  };

  TextTable table;
  table.AddRow({"Job", "Clean", "3% stragglers", "+speculation",
                "Recovered", "Dup launched/wins"});
  bench::CsvSink csv("ablation_speculation.csv");
  csv.Row("job", "clean_s", "straggled_s", "speculative_s", "launched",
          "wins");
  for (const auto& r : rows) {
    const double lost = r.straggled_s - r.clean_s;
    const double recovered =
        lost <= 0 ? 0 : (r.straggled_s - r.speculative_s) / lost;
    char clean[24], strag[24], spec[24];
    std::snprintf(clean, sizeof(clean), "%.0f s", r.clean_s);
    std::snprintf(strag, sizeof(strag), "%.0f s", r.straggled_s);
    std::snprintf(spec, sizeof(spec), "%.0f s", r.speculative_s);
    table.AddRow({r.label, clean, strag, spec, Percent(recovered),
                  std::to_string(r.launched) + "/" + std::to_string(r.wins)});
    csv.Row(r.label, r.clean_s, r.straggled_s, r.speculative_s, r.launched,
            r.wins);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: speculation recovers straggler losses, and "
              "the *relative* impact\nis larger for the short job (paper: "
              "'only the final wave of tasks is affected').\n");
  return 0;
}
