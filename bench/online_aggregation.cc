// Online aggregation — the paper's motivating use case (§I): early
// *approximate* answers that converge to the exact result as more data is
// processed.
//
// Two mechanisms are compared on the real engine:
//   * MapReduce Online snapshots: the reducer re-merges everything received
//     at 12.5 % intervals; scaling a snapshot count by 1/progress yields an
//     estimate of the final answer.
//   * One-pass incremental runtime: per-key states are always current, so a
//     threshold emission IS an early (exact-so-far) answer.
//
// The bench reports the relative error of the scaled snapshot estimates for
// the hottest pages as the job progresses — the classic online-aggregation
// convergence curve.
#include <algorithm>
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Online aggregation: snapshot estimates converge to the "
                "exact answer (real engine)");

  Platform platform({.num_nodes = 2, .block_bytes = 1u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_urls = 10'000;
  gen.url_theta = 1.0;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  JobOptions options = MapReduceOnlineOptions();
  options.snapshot_interval = 0.125;  // 8 snapshots
  const int kReducers = 4;
  const auto result =
      platform.Run(PageFrequencyJob("clicks", "oa", kReducers), options);

  // Exact final counts.
  std::map<std::string, double> exact;
  for (const auto& [url, v] : platform.ReadOutput("oa", kReducers)) {
    exact[url] = static_cast<double>(DecodeValueU64(v));
  }
  std::vector<std::pair<double, std::string>> hottest;
  for (const auto& [url, c] : exact) hottest.emplace_back(c, url);
  std::sort(hottest.rbegin(), hottest.rend());
  hottest.resize(20);

  TextTable table;
  table.AddRow({"Snapshot", "Progress", "Mean |error| top-20 urls",
                "Max |error|"});
  CsvWriter csv(bench::OutDir() / "online_aggregation.csv");
  csv.WriteRow({"snapshot", "progress", "mean_abs_rel_error",
                "max_abs_rel_error"});

  for (int s = 1; s <= 8; ++s) {
    const double progress = 0.125 * s;
    std::map<std::string, double> estimate;
    bool found = false;
    for (int r = 0; r < kReducers; ++r) {
      const std::string name = "oa.snapshot" + std::to_string(s) + ".part" +
                               std::to_string(r);
      if (!platform.dfs().Exists(name)) continue;
      found = true;
      for (const auto& [url, v] : platform.ReadOutputFile(name)) {
        // Scale the partial count by the inverse of job progress — the
        // online-aggregation estimator.
        estimate[url] = static_cast<double>(DecodeValueU64(v)) / progress;
      }
    }
    if (!found) continue;

    double sum_err = 0, max_err = 0;
    for (const auto& [count, url] : hottest) {
      const double est = estimate.count(url) ? estimate.at(url) : 0.0;
      const double err = std::abs(est - count) / count;
      sum_err += err;
      max_err = std::max(max_err, err);
    }
    char prog[16];
    std::snprintf(prog, sizeof(prog), "%.0f%%", 100 * progress);
    table.AddRow({std::to_string(s), prog, Percent(sum_err / hottest.size()),
                  Percent(max_err)});
    csv.WriteRow({std::to_string(s), std::to_string(progress),
                  std::to_string(sum_err / hottest.size()),
                  std::to_string(max_err)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nwall time %.2f s; first snapshot answers appeared at %.2f s "
              "(%.0f%% of the job)\n",
              result.wall_seconds, result.first_output_seconds,
              100 * result.first_output_seconds / result.wall_seconds);
  std::printf("Expected shape: the error of scaled snapshot estimates "
              "shrinks monotonically toward 0.\n");
  return 0;
}
