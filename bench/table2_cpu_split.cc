// Table II — CPU cycles in the map phase: user map function vs framework
// sorting, measured on the real engine with thread-CPU clocks.
//
// Shape targets (paper): sorting consumes a large share of map-phase CPU —
// 39 % for sessionization and up to 48 % for per-user counting (whose map
// function merely emits (user, 1) pairs).  The per-user share must exceed
// the sessionization share.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Table II: map-phase CPU split, map function vs sort "
                "(real engine, thread-CPU clocks)");

  Platform platform({.num_nodes = 2,
                     .map_slots_per_node = 2,
                     .block_bytes = 8u << 20});
  ClickStreamOptions gen;
  gen.num_records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 200'000;
  gen.num_urls = 50'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  struct Case {
    const char* label;
    JobSpec spec;
    double paper_map_pct;
    double paper_sort_pct;
  };
  std::vector<Case> cases;
  cases.push_back({"sessionization",
                   SessionizationJob("clicks", "t2_sess", 4), 61, 39});
  cases.push_back({"per_user_count",
                   PerUserCountJob("clicks", "t2_user", 4), 52, 48});

  TextTable table;
  table.AddRow({"Workload", "Map function", "Sorting", "Map fn %", "Sort %",
                "(paper map/sort %)"});
  CsvWriter csv(bench::OutDir() / "table2.csv");
  csv.WriteRow({"workload", "map_function_s", "map_sort_s", "map_pct",
                "sort_pct"});

  for (auto& c : cases) {
    const auto result = platform.Run(c.spec, HadoopOptions());
    const double map_fn = result.cpu_seconds.count("map_function")
                              ? result.cpu_seconds.at("map_function")
                              : 0.0;
    const double sort = result.cpu_seconds.count("map_sort")
                            ? result.cpu_seconds.at("map_sort")
                            : 0.0;
    const double total = map_fn + sort;
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.0f%% / %.0f%%", c.paper_map_pct,
                  c.paper_sort_pct);
    table.AddRow({c.label, HumanSeconds(map_fn), HumanSeconds(sort),
                  Percent(total > 0 ? map_fn / total : 0),
                  Percent(total > 0 ? sort / total : 0), paper});
    csv.WriteRow({c.label, std::to_string(map_fn), std::to_string(sort),
                  std::to_string(map_fn / total), std::to_string(sort / total)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nConclusion check: sorting is a significant CPU overhead in "
              "the map phase,\nlargest for the lightweight per-user map "
              "function (paper: up to 48%%).\n");
  return 0;
}
