// Figure 2 — sessionization on the simulated 10-node cluster.
//
//   (a) task timeline            (b) CPU utilization    (c) CPU iowait
//   (d) bytes read               (e) CPU util, HDD+SSD  (f) CPU util, separate
//
// Shape targets (paper §III-B/C): map and reduce phases split the job
// roughly evenly with a blocking multi-pass merge between them; during the
// merge CPUs idle (utilization valley), iowait spikes, and a large volume
// of bytes is re-read.  The architectural variants (e) and (f) shorten the
// job but do not remove the valley.
//
// Flags: --storage=hdd|hdd+ssd|separate|all (default all)
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "sim/config.h"
#include "sim/workload.h"

namespace {

using opmr::bench::Banner;
using opmr::bench::PrintSeries;
using opmr::bench::PrintTaskTimeline;
using opmr::bench::SaveSeriesCsv;
using opmr::bench::SaveTimelineCsv;

opmr::sim::SimResult RunOnce(opmr::sim::StorageArch storage) {
  opmr::sim::SimWorkload w = opmr::sim::Sessionization256();
  opmr::sim::SimConfig c;
  c.storage = storage;
  if (storage == opmr::sim::StorageArch::kSeparate) {
    // The paper reduced the input size for the 5-storage/5-compute split
    // "to keep the running time comparable".
    w.input_bytes /= 2;
  }
  return opmr::sim::SimulateJob(w, c);
}

void Report(const char* label, const opmr::sim::SimResult& r,
            const std::string& csv_prefix) {
  std::printf("\n--- %s ---\n", label);
  std::printf("completion: %s   map phase end: %.0f s   merges: %d\n",
              opmr::HumanSeconds(r.completion_s).c_str(), r.map_phase_end_s,
              r.merge_operations);
  std::printf("input read %s | map output %s | spill write %s | spill read %s"
              " | output %s\n",
              opmr::HumanBytes(r.input_read_bytes).c_str(),
              opmr::HumanBytes(r.map_output_write_bytes).c_str(),
              opmr::HumanBytes(r.spill_write_bytes).c_str(),
              opmr::HumanBytes(r.spill_read_bytes).c_str(),
              opmr::HumanBytes(r.output_write_bytes).c_str());

  // The merge "valley": utilization between the end of the map phase and
  // the start of the reduce tail vs. utilization in the map phase.
  const double map_util = r.MeanCpuUtil(0, r.map_phase_end_s);
  const double valley_end =
      r.map_phase_end_s + 0.5 * (r.completion_s - r.map_phase_end_s);
  const double valley_util = r.MeanCpuUtil(r.map_phase_end_s, valley_end);
  const double valley_iowait = r.MeanIowait(r.map_phase_end_s, valley_end);
  const double valley_min =
      r.MinWindowCpuUtil(r.map_phase_end_s, r.completion_s * 0.95);
  std::printf("CPU util: map phase %.2f | post-map (merge) %.2f | "
              "iowait there %.2f | deepest 120s valley %.2f\n",
              map_util, valley_util, valley_iowait, valley_min);

  PrintTaskTimeline(r.timeline, r.completion_s);
  PrintSeries("CPU utilization", r.cpu_util, 1.0);
  PrintSeries("CPU iowait", r.cpu_iowait, 1.0);
  PrintSeries("bytes read per second", r.read_rate);

  SaveSeriesCsv(csv_prefix + "_cpu_util.csv", "cpu_util", r.cpu_util);
  SaveSeriesCsv(csv_prefix + "_iowait.csv", "iowait", r.cpu_iowait);
  SaveSeriesCsv(csv_prefix + "_read_rate.csv", "read_rate", r.read_rate);
  SaveTimelineCsv(csv_prefix + "_timeline.csv", r.timeline);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = opmr::Config::FromArgs(argc, argv);
  const std::string which = cfg.GetString("storage", "all");

  Banner("Figure 2: sessionization workload, simulated 10-node cluster "
         "(256 GB input, Hadoop sort-merge runtime)");

  if (which == "hdd" || which == "all") {
    Report("Fig 2(a-d): single disk per node",
           RunOnce(opmr::sim::StorageArch::kSingleDisk), "fig2_hdd");
  }
  if (which == "hdd+ssd" || which == "all") {
    Report("Fig 2(e): HDD + SSD for intermediate data",
           RunOnce(opmr::sim::StorageArch::kHddPlusSsd), "fig2_ssd");
  }
  if (which == "separate" || which == "all") {
    Report("Fig 2(f): separate storage and compute subsystems (5+5 nodes, "
           "half input)",
           RunOnce(opmr::sim::StorageArch::kSeparate), "fig2_separate");
  }
  return 0;
}
