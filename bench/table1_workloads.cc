// Table I — workloads and their running time in the benchmark.
//
// Replays all four workloads on the simulated 10-node cluster (Hadoop
// sort-merge runtime) and prints the paper's table columns next to the
// paper's own numbers.  Shape targets: intermediate/input ratios of
// ≈{105 %, 0.35 %, 1 %, 35 %} map output (plus the merge-rewrite inflation
// for the spill row), map ≈ reduce phase split for sessionization, and a
// tiny reduce phase for the counting workloads.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "metrics/report.h"
#include "sim/simulator.h"

int main() {
  using namespace opmr;
  using namespace opmr::sim;

  bench::Banner("Table I: workloads and their running time (simulated "
                "10-node cluster, Hadoop runtime)");

  struct Row {
    SimWorkload workload;
    const char* paper_completion;
    const char* paper_map_out;
    const char* paper_spill;
    const char* paper_output;
    int paper_maps;
  };
  const std::vector<Row> rows = {
      {Sessionization256(), "76 min.", "269 GB", "370 GB", "256 GB", 3773},
      {PageFrequency508(), "40 min.", "1.8 GB", "0.2 GB", "0.02 GB", 7580},
      {PerUserCount256(), "24 min.", "2.6 GB", "1.4 GB", "0.6 GB", 3773},
      {InvertedIndex427(), "118 min.", "150 GB", "150 GB", "103 GB", 6803},
  };

  TextTable table;
  table.AddRow({"Setting", "Input", "Map output", "Reduce spill",
                "Inter/input", "Output", "Map tasks", "Reduce tasks",
                "Completion", "(paper)"});

  CsvWriter csv(bench::OutDir() / "table1.csv");
  csv.WriteRow({"workload", "input_bytes", "map_output_bytes",
                "spill_write_bytes", "output_bytes", "map_tasks",
                "reduce_tasks", "completion_s", "paper_completion"});

  for (const auto& row : rows) {
    SimConfig config;  // defaults: 10 nodes, single disk, Hadoop
    const SimResult r = SimulateJob(row.workload, config);
    table.AddRow({
        row.workload.name,
        HumanBytes(row.workload.input_bytes),
        HumanBytes(r.map_output_write_bytes),
        HumanBytes(r.spill_write_bytes),
        Percent(r.map_output_write_bytes / row.workload.input_bytes),
        HumanBytes(r.output_write_bytes),
        std::to_string(r.num_map_tasks),
        std::to_string(r.num_reduce_tasks),
        HumanSeconds(r.completion_s),
        row.paper_completion,
    });
    csv.WriteRow({row.workload.name, std::to_string(row.workload.input_bytes),
                  std::to_string(r.map_output_write_bytes),
                  std::to_string(r.spill_write_bytes),
                  std::to_string(r.output_write_bytes),
                  std::to_string(r.num_map_tasks),
                  std::to_string(r.num_reduce_tasks),
                  std::to_string(r.completion_s), row.paper_completion});

    std::printf("%-16s map phase %5.0f s | merge+reduce %5.0f s | merges %d\n",
                row.workload.name.c_str(), r.map_phase_end_s,
                r.completion_s - r.map_phase_end_s, r.merge_operations);
  }

  std::printf("\n%s", table.ToString().c_str());
  std::printf("\nPaper reference row (map output / spill / output): \n");
  for (const auto& row : rows) {
    std::printf("  %-16s %s / %s / %s, %d map tasks, %s\n",
                row.workload.name.c_str(), row.paper_map_out, row.paper_spill,
                row.paper_output, row.paper_maps, row.paper_completion);
  }
  return 0;
}
