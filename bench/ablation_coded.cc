// Ablation — coded shuffle replication factor r (Li et al., coded MapReduce).
//
// The coded plane trades spare map CPU for shuffle bytes: each map block is
// re-mapped on r reducer-side nodes, and intermediates travel as XOR'd
// multicast frames that every non-holder in a group of r+1 peels with its
// local copies.  In theory the shuffle payload shrinks by roughly r× (for
// K reducers, the exact r=2-vs-r=1 ratio is 2(K−1)/(K−2) — 3× at K=4);
// the bill is r extra map executions' worth of CPU.  This sweep runs the
// same job at r ∈ {1, 2, 3} over the loopback transport and records both
// sides of the trade.  r=1 is degenerate coding (singleton holder sets,
// XOR of one part — plain unicast through the coded path), so it is the
// uncoded baseline with identical framing overhead.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "coded/coded.h"
#include "common/config.h"
#include "common/format.h"
#include "core/opmr.h"
#include "net/loopback.h"
#include "workloads/clickstream.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation: coded shuffle replication r — XOR-multicast "
                "payload vs spare map CPU");

  const int num_reducers = 4;  // K=4 => ideal r2/r1 payload ratio is 3x
  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 200'000));

  struct Point {
    int r = 0;
    double wall_s = 0.0;
    double cpu_s = 0.0;
    std::int64_t payload_bytes = 0;
    std::int64_t frames = 0;
    std::int64_t net_bytes = 0;
    std::int64_t remap_tasks = 0;
    int map_tasks = 0;
  };
  std::vector<Point> points;

  int run = 0;
  for (int r : {1, 2, 3}) {
    // A fresh platform per point: set_coded sticks to the executor, and the
    // DFS layout (hence the plan) should be regenerated identically anyway.
    PlatformOptions popts;
    popts.num_nodes = 3;
    popts.block_bytes = 256u << 10;
    popts.replication = 3;
    Platform platform(popts);
    ClickStreamOptions gen;
    gen.num_records = records;
    gen.num_users = 20'000;
    GenerateClickStream(platform.dfs(), "clicks", gen);
    platform.executor().set_coded(r);

    net::LoopbackTransport wire(&platform.metrics());
    const auto spec =
        PerUserCountJob("clicks", "coded_" + std::to_string(run++), num_reducers);
    const auto res = platform.RunWithTransport(spec, HashOnePassOptions(), &wire);

    Point p;
    p.r = r;
    p.wall_s = res.wall_seconds;
    p.cpu_s = res.total_cpu_seconds;
    p.payload_bytes = res.Bytes(coded::kCodedPayloadBytes);
    p.frames = res.Bytes(coded::kCodedFrames);
    p.net_bytes = res.net_bytes_sent;
    p.remap_tasks = res.Bytes(coded::kCodedRemapTasks);
    p.map_tasks = res.num_map_tasks;
    points.push_back(p);
  }

  TextTable table;
  table.AddRow({"r", "Wall time", "CPU", "Coded payload", "Frames",
                "Net bytes", "Re-maps"});
  bench::CsvSink csv("ablation_coded.csv");
  csv.Row("r", "wall_s", "cpu_s", "coded_payload_bytes", "coded_frames",
          "net_bytes_sent", "remap_tasks", "map_tasks");
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.r), HumanSeconds(p.wall_s),
                  HumanSeconds(p.cpu_s), HumanBytes(double(p.payload_bytes)),
                  std::to_string(p.frames), HumanBytes(double(p.net_bytes)),
                  std::to_string(p.remap_tasks)});
    csv.Row(p.r, p.wall_s, p.cpu_s, p.payload_bytes, p.frames, p.net_bytes,
            p.remap_tasks, p.map_tasks);
  }
  std::printf("%s", table.ToString().c_str());

  const double reduction =
      points[1].payload_bytes > 0
          ? double(points[0].payload_bytes) / double(points[1].payload_bytes)
          : 0.0;
  const double reduction_r3 =
      points[2].payload_bytes > 0
          ? double(points[0].payload_bytes) / double(points[2].payload_bytes)
          : 0.0;
  std::printf("\nshuffle payload reduction: r=2 ships %.2fx fewer coded "
              "bytes than r=1 (r=3: %.2fx);\nthe price is %lldx re-map "
              "executions per block.\n",
              reduction, reduction_r3,
              static_cast<long long>(
                  points[1].map_tasks > 0
                      ? points[1].remap_tasks / points[1].map_tasks
                      : 0));

  const auto json_path = bench::OutDir() / "BENCH_coded.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_coded\",\n"
                 "  \"num_reducers\": %d,\n"
                 "  \"records\": %llu,\n"
                 "  \"points\": [\n",
                 num_reducers, static_cast<unsigned long long>(records));
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& p = points[i];
      std::fprintf(out,
                   "    { \"r\": %d, \"wall_s\": %.4f, \"cpu_s\": %.4f, "
                   "\"coded_payload_bytes\": %lld, \"coded_frames\": %lld, "
                   "\"net_bytes_sent\": %lld, \"remap_tasks\": %lld, "
                   "\"map_tasks\": %d }%s\n",
                   p.r, p.wall_s, p.cpu_s,
                   static_cast<long long>(p.payload_bytes),
                   static_cast<long long>(p.frames),
                   static_cast<long long>(p.net_bytes),
                   static_cast<long long>(p.remap_tasks), p.map_tasks,
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"payload_reduction_r2_vs_r1\": %.4f,\n"
                 "  \"payload_reduction_r3_vs_r1\": %.4f,\n"
                 "  \"meets_1p8x_bar\": %s\n"
                 "}\n",
                 reduction, reduction_r3, reduction >= 1.8 ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.string().c_str());
  }
  return reduction >= 1.8 ? 0 : 1;
}
