// Failover ablation: what does losing the coordinator leader cost?
//
// Each trial stands up a 3-replica coordinator group over real TCP, joins
// one CoordClient through the HA endpoint list, kills the leader (stop +
// socket shutdown, the kill -9 equivalent), and measures two latencies
// from the instant of the kill:
//
//   elect_ms   — until the surviving lowest-id replica claims leadership
//   recover_ms — until the client's re-registration is confirmed by the
//                new leader (failovers() ticks): the control plane is
//                serving this worker again
//
// Results land in OutDir()/BENCH_failover.json (OPMR_BENCH_OUT overrides
// the directory), the persisted perf trajectory ROADMAP asks for.  Exit
// status enforces the acceptance bar: every trial must recover within the
// election timeout plus a small scheduling allowance.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "coord/member.h"
#include "metrics/counters.h"
#include "metrics/stopwatch.h"
#include "net/tcp.h"
#include "replica/replica.h"

namespace {

using namespace opmr;

struct ReplicaNode {
  MetricRegistry metrics;
  std::unique_ptr<net::TcpTransport> wire;
  std::unique_ptr<replica::CoordinatorReplica> rep;

  void Kill() {
    rep->Stop();
    wire->Shutdown();
  }
};

std::vector<std::unique_ptr<ReplicaNode>> MakeGroup(
    const std::filesystem::path& dir, int trial, double election_timeout_ms) {
  constexpr int kReplicas = 3;
  std::vector<std::unique_ptr<ReplicaNode>> nodes;
  for (int i = 0; i < kReplicas; ++i) {
    auto node = std::make_unique<ReplicaNode>();
    node->wire = std::make_unique<net::TcpTransport>(&node->metrics);
    node->wire->Bind();
    nodes.push_back(std::move(node));
  }
  for (int i = 0; i < kReplicas; ++i) {
    replica::CoordinatorReplica::Options opts;
    opts.replica_id = static_cast<std::uint32_t>(i + 1);
    opts.endpoint = nodes[i]->wire->endpoint();
    opts.changelog_dir =
        dir / ("trial_" + std::to_string(trial) + "_r" + std::to_string(i + 1));
    std::filesystem::create_directories(opts.changelog_dir);
    opts.vote_interval_ms = 25;
    opts.election_timeout_ms = election_timeout_ms;
    opts.lease_s = 30.0;  // failure detection is not what this bench times
    opts.rejoin_grace_s = 30.0;
    for (int j = 0; j < kReplicas; ++j) {
      if (j == i) continue;
      opts.peers.push_back({static_cast<std::uint32_t>(j + 1),
                            nodes[j]->wire->endpoint()});
    }
    nodes[i]->rep = std::make_unique<replica::CoordinatorReplica>(
        nodes[i]->wire.get(), &nodes[i]->metrics, opts);
  }
  return nodes;
}

bool PollUntilMs(double timeout_ms, const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * (sorted.size() - 1));
  return sorted[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::FromArgs(argc, argv);
  const int trials = static_cast<int>(cfg.GetInt("trials", 5));
  const double election_timeout_ms =
      static_cast<double>(cfg.GetInt("election_timeout_ms", 250));
  const double heartbeat_ms =
      static_cast<double>(cfg.GetInt("heartbeat_ms", 25));
  // The client needs a couple of heartbeat intervals to notice the dead
  // leader, the survivor one election timeout to claim, and both a round
  // trip to confirm — triple the timeout is a generous but honest bar.
  const double budget_ms = 3.0 * election_timeout_ms;

  bench::Banner("Failover ablation: leader kill -> new leader serving");
  std::printf("3 replicas, election timeout %.0f ms, client heartbeat "
              "%.0f ms, %d trials\n\n",
              election_timeout_ms, heartbeat_ms, trials);

  const auto dir =
      std::filesystem::temp_directory_path() / "opmr_bench_failover";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  std::vector<double> elect_ms;
  std::vector<double> recover_ms;
  int failed_trials = 0;
  for (int trial = 0; trial < trials; ++trial) {
    auto nodes = MakeGroup(dir, trial, election_timeout_ms);
    if (!nodes[0]->rep->WaitForLeadership(10.0)) {
      std::printf("trial %d: replica 1 never led, skipping\n", trial);
      ++failed_trials;
      for (auto& node : nodes) node->Kill();
      continue;
    }

    coord::CoordClient::Options mopts;
    mopts.endpoints = {nodes[0]->wire->endpoint(), nodes[1]->wire->endpoint(),
                       nodes[2]->wire->endpoint()};
    mopts.worker_id = "bench-w";
    mopts.endpoint = "-";
    mopts.heartbeat_interval_ms = heartbeat_ms;
    MetricRegistry client_metrics;
    coord::CoordClient member(&client_metrics, mopts);
    member.Join(10.0);
    // The registration must be replicated before the kill, or the new
    // leader would serve an empty registry and recovery would be a rejoin
    // from scratch rather than a failover.
    (void)PollUntilMs(10'000, [&] {
      return nodes[1]->rep->applied_index() >= 1 &&
             nodes[2]->rep->applied_index() >= 1;
    });

    WallTimer timer;
    nodes[0]->Kill();
    const bool elected = PollUntilMs(
        10'000, [&] { return nodes[1]->rep->is_leader(); });
    const double t_elect = timer.Nanos() / 1e6;
    const bool recovered =
        elected && PollUntilMs(10'000, [&] { return member.failovers() >= 1; });
    const double t_recover = timer.Nanos() / 1e6;

    member.Stop();
    nodes[0]->rep.reset();
    for (auto& node : nodes) {
      if (node->rep) node->rep->Stop();
    }
    for (auto& node : nodes) node->wire->Shutdown();

    if (!recovered) {
      std::printf("trial %d: FAILED to recover within 10 s\n", trial);
      ++failed_trials;
      continue;
    }
    elect_ms.push_back(t_elect);
    recover_ms.push_back(t_recover);
    std::printf("trial %d: elected %.1f ms, serving again %.1f ms%s\n", trial,
                t_elect, t_recover, t_recover <= budget_ms ? "" : "  (!)");
  }
  std::filesystem::remove_all(dir);

  std::sort(elect_ms.begin(), elect_ms.end());
  std::sort(recover_ms.begin(), recover_ms.end());
  const double elect_p50 = Percentile(elect_ms, 0.50);
  const double recover_p50 = Percentile(recover_ms, 0.50);
  const double recover_max = recover_ms.empty() ? 0.0 : recover_ms.back();

  std::printf("\nelection  : p50 %.1f ms (timeout %.0f ms)\n", elect_p50,
              election_timeout_ms);
  std::printf("recovery  : p50 %.1f ms, max %.1f ms (budget %.0f ms)\n",
              recover_p50, recover_max, budget_ms);

  const auto json_path = bench::OutDir() / "BENCH_failover.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_failover\",\n"
                 "  \"replicas\": 3,\n"
                 "  \"trials\": %d,\n"
                 "  \"failed_trials\": %d,\n"
                 "  \"election_timeout_ms\": %.0f,\n"
                 "  \"heartbeat_interval_ms\": %.0f,\n"
                 "  \"elect_ms\": { \"p50\": %.2f, \"min\": %.2f, "
                 "\"max\": %.2f },\n"
                 "  \"recover_ms\": { \"p50\": %.2f, \"min\": %.2f, "
                 "\"max\": %.2f },\n"
                 "  \"recover_budget_ms\": %.0f\n"
                 "}\n",
                 trials, failed_trials, election_timeout_ms, heartbeat_ms,
                 elect_p50, elect_ms.empty() ? 0.0 : elect_ms.front(),
                 elect_ms.empty() ? 0.0 : elect_ms.back(), recover_p50,
                 recover_ms.empty() ? 0.0 : recover_ms.front(), recover_max,
                 budget_ms);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.string().c_str());
  }
  return (failed_trials == 0 && recover_max <= budget_ms) ? 0 : 1;
}
