// Ablation A7 — fault rate × recovery policy (real engine, chaos plane).
//
// Sweeps a seeded FaultPlan's per-record map-crash rate (plus one injected
// slow node) against three recovery policies: none (a single attempt — any
// fault kills the job), retry (3 attempts with backoff), and retry plus
// speculative straggler backups.  The paper's Table III frames this
// trade-off qualitatively; this bench puts numbers on what re-execution
// costs and what speculation buys back under the pull-shuffle model.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A7: fault rate x recovery policy "
                "(real engine, per-user count, seeded chaos plane)");

  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 200'000));

  struct Policy {
    const char* name;
    int attempts;
    bool speculate;
  };
  const std::vector<Policy> policies = {
      {"no_recovery", 1, false},
      {"retry", 3, false},
      {"retry_spec", 3, true},
  };
  const std::vector<double> rates = {0.0, 1e-5, 5e-5};

  TextTable table;
  table.AddRow({"Fault rate", "Policy", "Status", "Wall time", "Map retries",
                "Reduce retries", "Spec (wins)", "Faults"});
  bench::CsvSink csv("ablation_faults.csv");
  csv.Row("rate", "policy", "status", "wall_s", RecoveryCsvHeader());

  for (double rate : rates) {
    for (const auto& policy : policies) {
      // Fresh platform per cell: a failed job must not poison the next run,
      // and each cell regenerates input so DFS namespaces never collide.
      PlatformOptions popts;
      popts.num_nodes = 3;
      popts.block_bytes = 512u << 10;
      popts.max_task_attempts = policy.attempts;
      popts.speculative_execution = policy.speculate;
      popts.retry_backoff_base_ms = 0.5;
      popts.retry_backoff_max_ms = 10.0;
      if (rate > 0.0) {
        popts.fault_plan = "seed=11;map_crash:rate=" + std::to_string(rate) +
                           ";slow_node:node=0,delay_ms=0.05";
      }
      Platform platform(popts);
      ClickStreamOptions gen;
      gen.num_records = records;
      gen.num_users = 10'000;
      GenerateClickStream(platform.dfs(), "clicks", gen);

      JobResult r;
      std::string status = "ok";
      try {
        r = platform.Run(PerUserCountJob("clicks", "out", 4),
                         HadoopOptions());
      } catch (const std::exception&) {
        status = "failed";
      }
      table.AddRow({std::to_string(rate), policy.name, status,
                    status == "ok" ? HumanSeconds(r.wall_seconds) : "-",
                    std::to_string(r.map_task_retries),
                    std::to_string(r.reduce_task_retries),
                    std::to_string(r.speculative_launched) + " (" +
                        std::to_string(r.speculative_wins) + ")",
                    std::to_string(r.faults_injected)});
      csv.Row(rate, policy.name, status, r.wall_seconds,
              RecoveryCsvCells(r.map_task_retries, r.reduce_task_retries,
                               r.speculative_launched, r.speculative_wins,
                               r.faults_injected));
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape: without recovery any nonzero fault rate kills the "
      "job; retries\nabsorb every fault at a modest wall-time cost, and "
      "speculation claws back most of\nthe slow-node penalty in the final "
      "wave.\n");
  return 0;
}
