// Ablation A1 — Hadoop's merge factor F (io.sort.factor).
//
// The multi-pass merge triggers whenever F on-disk runs accumulate; a lower
// F means more merge passes, more intermediate re-reading/re-writing, and a
// longer blocking window (paper §II-A / §III-B.4).
#include <cstdio>

#include "bench_util.h"
#include "metrics/report.h"
#include "sim/simulator.h"

int main() {
  using namespace opmr;
  using namespace opmr::sim;

  bench::Banner("Ablation A1: merge factor F, sessionization (simulated)");

  TextTable table;
  table.AddRow({"F", "Merge ops", "Spill write", "Spill read", "Completion",
                "Valley CPU util"});
  CsvWriter csv(bench::OutDir() / "ablation_merge_factor.csv");
  csv.WriteRow({"merge_factor", "merge_ops", "spill_write_bytes",
                "spill_read_bytes", "completion_s", "valley_util"});

  for (int f : {4, 6, 10, 20, 40}) {
    SimConfig config;
    config.merge_factor = f;
    const SimResult r = SimulateJob(Sessionization256(), config);
    const double valley =
        r.MinWindowCpuUtil(r.map_phase_end_s, r.completion_s * 0.95);
    table.AddRow({std::to_string(f), std::to_string(r.merge_operations),
                  HumanBytes(r.spill_write_bytes),
                  HumanBytes(r.spill_read_bytes), HumanSeconds(r.completion_s),
                  Percent(valley)});
    csv.WriteRow({std::to_string(f), std::to_string(r.merge_operations),
                  std::to_string(r.spill_write_bytes),
                  std::to_string(r.spill_read_bytes),
                  std::to_string(r.completion_s), std::to_string(valley)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: lower F => more merge passes => more "
              "intermediate I/O and a longer job.\n");
  return 0;
}
