// Ablation A9 — checkpoint interval × fault rate (real engine, chaos plane).
//
// Table III's blank cell: pipelined (push) shuffle AND reduce fault
// tolerance.  The checkpoint subsystem fills it by periodically persisting
// reducer state and replaying only the un-acknowledged shuffle suffix.
// This bench sweeps the checkpoint interval against an injected reduce
// crash and reports what the interval costs when nothing fails (images
// written, bytes) and what it buys when something does (records replayed,
// recovery time) — plus the no-checkpoint row, where a crashed reducer
// under push shuffle is unrecoverable by design.
//
// Correctness gate: every surviving run's output must equal the fault-free
// baseline's, key for key and value for value.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A9: checkpoint interval x reduce faults "
                "(real engine, per-user count, push shuffle)");

  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 200'000));
  // Fires inside reducer 1's first attempt, after folding (output record 50).
  const std::string crash_plan = "seed=11;reduce_crash:task=1,record=50";

  const std::vector<std::uint64_t> intervals = {0, 2'000, 8'000, 32'000};
  const std::vector<std::pair<const char*, bool>> fault_modes = {
      {"none", false}, {"reduce_crash", true}};

  auto run_cell = [&](std::uint64_t interval, bool faulty, JobResult* r) {
    PlatformOptions popts;
    popts.num_nodes = 3;
    popts.block_bytes = 512u << 10;
    popts.max_task_attempts = 2;
    popts.retry_backoff_base_ms = 0.5;
    popts.retry_backoff_max_ms = 10.0;
    if (faulty) popts.fault_plan = crash_plan;
    Platform platform(popts);
    ClickStreamOptions gen;
    gen.num_records = records;
    gen.num_users = 10'000;
    GenerateClickStream(platform.dfs(), "clicks", gen);

    JobOptions options = interval > 0 ? CheckpointedOnePassOptions(interval)
                                      : HashOnePassOptions();
    *r = platform.Run(PerUserCountJob("clicks", "out", 4), options);
    auto rows = platform.ReadOutput("out", 4);
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  // Fault-free baseline output every surviving cell must reproduce.
  JobResult baseline_result;
  const auto baseline = run_cell(0, false, &baseline_result);

  TextTable table;
  table.AddRow({"Interval", "Fault", "Status", "Wall time", "Ckpts (bytes)",
                "Replayed", "Recover", "Output"});
  bench::CsvSink csv("ablation_checkpoint.csv");
  csv.Row("interval", "fault", "status", "wall_s", "output_matches",
          CheckpointCsvHeader());

  for (const auto interval : intervals) {
    for (const auto& [fault_name, faulty] : fault_modes) {
      JobResult r;
      std::string status = "ok";
      std::string output = "-";
      try {
        const auto rows = run_cell(interval, faulty, &r);
        output = rows == baseline ? "exact" : "DIVERGED";
      } catch (const std::exception&) {
        // Expected shape: push shuffle without checkpoints cannot replay.
        status = "unrecoverable";
      }
      table.AddRow({std::to_string(interval), fault_name, status,
                    status == "ok" ? HumanSeconds(r.wall_seconds) : "-",
                    std::to_string(r.checkpoints_written) + " (" +
                        HumanBytes(double(r.checkpoint_bytes)) + ")",
                    std::to_string(r.replay_records),
                    HumanSeconds(r.recover_seconds), output});
      csv.Row(interval, fault_name, status, r.wall_seconds, output,
              CheckpointCsvCells(r.checkpoints_written, r.checkpoints_loaded,
                                 r.checkpoint_bytes, r.replay_records,
                                 r.recover_seconds));
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape: interval=0 with a reduce crash is unrecoverable "
      "(Table III's\npipelining/fault-tolerance trade-off); with "
      "checkpointing the job survives, and\nshorter intervals replay fewer "
      "records at the price of more image writes.\n");
  return 0;
}
