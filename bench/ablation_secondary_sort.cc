// Ablation A7 — secondary sort vs in-reducer sorting for sessionization.
//
// The classic sessionization reduce buffers every user's clicks and sorts
// them by time; the composite-key variant lets the framework's existing
// sort-merge machinery deliver clicks pre-ordered, so reduce streams with
// O(1) state.  The framework sorts slightly longer keys; the reduce
// function stops sorting entirely — a real Hadoop-era trade to measure.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A7: sessionization via secondary sort "
                "(real engine)");

  Platform platform({.num_nodes = 2, .block_bytes = 8u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 20'000;  // long per-user click lists: reduce sort matters
  GenerateClickStream(platform.dfs(), "clicks", gen);

  const auto classic =
      platform.Run(SessionizationJob("clicks", "a7_classic", 4),
                   HadoopOptions());
  const auto ss =
      platform.Run(SessionizationSecondarySortJob("clicks", "a7_ss", 4),
                   HadoopOptions());

  auto phase = [](const JobResult& r, const char* name) {
    auto it = r.cpu_seconds.find(name);
    return it == r.cpu_seconds.end() ? 0.0 : it->second;
  };

  TextTable table;
  table.AddRow({"Variant", "Wall", "Total CPU", "Map sort CPU",
                "Reduce fn CPU"});
  table.AddRow({"classic (sort in reduce fn)",
                HumanSeconds(classic.wall_seconds),
                HumanSeconds(classic.total_cpu_seconds),
                HumanSeconds(phase(classic, "map_sort")),
                HumanSeconds(phase(classic, "reduce_function"))});
  table.AddRow({"secondary sort (composite keys)",
                HumanSeconds(ss.wall_seconds),
                HumanSeconds(ss.total_cpu_seconds),
                HumanSeconds(phase(ss, "map_sort")),
                HumanSeconds(phase(ss, "reduce_function"))});
  std::printf("%s", table.ToString().c_str());

  CsvWriter csv(bench::OutDir() / "ablation_secondary_sort.csv");
  csv.WriteRow({"variant", "wall_s", "cpu_s", "map_sort_s", "reduce_fn_s"});
  csv.WriteRow({"classic", std::to_string(classic.wall_seconds),
                std::to_string(classic.total_cpu_seconds),
                std::to_string(phase(classic, "map_sort")),
                std::to_string(phase(classic, "reduce_function"))});
  csv.WriteRow({"secondary_sort", std::to_string(ss.wall_seconds),
                std::to_string(ss.total_cpu_seconds),
                std::to_string(phase(ss, "map_sort")),
                std::to_string(phase(ss, "reduce_function"))});

  std::printf("\nExpected shape: reduce-function CPU drops sharply (no "
              "buffering/sorting per user);\nmap-sort CPU rises slightly "
              "(15-byte composite keys) — and, per the paper's thesis,\n"
              "EVERY sort-merge variant still pays CPU the hash runtime "
              "avoids altogether.\n");
  return 0;
}
