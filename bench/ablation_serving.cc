// Serving-plane ablation: what does live queryability cost the job?
//
// Runs the sessionization streaming job twice over the same pre-generated
// clickstream: once bare (no serving plane), and once publishing interval
// snapshots to a SnapshotPublisher with a SnapshotFrontend replica under a
// closed-loop fleet of query clients.  Records sustained queries/s, query
// latency percentiles, and the job-completion perturbation the serving
// plane imposes — the acceptance bar is <= 5%.
//
// Results land in OutDir()/BENCH_serving.json (OPMR_BENCH_OUT overrides
// the directory), the persisted perf trajectory ROADMAP asks for.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/counters.h"
#include "metrics/stopwatch.h"
#include "net/loopback.h"
#include "serve/frontend.h"
#include "serve/publisher.h"
#include "serve/query_client.h"
#include "stream/streaming_job.h"
#include "workloads/clickstream.h"
#include "workloads/streaming_queries.h"

namespace {

using namespace opmr;

// One full ingest + finish of the sessionization job; returns seconds.
double RunJob(const std::vector<std::string>& records, int workers,
              const StreamingOptions& options) {
  StreamingJob job(StreamingQueryByName("sessionization"), options, workers);
  WallTimer timer;
  for (const auto& record : records) job.Ingest(record);
  (void)job.Finish();
  return timer.Seconds();
}

double MedianOf(std::vector<double> runs) {
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

double PercentileUs(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * (sorted_us.size() - 1));
  return sorted_us[rank];
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::FromArgs(argc, argv);
  const auto records_n =
      static_cast<std::uint64_t>(cfg.GetInt("records", 400'000));
  const int clients = static_cast<int>(cfg.GetInt("clients", 4));
  const int workers = static_cast<int>(cfg.GetInt("workers", 3));
  const int runs = static_cast<int>(cfg.GetInt("runs", 3));
  // Closed-loop with think time: each client waits think_us between
  // queries.  Zero means spin flat-out, which on a small host measures CPU
  // theft from the job rather than the serving plane's own overhead.
  const auto think_us = cfg.GetInt("think_us", 2'000);
  const auto interval = static_cast<std::uint64_t>(
      cfg.GetInt("interval", static_cast<std::int64_t>(records_n / 20)));

  bench::Banner("Serving-plane ablation: live queries vs job completion");

  // Pre-generate the clickstream once so both arms ingest identical bytes.
  Platform platform({.num_nodes = 2, .block_bytes = 1u << 20});
  ClickStreamOptions gen;
  gen.num_records = records_n;
  gen.num_users = 2'000;
  gen.num_urls = 500;
  GenerateClickStream(platform.dfs(), "clicks", gen);
  std::vector<std::string> records;
  records.reserve(records_n);
  for (const auto& block : platform.dfs().ListBlocks("clicks")) {
    auto reader = platform.dfs().OpenBlock(block);
    Slice record;
    while (reader->Next(&record)) {
      records.emplace_back(record.data(), record.size());
    }
  }

  // --- Arm 1: bare job, no serving plane -------------------------------------
  (void)RunJob(records, workers, {});  // warmup
  std::vector<double> baseline_runs;
  for (int r = 0; r < runs; ++r) {
    baseline_runs.push_back(RunJob(records, workers, {}));
  }
  const double baseline_s = MedianOf(baseline_runs);
  std::printf("baseline  : %s  (%.2f M rec/s, median of %d)\n",
              HumanSeconds(baseline_s).c_str(),
              records_n / baseline_s / 1e6, runs);

  // --- Arm 2: publisher + frontend + closed-loop client fleet ----------------
  const auto image_dir =
      std::filesystem::temp_directory_path() / "opmr_bench_serving";
  std::filesystem::remove_all(image_dir);
  std::filesystem::create_directories(image_dir);

  std::vector<double> serving_runs;
  std::uint64_t total_queries = 0;
  std::uint64_t stale_rejects = 0;
  double query_window_s = 0.0;
  std::vector<double> latencies_us;
  for (int r = 0; r < runs; ++r) {
    MetricRegistry metrics;
    net::LoopbackTransport pub_wire(&metrics);
    serve::PublisherOptions popts;
    popts.job = "sessionization";
    popts.dir = image_dir;
    popts.retain = 4;
    serve::SnapshotPublisher publisher(&pub_wire, &metrics, popts);

    net::LoopbackTransport server(&metrics);
    serve::FrontendOptions fopts;
    fopts.job = "sessionization";
    fopts.aggregator = StreamingQueryByName("sessionization").aggregator;
    serve::SnapshotFrontend frontend(&server, &pub_wire, &metrics, fopts);

    StreamingOptions sopts;
    sopts.snapshot_interval_records = interval;
    sopts.publish_snapshot = [&publisher](CheckpointImage image) {
      publisher.Publish(std::move(image));
    };

    // The fleet: closed-loop point queries (one in flight per client) with
    // a top-k sprinkled in, against whatever view is live.  Clients spin
    // up immediately; until the first snapshot lands their queries come
    // back kStale, which the fleet counts rather than hides.
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> ok_queries{0};
    std::atomic<std::uint64_t> stale{0};
    std::vector<std::vector<double>> per_client_us(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> fleet;
    fleet.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      fleet.emplace_back([&, c] {
        serve::QueryClient client(&server, "tenant-" + std::to_string(c));
        auto& lat = per_client_us[static_cast<std::size_t>(c)];
        std::uint64_t i = 0;
        std::vector<std::string> keys;
        while (!stop.load(std::memory_order_relaxed)) {
          if (keys.empty()) {
            // Learn the live key space from the replica itself.
            for (auto& row : frontend.ScanAll()) {
              keys.push_back(std::move(row.first));
            }
            if (keys.empty()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              continue;
            }
          }
          WallTimer timer;
          const auto result = (++i % 16 == 0)
                                  ? client.TopK(10)
                                  : client.Point(keys[i % keys.size()]);
          lat.push_back(timer.Nanos() / 1e3);
          if (result.status == net::QueryStatus::kOk) {
            ok_queries.fetch_add(1, std::memory_order_relaxed);
          } else {
            stale.fetch_add(1, std::memory_order_relaxed);
          }
          if (think_us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(think_us));
          }
        }
      });
    }

    WallTimer window;
    serving_runs.push_back(RunJob(records, workers, sopts));
    stop.store(true);
    const double window_s = window.Seconds();
    for (auto& t : fleet) t.join();

    total_queries += ok_queries.load() + stale.load();
    stale_rejects += stale.load();
    query_window_s += window_s;
    for (auto& lat : per_client_us) {
      latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
    }
  }
  std::filesystem::remove_all(image_dir);

  const double serving_s = MedianOf(serving_runs);
  const double perturbation_pct = (serving_s - baseline_s) / baseline_s * 100.0;
  const double queries_per_s =
      query_window_s > 0 ? total_queries / query_window_s : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = PercentileUs(latencies_us, 0.50);
  const double p90 = PercentileUs(latencies_us, 0.90);
  const double p99 = PercentileUs(latencies_us, 0.99);

  std::printf("serving   : %s  (%d clients closed-loop, %lld us think, "
              "median of %d)\n",
              HumanSeconds(serving_s).c_str(), clients,
              static_cast<long long>(think_us), runs);
  std::printf("perturb   : %+.2f%% job completion (budget: 5%%)\n",
              perturbation_pct);
  std::printf("queries   : %llu total, %.0f queries/s sustained\n",
              static_cast<unsigned long long>(total_queries), queries_per_s);
  std::printf("latency   : p50 %.1f us, p90 %.1f us, p99 %.1f us\n",
              p50, p90, p99);
  std::printf("stale     : %llu rejected pre-first-snapshot or lagging\n",
              static_cast<unsigned long long>(stale_rejects));

  const auto json_path = bench::OutDir() / "BENCH_serving.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_serving\",\n"
                 "  \"records\": %llu,\n"
                 "  \"snapshot_interval\": %llu,\n"
                 "  \"workers\": %d,\n"
                 "  \"clients\": %d,\n"
                 "  \"client_think_us\": %lld,\n"
                 "  \"runs\": %d,\n"
                 "  \"baseline_complete_s\": %.6f,\n"
                 "  \"serving_complete_s\": %.6f,\n"
                 "  \"perturbation_pct\": %.3f,\n"
                 "  \"perturbation_budget_pct\": 5.0,\n"
                 "  \"queries_total\": %llu,\n"
                 "  \"queries_per_s\": %.1f,\n"
                 "  \"stale_rejects\": %llu,\n"
                 "  \"latency_us\": { \"p50\": %.1f, \"p90\": %.1f, "
                 "\"p99\": %.1f }\n"
                 "}\n",
                 static_cast<unsigned long long>(records_n),
                 static_cast<unsigned long long>(interval), workers, clients,
                 static_cast<long long>(think_us), runs, baseline_s,
                 serving_s, perturbation_pct,
                 static_cast<unsigned long long>(total_queries), queries_per_s,
                 static_cast<unsigned long long>(stale_rejects), p50, p90, p99);
    std::fclose(out);
    std::printf("\nwrote %s\n", json_path.string().c_str());
  }
  return perturbation_pct <= 5.0 ? 0 : 1;
}
