// Table III — Hadoop vs MapReduce Online vs the incremental one-pass
// runtime, with every cell verified empirically on the real engine rather
// than asserted.
//
//   group-by       : which implementation ran (and whether map CPU included
//                    a sort phase)
//   shuffling      : pull vs push (pushed-chunk counters)
//   incremental    : when the first answer left the system, as a fraction
//                    of job wall time (plus snapshot files for HOP)
//   in-memory      : reduce-side spill bytes when memory suffices
#include <cstdio>

#include "bench_util.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

namespace {

struct Verdict {
  std::string group_by;
  std::string shuffling;
  std::string incremental;
  std::string in_memory;
  double first_output_frac = 1.0;
  std::int64_t spill_bytes = 0;
};

Verdict Probe(opmr::Platform& platform, const std::string& tag,
              opmr::JobOptions options) {
  using namespace opmr;
  // Level playing field for the in-memory row: no combiner, and a reduce
  // buffer smaller than the raw shuffled data but larger than the per-key
  // states — the regime where the paper's ideal system processes fully in
  // memory while sort-merge must stage data to disk.
  options.map_side_combine = false;
  options.reduce_buffer_bytes = 1u << 20;
  // Threshold query: emit a url's count as soon as it reaches 100 clicks —
  // only an incremental runtime can answer before the merge completes.
  if (options.group_by == GroupBy::kHash) {
    options.early_emit = [](Slice, Slice state) {
      return DecodeU64(state.data()) >= 100;
    };
  }
  auto spec = PageFrequencyJob("clicks", "t3_" + tag, 4);
  const auto result = platform.Run(spec, options);

  Verdict v;
  const bool sorted = result.cpu_seconds.count("map_sort") != 0;
  v.group_by = sorted ? "Sort-Merge" : "Hash only";
  const auto pushed = result.Bytes(device::kPushedChunks);
  v.shuffling = pushed > 0 ? "Push / Pull" : "Pull";
  v.first_output_frac =
      result.first_output_seconds < 0
          ? 1.0
          : result.first_output_seconds / result.wall_seconds;

  bool snapshots = false;
  for (int s = 1; s <= 3 && !snapshots; ++s) {
    for (int r = 0; r < 4; ++r) {
      if (platform.dfs().Exists("t3_" + tag + ".snapshot" +
                                std::to_string(s) + ".part" +
                                std::to_string(r))) {
        snapshots = true;
      }
    }
  }
  char buf[96];
  if (options.group_by == GroupBy::kHash) {
    std::snprintf(buf, sizeof(buf), "Fully incremental (first answer at %.0f%% of job)",
                  100 * v.first_output_frac);
  } else if (snapshots) {
    std::snprintf(buf, sizeof(buf), "Periodic snapshots only (first at %.0f%%)",
                  100 * v.first_output_frac);
  } else {
    std::snprintf(buf, sizeof(buf), "No (first answer at %.0f%% of job)",
                  100 * v.first_output_frac);
  }
  v.incremental = buf;

  v.spill_bytes = result.Bytes(device::kSpillWrite);
  v.in_memory = v.spill_bytes == 0 ? "Yes (no reduce spill)"
                                   : "No (" + HumanBytes(double(v.spill_bytes)) +
                                         " reduce spill)";
  return v;
}

}  // namespace

int main() {
  using namespace opmr;
  bench::Banner("Table III: Hadoop vs MapReduce Online vs incremental "
                "one-pass runtime (each cell measured on the real engine)");

  Platform platform({.num_nodes = 3, .block_bytes = 2u << 20});
  ClickStreamOptions gen;
  gen.num_records = 400'000;
  gen.num_users = 5'000;
  gen.num_urls = 2'000;
  gen.url_theta = 1.1;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  const auto hadoop = Probe(platform, "hadoop", HadoopOptions());
  const auto hop = Probe(platform, "hop", MapReduceOnlineOptions());
  const auto hash = Probe(platform, "hash", HashOnePassOptions());

  TextTable table;
  table.AddRow({"", "Hadoop", "MR Online", "Incremental one-pass"});
  table.AddRow({"Group-by", hadoop.group_by, hop.group_by, hash.group_by});
  table.AddRow({"Shuffling", hadoop.shuffling, hop.shuffling, hash.shuffling});
  table.AddRow({"Incremental", hadoop.incremental, hop.incremental,
                hash.incremental});
  table.AddRow({"In-memory", hadoop.in_memory, hop.in_memory, hash.in_memory});
  std::printf("%s", table.ToString().c_str());

  CsvWriter csv(bench::OutDir() / "table3.csv");
  csv.WriteRow({"system", "group_by", "shuffling", "first_output_frac",
                "reduce_spill_bytes"});
  csv.WriteRow({"hadoop", hadoop.group_by, hadoop.shuffling,
                std::to_string(hadoop.first_output_frac),
                std::to_string(hadoop.spill_bytes)});
  csv.WriteRow({"mr_online", hop.group_by, hop.shuffling,
                std::to_string(hop.first_output_frac),
                std::to_string(hop.spill_bytes)});
  csv.WriteRow({"one_pass", hash.group_by, hash.shuffling,
                std::to_string(hash.first_output_frac),
                std::to_string(hash.spill_bytes)});

  std::printf("\nPaper's Table III (design targets): Hadoop = sort-merge / "
              "pull / no / no;\nMR Online = sort-merge / push+pull / "
              "snapshot-based / no;\nideal = hash only / push+pull / fully "
              "incremental / yes.\n");
  return 0;
}
