// Figure 3 — task timeline of the inverted-index construction workload.
//
// Shape target (paper §III-B.4): the blocking merge phase is present in
// this workload too — "progress is stopped until local intermediate data is
// merged on each node" — though the intermediate data (150 GB) is smaller
// than sessionization's.
#include <cstdio>

#include "bench_util.h"
#include "sim/simulator.h"

int main() {
  using namespace opmr;
  using namespace opmr::sim;

  bench::Banner("Figure 3: inverted-index construction task timeline "
                "(427 GB GOV2-scale corpus, simulated cluster)");

  const SimWorkload w = InvertedIndex427();
  SimConfig config;
  const SimResult r = SimulateJob(w, config);

  std::printf("completion: %s (paper: 118 min.)   map phase end: %.0f s\n",
              HumanSeconds(r.completion_s).c_str(), r.map_phase_end_s);
  std::printf("map output %s (paper 150 GB) | spill write %s (paper 150 GB)\n",
              HumanBytes(r.map_output_write_bytes).c_str(),
              HumanBytes(r.spill_write_bytes).c_str());

  const double valley_end =
      r.map_phase_end_s + 0.4 * (r.completion_s - r.map_phase_end_s);
  std::printf("CPU util: map %.2f | post-map merge window %.2f (iowait %.2f)"
              "  <- blocking merge present\n",
              r.MeanCpuUtil(0, r.map_phase_end_s),
              r.MeanCpuUtil(r.map_phase_end_s, valley_end),
              r.MeanIowait(r.map_phase_end_s, valley_end));

  bench::PrintTaskTimeline(r.timeline, r.completion_s);
  bench::PrintSeries("CPU utilization", r.cpu_util, 1.0);
  bench::SaveTimelineCsv("fig3_timeline.csv", r.timeline);
  bench::SaveSeriesCsv("fig3_cpu_util.csv", "cpu_util", r.cpu_util);
  return 0;
}
