// Ablation A3 — reducer memory budget vs reduce-side technique.
//
// Sweeps the reducer byte budget across the three hash reducers and the
// sort-merge baseline, measuring reduce-spill bytes.  Expected shape:
// spills grow as memory shrinks for every blocking technique; the hot-key
// reducer degrades most gracefully because only cold keys leave memory
// (paper §IV requirement 4 / §V technique 3).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A3: reducer memory budget vs reduce technique "
                "(real engine, per-user count, no combiner)");

  Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 30'000;
  gen.user_theta = 1.1;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  struct Technique {
    const char* name;
    JobOptions base;
  };
  std::vector<Technique> techniques;
  techniques.push_back({"sort-merge", HadoopOptions()});
  {
    JobOptions o = HashOnePassOptions();
    o.hash_reduce = HashReduce::kHybridHash;
    techniques.push_back({"hybrid-hash", o});
  }
  techniques.push_back({"incremental", HashOnePassOptions()});
  techniques.push_back({"hot-key", HotKeyOnePassOptions(2048)});

  TextTable table;
  std::vector<std::string> header = {"Budget"};
  for (const auto& t : techniques) header.emplace_back(t.name);
  table.AddRow(header);

  CsvWriter csv(bench::OutDir() / "ablation_memory_budget.csv");
  csv.WriteRow({"budget_bytes", "technique", "spill_bytes", "wall_s"});

  int i = 0;
  for (std::size_t budget : {64u << 10, 256u << 10, 1u << 20, 4u << 20,
                             16u << 20}) {
    std::vector<std::string> row = {HumanBytes(double(budget))};
    for (const auto& t : techniques) {
      JobOptions options = t.base;
      options.map_side_combine = false;
      options.reduce_buffer_bytes = budget;
      const auto spec =
          PerUserCountJob("clicks", "a3_" + std::to_string(i++), 4);
      const auto r = platform.Run(spec, options);
      const auto spill = r.Bytes(device::kSpillWrite);
      row.push_back(HumanBytes(double(spill)));
      csv.WriteRow({std::to_string(budget), t.name, std::to_string(spill),
                    std::to_string(r.wall_seconds)});
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nCells are reduce-spill bytes; expected to shrink down each "
              "column as memory grows\nand across each row toward the "
              "hot-key technique under tight memory.\n");
  return 0;
}
