// Ablation A11 — operation-level placement plane x fair-share pools.
//
// Four concurrent per-user-count jobs land on a skewed 3-replica DFS
// layout (Zipf-placed first replicas, a real sleep per remote block read)
// and run twice through the src/sched JobScheduler: once with the naive
// registration-order baseline (operations round-robin over nodes, blind
// to locality) and once with the locality-ranked placement plane.  The
// CSV reports makespan, the data-local fraction of planned map
// operations, and the actual DFS local/remote read split per mode.
//
// Two more acceptance probes ride along: a 3:1 fair-share microbench (two
// always-backlogged tenants contending for 400 slot grants through the
// PoolTree) and a same-seed determinism check (two planes planning the
// same four jobs over the same layout must produce byte-identical
// assignment logs).  The exit status enforces all the bars, so CI catches
// a placement regression the same way it catches a failing test.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "placement/placement.h"
#include "placement/pool_tree.h"
#include "sched/scheduler.h"
#include "workloads/tasks.h"

namespace {

using namespace opmr;

struct JobDef {
  const char* id;
  const char* pool;
};

struct ModeResult {
  std::string name;
  double makespan_s = 0.0;
  double local_fraction = 0.0;
  std::int64_t dfs_local_reads = 0;
  std::int64_t dfs_remote_reads = 0;
  placement::PlacementPlane::Stats placement;
  std::vector<placement::PoolTree::PoolStats> pools;
};

// Two planes with the same seed planning the same jobs over the same
// layout must emit identical assignment logs (the ISSUE's
// seed-reproducibility bar, checked against the real DFS block lists).
bool SameSeedLogsIdentical(Dfs& dfs, const std::vector<JobDef>& jobs,
                           std::uint64_t seed) {
  const auto plan_all = [&](placement::PlacementPlane& plane) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      plane.PlanJob(static_cast<int>(i),
                    dfs.ListBlocks(std::string(jobs[i].id) + ".in"));
    }
    return plane.Log();
  };
  placement::PlacementPlane a(
      {.mode = placement::PlacementMode::kLocalityRanked, .seed = seed,
       .num_nodes = 4});
  placement::PlacementPlane b(
      {.mode = placement::PlacementMode::kLocalityRanked, .seed = seed,
       .num_nodes = 4});
  const auto log_a = plan_all(a);
  const auto log_b = plan_all(b);
  if (log_a.size() != log_b.size()) return false;
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    if (log_a[i].seq != log_b[i].seq || log_a[i].job != log_b[i].job ||
        log_a[i].block_id != log_b[i].block_id ||
        log_a[i].node != log_b[i].node || log_a[i].local != log_b[i].local ||
        log_a[i].replacement != log_b[i].replacement) {
      return false;
    }
  }
  return !log_a.empty();
}

// Two always-backlogged tenants with weights 3:1 contend for `grants`
// slots; the tree's fair-share pick must converge on a 3:1 split.
double FairShareAlphaFraction(int grants) {
  placement::PoolTree tree({{"alpha", "", 3.0, 0}, {"beta", "", 1.0, 0}});
  tree.JoinJob(1, "alpha");
  tree.JoinJob(2, "beta");
  int alpha = 0;
  for (int i = 0; i < grants; ++i) {
    const int winner = tree.Pick({{1, 1}, {2, 2}});
    tree.OnGrant(winner);
    if (winner == 1) ++alpha;
  }
  return static_cast<double>(alpha) / static_cast<double>(grants);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A11: operation-level placement x fair-share "
                "pools (skewed 3-replica layout, 4 concurrent jobs)");

  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 60'000));
  const auto penalty_us =
      static_cast<std::uint64_t>(cfg.GetInt("remote-penalty-us", 25'000));
  const auto seed = static_cast<std::uint64_t>(cfg.GetInt("seed", 42));

  // Four equal jobs, two tenants.  Replication 3 on 4 nodes means a
  // locality-blind pick still lands on a holder ~75% of the time — the
  // locality plane has to beat that, not a strawman.
  const std::vector<JobDef> jobs = {{"place_alpha_a", "alpha"},
                                    {"place_alpha_b", "alpha"},
                                    {"place_beta_a", "beta"},
                                    {"place_beta_b", "beta"}};

  Platform platform({.num_nodes = 4,
                     .block_bytes = 64u << 10,
                     .replication = 3,
                     .placement_skew = 1.2,
                     .remote_read_penalty_us = penalty_us});
  std::size_t total_blocks = 0;
  for (const auto& def : jobs) {
    ClickStreamOptions gen;
    gen.num_records = records;
    gen.num_users = std::max<std::uint64_t>(100, records / 20);
    GenerateClickStream(platform.dfs(), std::string(def.id) + ".in", gen);
    total_blocks +=
        platform.dfs().ListBlocks(std::string(def.id) + ".in").size();
  }
  std::printf("layout: %zu blocks across 4 jobs, replication 3, skew 1.2, "
              "remote read costs %llu us\n",
              total_blocks, static_cast<unsigned long long>(penalty_us));

  const std::vector<placement::PlacementMode> modes = {
      placement::PlacementMode::kRegistrationOrder,
      placement::PlacementMode::kLocalityRanked};

  std::vector<ModeResult> results;
  for (const auto mode : modes) {
    const std::int64_t local_before =
        platform.metrics().Value("dfs.local_block_reads");
    const std::int64_t remote_before =
        platform.metrics().Value("dfs.remote_block_reads");

    sched::SchedulerOptions sopts;
    sopts.map_slots = 4;
    sopts.reduce_slots = 2;
    sopts.max_concurrent = 4;
    sopts.num_nodes = 4;
    sopts.placement_mode = mode;
    sopts.placement_seed = seed;
    sopts.pools = {{"alpha", "", 3.0, 0}, {"beta", "", 1.0, 0}};
    sched::JobScheduler scheduler(&platform.dfs(), &platform.files(), sopts);
    for (const auto& def : jobs) {
      sched::JobRequest request;
      request.id = def.id;
      // Per-mode output names: both schedulers share one DFS namespace.
      request.spec = PerUserCountJob(
          std::string(def.id) + ".in",
          std::string(def.id) + "." + placement::PlacementModeName(mode), 2);
      request.options = HashOnePassOptions();
      request.pool = def.pool;
      scheduler.Submit(std::move(request));
    }
    for (const auto& report : scheduler.Drain()) {
      if (report.failed) {
        std::fprintf(stderr, "job '%s' failed: %s\n", report.id.c_str(),
                     report.error.c_str());
        return 1;
      }
    }
    const auto stats = scheduler.stats();
    ModeResult r;
    r.name = placement::PlacementModeName(mode);
    r.makespan_s = stats.makespan_s;
    r.placement = stats.placement;
    r.pools = stats.pools;
    r.local_fraction =
        stats.placement.planned > 0
            ? static_cast<double>(stats.placement.planned_local) /
                  static_cast<double>(stats.placement.planned)
            : 0.0;
    r.dfs_local_reads =
        platform.metrics().Value("dfs.local_block_reads") - local_before;
    r.dfs_remote_reads =
        platform.metrics().Value("dfs.remote_block_reads") - remote_before;
    results.push_back(std::move(r));
  }

  const ModeResult& registration = results[0];
  const ModeResult& locality = results[1];

  const double alpha_share = FairShareAlphaFraction(400);
  const bool logs_identical =
      SameSeedLogsIdentical(platform.dfs(), jobs, seed);

  TextTable table;
  table.AddRow({"Mode", "Makespan", "Planned local", "DFS local/remote",
                "Steals", "Re-placed"});
  bench::CsvSink csv("ablation_placement.csv");
  csv.Row("mode", "makespan_s", "planned_local_fraction", "dfs_local_reads",
          "dfs_remote_reads", PlacementCsvHeader());
  for (const auto& r : results) {
    char frac[32];
    std::snprintf(frac, sizeof(frac), "%.0f%% (%lld/%lld)",
                  100.0 * r.local_fraction,
                  static_cast<long long>(r.placement.planned_local),
                  static_cast<long long>(r.placement.planned));
    table.AddRow({r.name, HumanSeconds(r.makespan_s), frac,
                  std::to_string(r.dfs_local_reads) + "/" +
                      std::to_string(r.dfs_remote_reads),
                  std::to_string(r.placement.steals),
                  std::to_string(r.placement.replacements)});
    csv.Row(r.name, r.makespan_s, r.local_fraction, r.dfs_local_reads,
            r.dfs_remote_reads,
            PlacementCsvCells(0, 0, 0, 0, r.placement.planned,
                              r.placement.planned_local,
                              r.placement.replacements, r.placement.steals));
  }
  std::printf("%s", table.ToString().c_str());

  std::printf("\nfair-share pools (locality run, cumulative slot grants):\n");
  for (const auto& p : locality.pools) {
    std::printf("  pool %-8s weight %.1f | %lld grants\n",
                p.name.empty() ? "(root)" : p.name.c_str(), p.weight,
                static_cast<long long>(p.total_grants));
  }
  std::printf("contended 3:1 microbench: alpha takes %.1f%% of 400 grants "
              "(target 75%%)\n",
              100.0 * alpha_share);
  std::printf("same-seed assignment logs identical: %s\n",
              logs_identical ? "yes" : "NO");

  // The acceptance bars.
  const bool locality_local_bar = locality.local_fraction >= 0.80;
  const bool locality_beats_baseline =
      locality.local_fraction > registration.local_fraction;
  const bool makespan_bar = locality.makespan_s < registration.makespan_s;
  const bool fair_share_bar = std::fabs(alpha_share - 0.75) <= 0.075;
  const bool ok = locality_local_bar && locality_beats_baseline &&
                  makespan_bar && fair_share_bar && logs_identical;

  std::printf("\nbars: locality>=80%% local %s | beats baseline (%.0f%% vs "
              "%.0f%%) %s | makespan %.3fs < %.3fs %s | 3:1 within 10%% %s "
              "| deterministic %s\n",
              locality_local_bar ? "PASS" : "FAIL",
              100.0 * locality.local_fraction,
              100.0 * registration.local_fraction,
              locality_beats_baseline ? "PASS" : "FAIL", locality.makespan_s,
              registration.makespan_s, makespan_bar ? "PASS" : "FAIL",
              fair_share_bar ? "PASS" : "FAIL",
              logs_identical ? "PASS" : "FAIL");

  const auto json_path = bench::OutDir() / "BENCH_placement.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_placement\",\n"
                 "  \"records_per_job\": %llu,\n"
                 "  \"blocks\": %zu,\n"
                 "  \"remote_read_penalty_us\": %llu,\n"
                 "  \"modes\": [\n",
                 static_cast<unsigned long long>(records), total_blocks,
                 static_cast<unsigned long long>(penalty_us));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(
          out,
          "    { \"mode\": \"%s\", \"makespan_s\": %.4f, "
          "\"planned\": %lld, \"planned_local\": %lld, "
          "\"local_fraction\": %.4f, \"steals\": %lld, "
          "\"replacements\": %lld, \"dfs_local_reads\": %lld, "
          "\"dfs_remote_reads\": %lld }%s\n",
          r.name.c_str(), r.makespan_s,
          static_cast<long long>(r.placement.planned),
          static_cast<long long>(r.placement.planned_local), r.local_fraction,
          static_cast<long long>(r.placement.steals),
          static_cast<long long>(r.placement.replacements),
          static_cast<long long>(r.dfs_local_reads),
          static_cast<long long>(r.dfs_remote_reads),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"fair_share_alpha_fraction\": %.4f,\n"
                 "  \"same_seed_logs_identical\": %s,\n"
                 "  \"meets_locality_bar\": %s,\n"
                 "  \"meets_makespan_bar\": %s,\n"
                 "  \"meets_fair_share_bar\": %s\n"
                 "}\n",
                 alpha_share, logs_identical ? "true" : "false",
                 locality_local_bar && locality_beats_baseline ? "true"
                                                               : "false",
                 makespan_bar ? "true" : "false",
                 fair_share_bar ? "true" : "false");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.string().c_str());
  }
  return ok ? 0 : 1;
}
