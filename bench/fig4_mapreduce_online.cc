// Figure 4 — MapReduce Online (HOP) on the sessionization workload:
// CPU utilization and CPU iowait.
//
// Shape targets (paper §III-D): the same mid-job low-utilization pattern
// and iowait spike as stock Hadoop (pipelining does not remove the blocking
// sort-merge); total running time is not shorter (the paper measured it
// longer); map-phase CPU utilization is somewhat lower but the phase lasts
// longer (same total map cycles, redistributed).
#include <cstdio>

#include "bench_util.h"
#include "sim/simulator.h"

int main() {
  using namespace opmr;
  using namespace opmr::sim;

  bench::Banner("Figure 4: MapReduce Online, sessionization (simulated)");

  const SimWorkload w = Sessionization256();

  SimConfig hadoop;  // defaults

  SimConfig hop;
  hop.runtime = SimRuntime::kHop;
  hop.snapshot_interval = 0.25;  // snapshots at 25/50/75 %
  hop.push_overhead = 1.15;      // finer-granularity transfers cost network

  const SimResult rh = SimulateJob(w, hadoop);
  const SimResult ro = SimulateJob(w, hop);

  std::printf("completion: Hadoop %s | MR Online %s  (paper: HOP was longer)\n",
              HumanSeconds(rh.completion_s).c_str(),
              HumanSeconds(ro.completion_s).c_str());
  std::printf("snapshots taken: %d (merge repeated per snapshot)\n",
              ro.snapshots / ro.num_reduce_tasks);
  std::printf("spill read bytes: Hadoop %s | MR Online %s "
              "(snapshot re-merges add I/O)\n",
              HumanBytes(rh.spill_read_bytes).c_str(),
              HumanBytes(ro.spill_read_bytes).c_str());

  const double mu_h = rh.MeanCpuUtil(0, rh.map_phase_end_s);
  const double mu_o = ro.MeanCpuUtil(0, ro.map_phase_end_s);
  std::printf("map-phase CPU util: Hadoop %.2f over %.0f s | "
              "MR Online %.2f over %.0f s\n",
              mu_h, rh.map_phase_end_s, mu_o, ro.map_phase_end_s);

  const double ve_o =
      ro.map_phase_end_s + 0.5 * (ro.completion_s - ro.map_phase_end_s);
  std::printf("MR Online post-map window: CPU %.2f, iowait %.2f "
              "<- valley + iowait spike persist under pipelining\n",
              ro.MeanCpuUtil(ro.map_phase_end_s, ve_o),
              ro.MeanIowait(ro.map_phase_end_s, ve_o));

  bench::PrintSeries("MR Online: CPU utilization", ro.cpu_util, 1.0);
  bench::PrintSeries("MR Online: CPU iowait", ro.cpu_iowait, 1.0);

  bench::SaveSeriesCsv("fig4_hop_cpu_util.csv", "cpu_util", ro.cpu_util);
  bench::SaveSeriesCsv("fig4_hop_iowait.csv", "iowait", ro.cpu_iowait);
  bench::SaveSeriesCsv("fig4_hadoop_cpu_util.csv", "cpu_util", rh.cpu_util);
  return 0;
}
