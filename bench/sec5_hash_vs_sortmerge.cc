// Section V preliminary results — carefully tuned sort-merge Hadoop vs the
// hash-based one-pass runtime, on the real engine.
//
// Shape targets (paper §V):
//   * the hash system saves up to ~48 % of CPU cycles,
//   * and up to ~53 % of running time,
//   * with the frequent algorithm + hashing, reduce-phase spill I/O drops
//     by ~three orders of magnitude versus sort-merge.
//
// The CPU comparison uses the binary (pre-parsed) input format: the paper
// notes that once parsing is cheap ("mutable parsing" [17]), the sorting
// overhead becomes even more prominent — this is the regime where the
// hash replacement shows its full advantage.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

namespace {

struct Measured {
  double wall = 0;
  double cpu = 0;
  std::int64_t spill = 0;
};

Measured RunCase(opmr::Platform& platform, const opmr::JobSpec& spec,
                 const opmr::JobOptions& options, bool verbose = false) {
  const auto r = platform.Run(spec, options);
  if (verbose) {
    for (const auto& [phase, secs] : r.cpu_seconds) {
      std::printf("    %-18s %7.3f s\n", phase.c_str(), secs);
    }
  }
  return {r.wall_seconds, r.total_cpu_seconds,
          r.Bytes(opmr::device::kSpillWrite)};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);
  const bool verbose = cfg.GetBool("verbose", false);

  bench::Banner("Section V: tuned Hadoop (sort-merge) vs hash-based "
                "one-pass runtime (real engine)");

  Platform platform({.num_nodes = 2,
                     .map_slots_per_node = 2,
                     .block_bytes = 8u << 20});

  // --- CPU / runtime comparison (ample memory, per-user counting) -----------
  {
    ClickStreamOptions gen;
    gen.num_records =
        static_cast<std::uint64_t>(cfg.GetInt("records", 4'000'000));
    gen.num_users = 50'000;  // repeat-visitor head: folds are cheap, sorts are not
    gen.num_urls = 100'000;
    gen.user_theta = 0.9;
    gen.format = ClickFormat::kBinary;
    GenerateClickStream(platform.dfs(), "clicks_bin", gen);

    const auto sm = RunCase(
        platform, PerUserCountJob("clicks_bin", "s5_sm", 4, ClickFormat::kBinary),
        HadoopOptions(), verbose);
    const auto hash = RunCase(
        platform, PerUserCountJob("clicks_bin", "s5_h", 4, ClickFormat::kBinary),
        HashOnePassOptions(), verbose);

    std::printf("\nPer-user count (binary input), ample memory:\n");
    TextTable t1;
    t1.AddRow({"System", "Wall time", "CPU cycles (s)", "Reduce spill"});
    t1.AddRow({"sort-merge (Hadoop)", HumanSeconds(sm.wall),
               HumanSeconds(sm.cpu), HumanBytes(double(sm.spill))});
    t1.AddRow({"hash one-pass", HumanSeconds(hash.wall),
               HumanSeconds(hash.cpu), HumanBytes(double(hash.spill))});
    std::printf("%s", t1.ToString().c_str());
    std::printf("CPU cycles saved: %s (paper: up to 48%%)\n",
                Percent(1.0 - hash.cpu / sm.cpu).c_str());
    std::printf("Running time saved: %s (paper: up to 53%%)\n",
                Percent(1.0 - hash.wall / sm.wall).c_str());

    CsvWriter csv(bench::OutDir() / "sec5_cpu.csv");
    csv.WriteRow({"case", "wall_s", "cpu_s"});
    csv.WriteRow({"sortmerge", std::to_string(sm.wall), std::to_string(sm.cpu)});
    csv.WriteRow({"hash", std::to_string(hash.wall), std::to_string(hash.cpu)});
  }

  // --- Memory-constrained spill comparison (frequent algorithm) -------------
  // The paper's regime for reduce technique 3: per-key states do NOT all fit
  // in reducer memory, and the key distribution is heavily skewed, so the
  // Space-Saving hot set absorbs almost the entire stream.  No combiner:
  // the reducers see the raw click stream.
  {
    ClickStreamOptions gen;
    gen.num_records =
        static_cast<std::uint64_t>(cfg.GetInt("records", 6'000'000));
    gen.num_users = 4'096;       // hot head of repeat visitors
    gen.user_theta = 1.1;
    gen.tail_fraction = 0.002;   // one-off visitors: 0.2 % of clicks...
    gen.tail_universe = 2'000'000;  // ...spread over a vast id space
    GenerateClickStream(platform.dfs(), "clicks_skew", gen);

    auto tight = [](JobOptions o) {
      o.map_side_combine = false;
      o.reduce_buffer_bytes = 256u << 10;  // cannot hold every key's state
      o.hot_key_capacity = 2048;           // per-reducer pinned hot set
      return o;
    };
    const auto sm2 = RunCase(platform,
                             PerUserCountJob("clicks_skew", "s5_sm2", 4),
                             tight(HadoopOptions()));
    const auto inc2 = RunCase(platform,
                              PerUserCountJob("clicks_skew", "s5_i2", 4),
                              tight(HashOnePassOptions()));
    const auto hot2 = RunCase(platform,
                              PerUserCountJob("clicks_skew", "s5_k2", 4),
                              tight(HotKeyOnePassOptions(2048)));

    std::printf("\nPer-user count, memory-constrained reducers (no combiner,"
                "\n  %llu-key hot head + %.1f%% one-off tail over %llu ids):\n",
                static_cast<unsigned long long>(gen.num_users),
                100 * gen.tail_fraction,
                static_cast<unsigned long long>(gen.tail_universe));
    TextTable t2;
    t2.AddRow({"System", "Reduce spill bytes", "vs sort-merge"});
    t2.AddRow({"sort-merge (Hadoop)", HumanBytes(double(sm2.spill)), "1x"});
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1fx less",
                  sm2.spill / std::max<double>(1.0, double(inc2.spill)));
    t2.AddRow({"incremental hash", HumanBytes(double(inc2.spill)), buf});
    std::snprintf(buf, sizeof(buf), "%.0fx less",
                  sm2.spill / std::max<double>(1.0, double(hot2.spill)));
    t2.AddRow({"incremental hash + frequent (hot keys)",
               HumanBytes(double(hot2.spill)), buf});
    std::printf("%s", t2.ToString().c_str());
    std::printf("Paper: hashing + frequent algorithm cuts reduce spill I/O "
                "by ~3 orders of magnitude.\n");

    CsvWriter csv(bench::OutDir() / "sec5_spill.csv");
    csv.WriteRow({"case", "spill_bytes"});
    csv.WriteRow({"sortmerge_tight", std::to_string(sm2.spill)});
    csv.WriteRow({"incremental_tight", std::to_string(inc2.spill)});
    csv.WriteRow({"hotkey_tight", std::to_string(hot2.spill)});
  }
  return 0;
}
