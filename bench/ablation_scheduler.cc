// Ablation A10 — multi-job scheduling policy under slot contention.
//
// Table I's workloads never arrive one at a time on a shared cluster; this
// bench submits a mixed batch (one large sessionization job, one medium
// page-frequency job, two small counting jobs) to the src/sched
// JobScheduler and compares a sequential baseline (max_concurrent=1)
// against shared-slot concurrency under each grant policy.  The scheduler
// runs the jobs on deliberately scarce slots (4 map, 2 reduce) so the
// policies actually arbitrate; the CSV reports makespan, mean/max queue
// wait, and slot-pool contention per mode.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "sched/scheduler.h"
#include "workloads/tasks.h"

namespace {

using namespace opmr;

struct JobDef {
  const char* id;
  const char* workload;  // sessionization | page_frequency | per_user_count
  std::uint64_t records;
  int reducers;
};

JobSpec SpecFor(const JobDef& def, const std::string& output) {
  const std::string input = std::string(def.id) + ".in";
  if (std::string(def.workload) == "sessionization") {
    return SessionizationJob(input, output, def.reducers);
  }
  if (std::string(def.workload) == "page_frequency") {
    return PageFrequencyJob(input, output, def.reducers);
  }
  return PerUserCountJob(input, output, def.reducers);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A10: multi-job scheduling policy x slot "
                "contention (real engine, mixed Table I job sizes)");

  const auto scale = static_cast<std::uint64_t>(cfg.GetInt("records", 300'000));
  const std::vector<JobDef> jobs = {
      {"big_sessions", "sessionization", scale, 4},
      {"mid_pages", "page_frequency", scale / 2, 4},
      {"small_count_a", "per_user_count", scale / 6, 2},
      {"small_count_b", "per_user_count", scale / 6, 2},
  };

  Platform platform({.num_nodes = 4, .block_bytes = 1u << 20});
  for (const auto& def : jobs) {
    ClickStreamOptions gen;
    gen.num_records = def.records;
    gen.num_users = std::max<std::uint64_t>(100, def.records / 20);
    GenerateClickStream(platform.dfs(), std::string(def.id) + ".in", gen);
  }

  struct Mode {
    const char* name;
    sched::SchedPolicy policy;
    int max_concurrent;
  };
  const std::vector<Mode> modes = {
      {"sequential", sched::SchedPolicy::kFifo, 1},
      {"fifo", sched::SchedPolicy::kFifo, 4},
      {"fair", sched::SchedPolicy::kFair, 4},
      {"srw", sched::SchedPolicy::kSrw, 4},
  };

  TextTable table;
  table.AddRow({"Mode", "Makespan", "Mean wait", "Max wait", "Peak jobs",
                "Slot waits (blocked)"});
  bench::CsvSink csv("ablation_scheduler.csv");
  csv.Row("mode", "makespan_s", "mean_queue_wait_s", "max_queue_wait_s",
          "peak_concurrent", "slot_waits", "slot_wait_s");

  for (const auto& mode : modes) {
    sched::SchedulerOptions sopts;
    sopts.map_slots = 4;
    sopts.reduce_slots = 2;
    sopts.policy = mode.policy;
    sopts.max_concurrent = mode.max_concurrent;
    sopts.num_nodes = 4;
    sched::JobScheduler scheduler(&platform.dfs(), &platform.files(), sopts);
    for (const auto& def : jobs) {
      sched::JobRequest request;
      request.id = def.id;
      // Per-mode output names: four schedulers share one DFS namespace.
      request.spec = SpecFor(def, std::string(def.id) + "." + mode.name);
      // Sessionization is holistic (no aggregator): it needs the blocking
      // hybrid-hash grouping; the aggregate jobs run incremental hash.
      request.options = HashOnePassOptions();
      if (std::string(def.workload) == "sessionization") {
        request.options.hash_reduce = HashReduce::kHybridHash;
      }
      scheduler.Submit(std::move(request));
    }
    const auto reports = scheduler.Drain();
    double mean_wait = 0.0;
    double max_wait = 0.0;
    for (const auto& report : reports) {
      if (report.failed) {
        std::fprintf(stderr, "job '%s' failed: %s\n", report.id.c_str(),
                     report.error.c_str());
        return 1;
      }
      mean_wait += report.queue_wait_s();
      max_wait = std::max(max_wait, report.queue_wait_s());
    }
    mean_wait /= static_cast<double>(reports.size());
    const auto stats = scheduler.stats();
    table.AddRow({mode.name, HumanSeconds(stats.makespan_s),
                  HumanSeconds(mean_wait), HumanSeconds(max_wait),
                  std::to_string(stats.peak_concurrent),
                  std::to_string(stats.slots.waits) + " (" +
                      HumanSeconds(stats.slots.wait_seconds) + ")"});
    csv.Row(mode.name, stats.makespan_s, mean_wait, max_wait,
            stats.peak_concurrent, stats.slots.waits,
            stats.slots.wait_seconds);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape: shared-slot concurrency beats the sequential "
      "baseline's\nmakespan; fair/srw cut the small jobs' waits relative to "
      "fifo, with srw\nminimizing mean wait by draining the shortest "
      "remaining work first.\n");
  return 0;
}
