// Microbench M1 — §III-B.1 "Cost of Parsing".
//
// Runs sessionization on the same click data in two input formats: raw text
// lines (map function parses with a scanner) and the pre-parsed binary
// format (the SequenceFile analogue).  Paper finding: "almost no difference
// in either running time or CPU utilization ... input parsing is a
// negligible overall cost."
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Microbench M1: cost of parsing line-oriented text input "
                "(real engine, sessionization)");

  Platform platform({.num_nodes = 2, .block_bytes = 8u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));
  gen.num_users = 100'000;

  gen.format = ClickFormat::kText;
  GenerateClickStream(platform.dfs(), "clicks_text", gen);
  gen.format = ClickFormat::kBinary;
  GenerateClickStream(platform.dfs(), "clicks_bin", gen);

  const auto text = platform.Run(
      SessionizationJob("clicks_text", "m1_text", 4, ClickFormat::kText),
      HadoopOptions());
  const auto bin = platform.Run(
      SessionizationJob("clicks_bin", "m1_bin", 4, ClickFormat::kBinary),
      HadoopOptions());

  TextTable table;
  table.AddRow({"Input format", "Wall time", "Total CPU", "Map fn CPU"});
  auto map_fn = [](const JobResult& r) {
    auto it = r.cpu_seconds.find("map_function");
    return it == r.cpu_seconds.end() ? 0.0 : it->second;
  };
  table.AddRow({"text (parse in map fn)", HumanSeconds(text.wall_seconds),
                HumanSeconds(text.total_cpu_seconds),
                HumanSeconds(map_fn(text))});
  table.AddRow({"binary (pre-parsed)", HumanSeconds(bin.wall_seconds),
                HumanSeconds(bin.total_cpu_seconds),
                HumanSeconds(map_fn(bin))});
  std::printf("%s", table.ToString().c_str());
  // Isolate parsing proper: the map-function CPU delta between the two
  // formats, as a share of the job's total CPU.  (Wall times also differ
  // because binary records are smaller on disk — an I/O effect, not a
  // parsing effect.)
  const double parse_cpu = map_fn(text) - map_fn(bin);
  std::printf("\nParsing CPU (map-fn delta): %s = %s of total job CPU "
              "(paper: negligible)\n",
              HumanSeconds(parse_cpu).c_str(),
              Percent(parse_cpu / text.total_cpu_seconds).c_str());

  CsvWriter csv(bench::OutDir() / "micro_parsing_cost.csv");
  csv.WriteRow({"format", "wall_s", "cpu_s", "map_fn_cpu_s"});
  csv.WriteRow({"text", std::to_string(text.wall_seconds),
                std::to_string(text.total_cpu_seconds),
                std::to_string(map_fn(text))});
  csv.WriteRow({"binary", std::to_string(bin.wall_seconds),
                std::to_string(bin.total_cpu_seconds),
                std::to_string(map_fn(bin))});
  return 0;
}
