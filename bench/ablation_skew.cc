// Ablation A4 — key skew vs the benefit of hot-key pinning.
//
// Sweeps the Zipf exponent of the key distribution and compares reduce
// spills of the plain incremental reducer against the hot-key reducer at a
// fixed tight memory budget.  Expected shape: the hot-key advantage grows
// with skew — with near-uniform keys there are no hot keys to pin, while a
// heavy head lets the sketch absorb almost the entire stream (paper §V:
// "hot keys are typically of greater importance", and pinning them
// minimizes I/O).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A4: key skew (Zipf theta) vs hot-key benefit "
                "(real engine)");

  TextTable table;
  table.AddRow({"theta", "incremental spill", "hot-key spill", "ratio"});
  CsvWriter csv(bench::OutDir() / "ablation_skew.csv");
  csv.WriteRow({"theta", "incremental_spill", "hotkey_spill"});

  int i = 0;
  for (double theta : {0.2, 0.6, 0.9, 1.1, 1.3}) {
    Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
    ClickStreamOptions gen;
    gen.num_records =
        static_cast<std::uint64_t>(cfg.GetInt("records", 1'500'000));
    gen.num_users = 60'000;
    gen.user_theta = theta;
    GenerateClickStream(platform.dfs(), "clicks", gen);

    auto tight = [](JobOptions o) {
      o.map_side_combine = false;
      o.reduce_buffer_bytes = 128u << 10;
      return o;
    };
    const auto inc =
        platform.Run(PerUserCountJob("clicks", "a4i_" + std::to_string(i), 4),
                     tight(HashOnePassOptions()));
    const auto hot =
        platform.Run(PerUserCountJob("clicks", "a4h_" + std::to_string(i), 4),
                     tight(HotKeyOnePassOptions(1024)));
    ++i;

    const auto si = inc.Bytes(device::kSpillWrite);
    const auto sh = hot.Bytes(device::kSpillWrite);
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  double(si) / std::max<double>(1.0, double(sh)));
    char theta_s[16];
    std::snprintf(theta_s, sizeof(theta_s), "%.1f", theta);
    table.AddRow({theta_s, HumanBytes(double(si)), HumanBytes(double(sh)),
                  ratio});
    csv.WriteRow({theta_s, std::to_string(si), std::to_string(sh)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: the incremental/hot-key spill ratio grows "
              "with theta.\n");
  return 0;
}
