// Ablation A2 — MapReduce Online pipelining granularity.
//
// HOP pushes map output in chunks; the paper explains HOP's slowdown partly
// by "transmit[ting] map output eagerly in finer granularity ... which
// increases network cost".  On the real engine we sweep the chunk size and
// measure wall time, pushed/diverted chunk counts, and shuffle volume.
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A2: push-shuffle chunk granularity "
                "(real engine, MapReduce Online runtime)");

  Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 1'500'000));
  gen.num_users = 50'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  TextTable table;
  table.AddRow({"Chunk bytes", "Wall time", "Pushed chunks", "Diverted",
                "Shuffle bytes"});
  CsvWriter csv(bench::OutDir() / "ablation_pipeline_granularity.csv");
  csv.WriteRow({"chunk_bytes", "wall_s", "pushed", "diverted",
                "shuffle_bytes"});

  int i = 0;
  for (std::size_t chunk : {4u << 10, 16u << 10, 64u << 10, 256u << 10,
                            1u << 20}) {
    JobOptions options = MapReduceOnlineOptions();
    options.push_chunk_bytes = chunk;
    options.push_queue_chunks = 16;
    const auto spec =
        SessionizationJob("clicks", "a2_" + std::to_string(i++), 4);
    const auto r = platform.Run(spec, options);
    table.AddRow({HumanBytes(double(chunk)), HumanSeconds(r.wall_seconds),
                  std::to_string(r.Bytes(device::kPushedChunks)),
                  std::to_string(r.Bytes(device::kDivertedChunks)),
                  HumanBytes(double(r.Bytes(device::kShuffleRead)))});
    csv.WriteRow({std::to_string(chunk), std::to_string(r.wall_seconds),
                  std::to_string(r.Bytes(device::kPushedChunks)),
                  std::to_string(r.Bytes(device::kDivertedChunks)),
                  std::to_string(r.Bytes(device::kShuffleRead))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: finer chunks => many more transfer events "
              "(per-chunk overhead),\nmore back-pressure diversions when "
              "reducers lag.\n");
  return 0;
}
