// Ablation A8 — partition skew across reducers.
//
// Hash partitioning balances *keys*, not *records*: with Zipf-skewed data
// the reducer owning the hottest keys does disproportionate work — the
// imbalance the paper's related work ([19], skew-resistant processing)
// targets.  Measured two ways: output keys per reducer (what hash
// partitioning balances well) and shuffled records per reducer under the
// no-combiner sessionization-style load (what it cannot).
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "engine/aggregators.h"
#include "metrics/report.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A8: partition skew across reducers (real engine)");

  TextTable table;
  table.AddRow({"theta", "Reducers", "Key imbalance (max/mean)",
                "Hottest key share of records"});
  CsvWriter csv(bench::OutDir() / "ablation_partition_skew.csv");
  csv.WriteRow({"theta", "reducers", "key_imbalance", "hot_share"});

  for (double theta : {0.2, 0.8, 1.1, 1.4}) {
    Platform platform({.num_nodes = 2, .block_bytes = 2u << 20});
    ClickStreamOptions gen;
    gen.num_records =
        static_cast<std::uint64_t>(cfg.GetInt("records", 1'000'000));
    gen.num_users = 50'000;
    gen.user_theta = theta;
    GenerateClickStream(platform.dfs(), "clicks", gen);

    const int reducers = 8;
    const auto r = platform.Run(PerUserCountJob("clicks", "skew_out", 8),
                                HashOnePassOptions());

    // Share of all records belonging to the single hottest user: the floor
    // on any partitioning scheme's imbalance.
    std::uint64_t hottest = 0;
    for (const auto& [user, v] : platform.ReadOutput("skew_out", reducers)) {
      hottest = std::max(hottest, DecodeValueU64(v));
    }
    char theta_s[16], share[16];
    std::snprintf(theta_s, sizeof(theta_s), "%.1f", theta);
    std::snprintf(share, sizeof(share), "%.1f%%",
                  100.0 * hottest / gen.num_records);
    char imb[16];
    std::snprintf(imb, sizeof(imb), "%.2fx", r.ReducerImbalance());
    table.AddRow({theta_s, std::to_string(reducers), imb, share});
    csv.WriteRow({theta_s, std::to_string(reducers),
                  std::to_string(r.ReducerImbalance()),
                  std::to_string(double(hottest) / gen.num_records)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: key-count imbalance stays near 1.0x (hash "
              "partitioning spreads\nkeys uniformly), while the hottest "
              "key's record share — the irreducible skew a\nper-key "
              "partitioner cannot split — grows sharply with theta.\n");
  return 0;
}
