// Streaming-mode throughput and answer latency.
//
// Measures the records/second the StreamingJob sustains across worker
// counts, and the latency from ingesting the decisive record to the early
// answer firing — the "answer as soon as the data needed has been read"
// requirement made concrete.
#include <atomic>
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "common/config.h"
#include "common/rng.h"
#include "engine/aggregators.h"
#include "metrics/report.h"
#include "metrics/stopwatch.h"
#include "stream/streaming_job.h"
#include "workloads/clickstream.h"

namespace {

opmr::StreamingQuery CountUrls() {
  opmr::StreamingQuery query;
  query.name = "stream_bench";
  query.aggregator = std::make_shared<opmr::SumAggregator>();
  query.map = [](opmr::Slice record, opmr::OutputCollector& out) {
    static thread_local std::string one = opmr::EncodeValueU64(1);
    out.Emit(record, one);
  };
  return query;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);
  const auto records =
      static_cast<std::uint64_t>(cfg.GetInt("records", 2'000'000));

  bench::Banner("Streaming mode: ingest throughput and early-answer latency");

  // Pre-generate the stream so generation cost is excluded.
  std::vector<std::string> stream;
  stream.reserve(records);
  {
    ZipfSampler urls(100'000, 1.0, 21);
    for (std::uint64_t i = 0; i < records; ++i) {
      stream.push_back(UrlKey(static_cast<std::uint32_t>(urls.Sample())));
    }
  }

  TextTable table;
  table.AddRow({"Workers", "Throughput", "Finish-to-exact", "Distinct keys"});
  CsvWriter csv(bench::OutDir() / "stream_throughput.csv");
  csv.WriteRow({"workers", "records_per_sec", "finish_s", "distinct"});

  for (int workers : {1, 2, 4, 8}) {
    StreamingJob job(CountUrls(), {}, workers);
    WallTimer timer;
    for (const auto& record : stream) job.Ingest(record);
    const double ingest_s = timer.Seconds();
    WallTimer finish_timer;
    const auto results = job.Finish();
    const double finish_s = finish_timer.Seconds();

    char tput[32];
    std::snprintf(tput, sizeof(tput), "%.2f M rec/s",
                  records / ingest_s / 1e6);
    table.AddRow({std::to_string(workers), tput, HumanSeconds(finish_s),
                  std::to_string(results.size())});
    csv.WriteRow({std::to_string(workers), std::to_string(records / ingest_s),
                  std::to_string(finish_s), std::to_string(results.size())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nNote: a single producer thread drives this table, so worker\n"
              "fan-out adds queue hand-off cost without adding map capacity;\n"
              "scaling comes from concurrent producers (see the\n"
              "ConcurrentIngestThreadsAreExact test).\n");

  // --- Early-answer latency ---------------------------------------------------
  std::atomic<std::int64_t> fired_at_ns{-1};
  StreamingOptions options;
  options.early_emit = [](Slice, Slice state) {
    return DecodeU64(state.data()) == 1'000;
  };
  WallTimer wall;
  options.on_early_answer = [&](Slice, Slice) {
    fired_at_ns.store(wall.Nanos());
  };
  StreamingJob job(CountUrls(), options, 2);
  std::int64_t decisive_ns = 0;
  int sent = 0;
  for (const auto& record : stream) {
    job.Ingest(record);
    if (++sent == 1'000 * 2) break;  // plenty to cross the threshold
  }
  // The hottest key crosses 1000 well before 2000 ingests of a Zipf(1.0)
  // stream... wait for the async fold.
  while (fired_at_ns.load() < 0 && sent < static_cast<int>(stream.size())) {
    job.Ingest(stream[sent++]);
  }
  decisive_ns = fired_at_ns.load();
  job.Finish();
  if (decisive_ns >= 0) {
    std::printf("\nthreshold answer latency: fired %.1f ms into the stream "
                "(%d records ingested) — no batch job could answer before "
                "its merge completed\n",
                decisive_ns / 1e6, sent);
  }
  return 0;
}
