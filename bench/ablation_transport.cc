// Ablation A2b — pipelining granularity over real socket transports.
//
// A2 sweeps the push-shuffle chunk size with the in-process engine; this
// re-runs the same grid with the shuffle frames moving through the src/net
// transports, so the per-chunk overhead the paper attributes to HOP's
// fine-grained eager transmission shows up as real wire activity: frame
// counts, bytes on the wire, payload MB/s, and syscalls per frame.
// Loopback isolates the framing/protocol cost, TCP adds the kernel socket
// path one write(2) per frame at a time, and epoll is the event-loop data
// plane (src/dataplane) that coalesces frames into writev'd blocks.
//
// Two phases:
//   1. Engine grid — the sessionization job over every transport × chunk
//      size.  Output digests must agree across transports (exit nonzero
//      otherwise): the transport changes how bytes move, never the answer.
//   2. Wire saturation — raw chunk frames pushed back-to-back through tcp
//      and epoll with no job attached, isolating transport throughput.
//      This is the series behind the data-plane acceptance number: epoll
//      vs the committed pre-dataplane tcp baseline ("before" curve).
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "common/crc32c.h"
#include "core/opmr.h"
#include "dataplane/event_loop.h"
#include "metrics/report.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "workloads/tasks.h"

namespace {

using namespace opmr;

// The tcp series committed before the data plane landed (BENCH_transport
// .json at the seed of this PR): the "before" curve every epoll point is
// judged against.  wall_s is the full engine-job wall clock, mb_s the
// payload rate it implies.
struct BeforePoint {
  std::size_t chunk_bytes;
  double wall_s;
  long long net_bytes_sent;
};
constexpr BeforePoint kBeforeTcp[] = {
    {16u << 10, 1.1222, 3708665},
    {64u << 10, 1.1093, 13676674},
    {256u << 10, 1.2059, 29261327},
};

double BeforeMbs(const BeforePoint& p) {
  return static_cast<double>(p.net_bytes_sent) / p.wall_s / 1e6;
}

// Order-insensitive digest of a job's output rows: the multiset of
// (key, value) pairs is what every transport must agree on (push
// pipelines interleave mapper threads, so row order is scheduling noise).
std::uint32_t DigestRows(std::vector<std::pair<std::string, std::string>> rows) {
  std::sort(rows.begin(), rows.end());
  std::uint32_t state = kCrc32cInit;
  for (const auto& [k, v] : rows) {
    state = Crc32cUpdate(state, k.data(), k.size());
    state = Crc32cUpdate(state, "\x1f", 1);
    state = Crc32cUpdate(state, v.data(), v.size());
    state = Crc32cUpdate(state, "\n", 1);
  }
  return Crc32cFinal(state);
}

std::unique_ptr<net::Transport> MakeTransport(const std::string& name,
                                              MetricRegistry* metrics) {
  if (name == "tcp") {
    auto tcp = std::make_unique<net::TcpTransport>(metrics);
    tcp->Bind();
    return tcp;
  }
  if (name == "epoll") {
    auto ev = std::make_unique<dataplane::EventLoopTransport>(metrics);
    ev->Bind();
    return ev;
  }
  return std::make_unique<net::LoopbackTransport>(metrics);
}

struct WirePoint {
  std::string transport;
  std::size_t chunk_bytes = 0;
  long long payload_bytes = 0;
  double wall_s = 0.0;
  double mb_s = 0.0;
  double syscalls_per_frame = 0.0;
};

// Phase 2: no engine, no disk — one client hammering chunk frames at a
// sink server until `total_bytes` of payload have landed.
WirePoint SaturateWire(const std::string& transport_name,
                       std::size_t chunk_bytes, std::size_t total_bytes) {
  MetricRegistry metrics;
  auto transport = MakeTransport(transport_name, &metrics);

  std::mutex mu;
  std::condition_variable cv;
  std::size_t received = 0;
  transport->Listen([&](net::Connection*, net::Frame frame) {
    if (frame.type == net::FrameType::kChunk) {
      const auto msg = net::ChunkMsg::Parse(frame);
      std::scoped_lock lock(mu);
      received += msg.bytes.size();
      if (received >= total_bytes) cv.notify_all();
    }
  });
  auto conn = transport->Connect([](net::Connection*, net::Frame) {});

  // Mildly mixed payload: not a compressor showcase, not adversarial.
  std::string payload(chunk_bytes, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + (i * 131) % 53);
  }
  net::ChunkMsg msg;
  msg.map_task = 0;
  msg.reducer = 0;
  msg.records = 1;
  msg.bytes = payload;
  const std::size_t frames = (total_bytes + chunk_bytes - 1) / chunk_bytes;

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < frames; ++i) conn->Send(msg.ToFrame());
  {
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return received >= frames * chunk_bytes; });
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  transport->Shutdown();

  WirePoint point;
  point.transport = transport_name;
  point.chunk_bytes = chunk_bytes;
  point.payload_bytes = static_cast<long long>(frames * chunk_bytes);
  point.wall_s = wall;
  point.mb_s = static_cast<double>(point.payload_bytes) / wall / 1e6;
  const auto sent = metrics.Value(net::kNetFramesSent);
  point.syscalls_per_frame =
      sent > 0 ? static_cast<double>(metrics.Value(net::kNetSendSyscalls)) /
                     static_cast<double>(sent)
               : 0.0;
  return point;
}

std::string Fixed(double v, int digits = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A2b: push-shuffle chunk granularity over the "
                "socket transports (loopback vs tcp vs epoll)");

  Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 750'000));
  gen.num_users = 50'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  TextTable table;
  table.AddRow({"Transport", "Chunk bytes", "Wall time", "Pushed", "Diverted",
                "Net frames", "Net bytes", "MB/s", "Sys/frame", "Digest"});
  bench::CsvSink csv("ablation_transport.csv");
  csv.Row("transport", "chunk_bytes", "wall_s", "pushed", "diverted",
          "mb_s", "syscalls_per_frame", "digest", WireCsvHeader());

  struct Point {
    std::string transport;
    std::size_t chunk_bytes = 0;
    double wall_s = 0.0;
    std::int64_t pushed = 0;
    std::int64_t diverted = 0;
    std::int64_t net_frames = 0;
    std::int64_t net_bytes = 0;
    double mb_s = 0.0;
    double syscalls_per_frame = 0.0;
    std::uint32_t digest = 0;
  };
  std::vector<Point> points;
  bool digests_agree = true;

  int i = 0;
  const std::size_t chunks[] = {16u << 10, 64u << 10, 256u << 10};
  for (const std::size_t chunk : chunks) {
    std::uint32_t reference_digest = 0;
    bool have_reference = false;
    for (const std::string& transport :
         {"direct", "loopback", "tcp", "epoll"}) {
      JobOptions options = MapReduceOnlineOptions();
      options.push_chunk_bytes = chunk;
      options.push_queue_chunks = 16;
      const std::string out_name = "a2b_" + std::to_string(i++);
      const auto spec = SessionizationJob("clicks", out_name, 4);
      JobResult r;
      if (transport == "direct") {
        r = platform.Run(spec, options);
      } else {
        auto wire = MakeTransport(transport, &platform.metrics());
        r = platform.RunWithTransport(spec, options, wire.get());
      }
      Point pt;
      pt.transport = transport;
      pt.chunk_bytes = chunk;
      pt.wall_s = r.wall_seconds;
      pt.pushed = r.Bytes(device::kPushedChunks);
      pt.diverted = r.Bytes(device::kDivertedChunks);
      pt.net_frames = r.net_frames_sent;
      pt.net_bytes = r.net_bytes_sent;
      pt.mb_s = r.wall_seconds > 0
                    ? static_cast<double>(r.net_bytes_sent) / r.wall_seconds /
                          1e6
                    : 0.0;
      pt.syscalls_per_frame =
          r.net_frames_sent > 0
              ? static_cast<double>(r.Bytes(net::kNetSendSyscalls)) /
                    static_cast<double>(r.net_frames_sent)
              : 0.0;
      pt.digest = DigestRows(platform.ReadOutput(out_name, 4));
      if (!have_reference) {
        reference_digest = pt.digest;
        have_reference = true;
      } else if (pt.digest != reference_digest) {
        digests_agree = false;
        std::fprintf(stderr,
                     "DIGEST DIVERGENCE: %s @ %zu B chunks: %08x != %08x\n",
                     transport.c_str(), chunk, pt.digest, reference_digest);
      }
      table.AddRow({transport, HumanBytes(double(chunk)),
                    HumanSeconds(pt.wall_s), std::to_string(pt.pushed),
                    std::to_string(pt.diverted), std::to_string(pt.net_frames),
                    HumanBytes(double(pt.net_bytes)), Fixed(pt.mb_s),
                    Fixed(pt.syscalls_per_frame), Fixed(pt.digest, 0)});
      csv.Row(transport, chunk, pt.wall_s, pt.pushed, pt.diverted, pt.mb_s,
              pt.syscalls_per_frame, pt.digest,
              WireCsvCells(r.net_bytes_sent, r.net_bytes_received,
                           r.net_frames_sent, r.net_frames_received,
                           r.net_retransmits, r.net_reconnects,
                           r.net_stall_seconds, r.shuffle_ack_replays));
      points.push_back(pt);
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: finer chunks => more frames for the same "
              "payload (framing +\nper-send overhead); tcp pays one write(2) "
              "per frame, epoll coalesces frames\ninto blocks so its "
              "syscalls-per-frame sits well below 1.\n");

  bench::Banner("Wire saturation: raw chunk frames, no engine attached");
  const std::size_t wire_bytes =
      static_cast<std::size_t>(cfg.GetInt("wire_mb", 64)) << 20;
  TextTable wire_table;
  wire_table.AddRow({"Transport", "Chunk bytes", "Payload", "Wall time",
                     "MB/s", "Sys/frame"});
  std::vector<WirePoint> wire_points;
  for (const std::string& transport : {"tcp", "epoll"}) {
    for (const std::size_t chunk : chunks) {
      const auto pt = SaturateWire(transport, chunk, wire_bytes);
      wire_table.AddRow({pt.transport, HumanBytes(double(pt.chunk_bytes)),
                         HumanBytes(double(pt.payload_bytes)),
                         HumanSeconds(pt.wall_s), Fixed(pt.mb_s),
                         Fixed(pt.syscalls_per_frame, 3)});
      wire_points.push_back(pt);
    }
  }
  std::printf("%s", wire_table.ToString().c_str());

  // The acceptance ratio: epoll wire throughput at 64 KB chunks against
  // the committed pre-dataplane tcp baseline at the same chunk size.
  const double before_64k = BeforeMbs(kBeforeTcp[1]);
  double epoll_64k = 0.0;
  for (const auto& pt : wire_points) {
    if (pt.transport == "epoll" && pt.chunk_bytes == (64u << 10)) {
      epoll_64k = pt.mb_s;
    }
  }
  std::printf("\nepoll @ 64 KB chunks: %.1f MB/s = %.1fx the committed tcp "
              "baseline (%.1f MB/s)\n",
              epoll_64k, epoll_64k / before_64k, before_64k);
  std::printf("output digests across transports: %s\n",
              digests_agree ? "IDENTICAL" : "DIVERGED");

  const auto json_path = bench::OutDir() / "BENCH_transport.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_transport\",\n"
                 "  \"records\": %llu,\n"
                 "  \"before\": {\n"
                 "    \"transport\": \"tcp\",\n"
                 "    \"note\": \"committed pre-dataplane engine-grid tcp "
                 "series\",\n"
                 "    \"points\": [\n",
                 static_cast<unsigned long long>(gen.num_records));
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& b = kBeforeTcp[p];
      std::fprintf(out,
                   "      { \"chunk_bytes\": %zu, \"wall_s\": %.4f, "
                   "\"net_bytes_sent\": %lld, \"mb_s\": %.2f }%s\n",
                   b.chunk_bytes, b.wall_s, b.net_bytes_sent, BeforeMbs(b),
                   p + 1 < 3 ? "," : "");
    }
    std::fprintf(out,
                 "    ]\n"
                 "  },\n"
                 "  \"points\": [\n");
    for (std::size_t p = 0; p < points.size(); ++p) {
      const auto& pt = points[p];
      std::fprintf(out,
                   "    { \"transport\": \"%s\", \"chunk_bytes\": %zu, "
                   "\"wall_s\": %.4f, \"pushed_chunks\": %lld, "
                   "\"diverted_chunks\": %lld, \"net_frames_sent\": %lld, "
                   "\"net_bytes_sent\": %lld, \"mb_s\": %.2f, "
                   "\"syscalls_per_frame\": %.3f, \"digest\": \"%08x\" }%s\n",
                   pt.transport.c_str(), pt.chunk_bytes, pt.wall_s,
                   static_cast<long long>(pt.pushed),
                   static_cast<long long>(pt.diverted),
                   static_cast<long long>(pt.net_frames),
                   static_cast<long long>(pt.net_bytes), pt.mb_s,
                   pt.syscalls_per_frame, pt.digest,
                   p + 1 < points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"wire\": [\n");
    for (std::size_t p = 0; p < wire_points.size(); ++p) {
      const auto& pt = wire_points[p];
      std::fprintf(out,
                   "    { \"transport\": \"%s\", \"chunk_bytes\": %zu, "
                   "\"payload_bytes\": %lld, \"wall_s\": %.4f, "
                   "\"mb_s\": %.2f, \"syscalls_per_frame\": %.3f }%s\n",
                   pt.transport.c_str(), pt.chunk_bytes, pt.payload_bytes,
                   pt.wall_s, pt.mb_s, pt.syscalls_per_frame,
                   p + 1 < wire_points.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n"
                 "  \"epoll_vs_before_tcp_64k\": %.2f\n"
                 "}\n",
                 epoll_64k / before_64k);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.string().c_str());
  }
  return digests_agree ? 0 : 1;
}
