// Ablation A2b — pipelining granularity over a real socket transport.
//
// A2 sweeps the push-shuffle chunk size with the in-process engine; this
// re-runs the same grid with the shuffle frames moving through the src/net
// transports, so the per-chunk overhead the paper attributes to HOP's
// fine-grained eager transmission shows up as real wire activity: frame
// counts, bytes on the wire, and (for TCP) socket round trips.  Loopback
// isolates the framing/protocol cost; TCP adds the kernel socket path.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/config.h"
#include "core/opmr.h"
#include "metrics/report.h"
#include "net/loopback.h"
#include "net/tcp.h"
#include "workloads/tasks.h"

int main(int argc, char** argv) {
  using namespace opmr;
  const auto cfg = Config::FromArgs(argc, argv);

  bench::Banner("Ablation A2b: push-shuffle chunk granularity over the "
                "socket transport (loopback vs tcp)");

  Platform platform({.num_nodes = 2, .block_bytes = 4u << 20});
  ClickStreamOptions gen;
  gen.num_records = static_cast<std::uint64_t>(cfg.GetInt("records", 750'000));
  gen.num_users = 50'000;
  GenerateClickStream(platform.dfs(), "clicks", gen);

  TextTable table;
  table.AddRow({"Transport", "Chunk bytes", "Wall time", "Pushed", "Diverted",
                "Net frames", "Net bytes"});
  bench::CsvSink csv("ablation_transport.csv");
  csv.Row("transport", "chunk_bytes", "wall_s", "pushed", "diverted",
          WireCsvHeader());

  struct Point {
    std::string transport;
    std::size_t chunk_bytes = 0;
    double wall_s = 0.0;
    std::int64_t pushed = 0;
    std::int64_t diverted = 0;
    std::int64_t net_frames = 0;
    std::int64_t net_bytes = 0;
  };
  std::vector<Point> points;

  int i = 0;
  for (const std::string& transport : {"loopback", "tcp"}) {
    for (std::size_t chunk : {16u << 10, 64u << 10, 256u << 10}) {
      JobOptions options = MapReduceOnlineOptions();
      options.push_chunk_bytes = chunk;
      options.push_queue_chunks = 16;
      const auto spec =
          SessionizationJob("clicks", "a2b_" + std::to_string(i++), 4);
      std::unique_ptr<net::Transport> wire;
      if (transport == "tcp") {
        auto tcp = std::make_unique<net::TcpTransport>(&platform.metrics());
        tcp->Bind();
        wire = std::move(tcp);
      } else {
        wire = std::make_unique<net::LoopbackTransport>(&platform.metrics());
      }
      const auto r = platform.RunWithTransport(spec, options, wire.get());
      table.AddRow({transport, HumanBytes(double(chunk)),
                    HumanSeconds(r.wall_seconds),
                    std::to_string(r.Bytes(device::kPushedChunks)),
                    std::to_string(r.Bytes(device::kDivertedChunks)),
                    std::to_string(r.net_frames_sent),
                    HumanBytes(double(r.net_bytes_sent))});
      csv.Row(transport, chunk, r.wall_seconds,
              r.Bytes(device::kPushedChunks),
              r.Bytes(device::kDivertedChunks),
              WireCsvCells(r.net_bytes_sent, r.net_bytes_received,
                           r.net_frames_sent, r.net_frames_received,
                           r.net_retransmits, r.net_reconnects,
                           r.net_stall_seconds, r.shuffle_ack_replays));
      points.push_back({transport, chunk, r.wall_seconds,
                        r.Bytes(device::kPushedChunks),
                        r.Bytes(device::kDivertedChunks), r.net_frames_sent,
                        r.net_bytes_sent});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected shape: finer chunks => more frames for the same "
              "payload (framing +\nper-send overhead); tcp pays it through "
              "the kernel socket path, loopback\nonly through the protocol "
              "layer.\n");

  const auto json_path = bench::OutDir() / "BENCH_transport.json";
  if (std::FILE* out = std::fopen(json_path.string().c_str(), "w")) {
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"ablation_transport\",\n"
                 "  \"records\": %llu,\n"
                 "  \"points\": [\n",
                 static_cast<unsigned long long>(gen.num_records));
    for (std::size_t p = 0; p < points.size(); ++p) {
      const auto& pt = points[p];
      std::fprintf(out,
                   "    { \"transport\": \"%s\", \"chunk_bytes\": %zu, "
                   "\"wall_s\": %.4f, \"pushed_chunks\": %lld, "
                   "\"diverted_chunks\": %lld, \"net_frames_sent\": %lld, "
                   "\"net_bytes_sent\": %lld }%s\n",
                   pt.transport.c_str(), pt.chunk_bytes, pt.wall_s,
                   static_cast<long long>(pt.pushed),
                   static_cast<long long>(pt.diverted),
                   static_cast<long long>(pt.net_frames),
                   static_cast<long long>(pt.net_bytes),
                   p + 1 < points.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.string().c_str());
  }
  return 0;
}
