// Shared helpers for the table/figure regeneration binaries.
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <type_traits>
#include <vector>

#include "common/format.h"
#include "metrics/report.h"
#include "metrics/timeline.h"
#include "metrics/timeseries.h"
#include "sim/simulator.h"

namespace opmr::bench {

inline std::filesystem::path OutDir() {
  const char* env = std::getenv("OPMR_BENCH_OUT");
  std::filesystem::path dir = env != nullptr ? env : "bench_out";
  std::filesystem::create_directories(dir);
  return dir;
}

// CSV sink that flattens mixed cell types — strings, numbers, and whole
// column groups (RecoveryCsvCells & co.) — into one row.  Replaces the
// header/row splice boilerplate every ablation binary used to hand-roll.
class CsvSink {
 public:
  explicit CsvSink(const std::string& file) : csv_(OutDir() / file) {}

  template <typename... Cells>
  void Row(const Cells&... cells) {
    std::vector<std::string> row;
    (Append(&row, cells), ...);
    csv_.WriteRow(row);
  }

 private:
  static void Append(std::vector<std::string>* row, const std::string& cell) {
    row->push_back(cell);
  }
  static void Append(std::vector<std::string>* row, const char* cell) {
    row->emplace_back(cell);
  }
  static void Append(std::vector<std::string>* row,
                     const std::vector<std::string>& cells) {
    row->insert(row->end(), cells.begin(), cells.end());
  }
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  static void Append(std::vector<std::string>* row, T cell) {
    row->push_back(std::to_string(cell));
  }

  CsvWriter csv_;
};

inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintSeries(const std::string& name,
                        const std::vector<Sample>& samples, double y_max = -1) {
  TimeSeries series(name);
  for (const auto& s : samples) series.Append(s.time_s, s.value);
  std::printf("%s", AsciiPlot(series, 78, 10, y_max).c_str());
}

inline void SaveSeriesCsv(const std::string& file, const std::string& name,
                          const std::vector<Sample>& samples) {
  CsvWriter csv(OutDir() / file);
  csv.WriteRow({"time_s", name});
  for (const auto& s : samples) {
    csv.WriteRow({std::to_string(s.time_s), std::to_string(s.value)});
  }
}

// Renders a Fig-2(a)-style task timeline: one row block per operation kind
// showing the number of concurrently active tasks over time.
inline void PrintTaskTimeline(const std::vector<TaskInterval>& intervals,
                              double end_s, int width = 78) {
  TimelineRecorder rec;
  for (const auto& iv : intervals) rec.Record(iv.kind, iv.begin_s, iv.end_s);
  const auto series = rec.SampleActive(width);
  for (int k = 0; k < 4; ++k) {
    int peak = 0;
    for (int v : series[k]) peak = std::max(peak, v);
    std::printf("%-8s peak=%-5d |", TaskKindName(static_cast<TaskKind>(k)),
                peak);
    for (int v : series[k]) {
      if (peak == 0) {
        std::printf(" ");
        continue;
      }
      static const char kRamp[] = " .:-=+*#%@";
      const int level = static_cast<int>(9.0 * v / peak);
      std::printf("%c", kRamp[level]);
    }
    std::printf("|\n");
  }
  std::printf("%-20s 0%*s%.0f s\n", "", width - 6, "", end_s);
}

inline void SaveTimelineCsv(const std::string& file,
                            const std::vector<TaskInterval>& intervals) {
  CsvWriter csv(OutDir() / file);
  csv.WriteRow({"kind", "begin_s", "end_s"});
  for (const auto& iv : intervals) {
    csv.WriteRow({TaskKindName(iv.kind), std::to_string(iv.begin_s),
                  std::to_string(iv.end_s)});
  }
}

}  // namespace opmr::bench
