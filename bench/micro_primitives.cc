// Google-benchmark microbenchmarks of the primitives the runtimes are built
// from.  These are the numbers behind the simulator's calibration constants
// and the paper's core CPU argument: a buffer sort costs Θ(n log n)
// comparisons per block while a hash fold is Θ(n) — the gap the hash
// runtime banks.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/aggregators.h"
#include "engine/map_output.h"
#include "frequent/lossy_counting.h"
#include "frequent/misra_gries.h"
#include "frequent/space_saving.h"
#include "metrics/counters.h"
#include "storage/file_manager.h"
#include "storage/merger.h"

namespace opmr {
namespace {

std::vector<std::string> MakeKeys(std::size_t n, std::uint64_t universe,
                                  double theta) {
  ZipfSampler zipf(universe, theta, 7);
  std::vector<std::string> keys;
  keys.reserve(n);
  char buf[16];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "u%06llu",
                  static_cast<unsigned long long>(zipf.Sample()));
    keys.emplace_back(buf);
  }
  return keys;
}

// The Hadoop map-side path: fill the buffer, sort on (partition, key).
void BM_MapBufferSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = MakeKeys(n, 100'000, 0.9);
  const std::string one = EncodeValueU64(1);
  for (auto _ : state) {
    MapOutputBuffer buffer;
    for (const auto& k : keys) {
      buffer.Add(static_cast<std::uint32_t>(BytesHash(k) % 8), k, one);
    }
    buffer.Sort();
    benchmark::DoNotOptimize(buffer.records().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapBufferSort)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// The hash map-side replacement: fold into the combine table.
void BM_MapHashFold(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto keys = MakeKeys(n, 100'000, 0.9);
  const std::string one = EncodeValueU64(1);
  SumAggregator sum;
  for (auto _ : state) {
    MapCombineTable table(&sum);
    for (const auto& k : keys) {
      const std::uint64_t h = BytesHash(k);
      table.Fold(static_cast<std::uint32_t>(h % 8), h, k, one, false);
    }
    benchmark::DoNotOptimize(table.NumKeys());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapHashFold)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_BytesHash(benchmark::State& state) {
  const auto keys = MakeKeys(4096, 100'000, 0.9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BytesHash(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BytesHash);

void BM_TabulationHash(benchmark::State& state) {
  const TabulationHash hash(42);
  const auto keys = MakeKeys(4096, 100'000, 0.9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash(keys[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TabulationHash);

void BM_SketchOffer(benchmark::State& state) {
  const auto keys = MakeKeys(1 << 16, 100'000, 1.1);
  std::unique_ptr<FrequentSketch> sketch;
  switch (state.range(0)) {
    case 0: sketch = std::make_unique<SpaceSaving>(1024); break;
    case 1: sketch = std::make_unique<MisraGries>(1024); break;
    default: sketch = std::make_unique<LossyCounting>(1e-3); break;
  }
  std::size_t i = 0;
  for (auto _ : state) {
    sketch->Offer(keys[i++ & 0xffff]);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(state.range(0) == 0   ? "space_saving"
                 : state.range(0) == 1 ? "misra_gries"
                                       : "lossy_counting");
}
BENCHMARK(BM_SketchOffer)->Arg(0)->Arg(1)->Arg(2);

void BM_KWayMerge(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const std::size_t per_run = 20'000;
  // Pre-build k sorted runs on disk.
  FileManager files = FileManager::CreateTemp("opmr-bench");
  MetricRegistry metrics;
  IoChannel channel(&metrics, "bench.bytes");
  std::vector<std::filesystem::path> paths;
  Rng rng(11);
  for (int r = 0; r < k; ++r) {
    std::vector<std::string> keys;
    keys.reserve(per_run);
    char buf[16];
    for (std::size_t i = 0; i < per_run; ++i) {
      std::snprintf(buf, sizeof(buf), "k%08llu",
                    static_cast<unsigned long long>(rng.Uniform(100'000'000)));
      keys.emplace_back(buf);
    }
    std::sort(keys.begin(), keys.end());
    RunWriter writer(files.NewFile("run"), channel);
    for (const auto& key : keys) writer.Append(key, "v");
    writer.Close();
    paths.push_back(writer.path());
  }
  for (auto _ : state) {
    std::vector<std::unique_ptr<RecordStream>> readers;
    readers.reserve(paths.size());
    for (const auto& p : paths) {
      readers.push_back(std::make_unique<RunReader>(p, channel));
    }
    KWayMerger merger(std::move(readers));
    std::uint64_t count = 0;
    while (merger.Next()) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * per_run * k);
}
BENCHMARK(BM_KWayMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1'000'000, 1.0, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

}  // namespace
}  // namespace opmr

BENCHMARK_MAIN();
